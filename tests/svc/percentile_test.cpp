// The percentile certification suite (docs/SERVICE.md): the streaming
// LatencyHistogram's quantiles are held against an exact nearest-rank
// reference over the full value list, with the *hard* bound the header
// certifies:
//
//     v <= quantile(p) <= v + floor(v * 2^-bits)
//
// (no tolerance -- counts are exact, so only bounded value rounding is
// allowed), plus the golden replay gate: a fixed (spec, seed, options)
// must produce the byte-identical ServiceReport JSON, forever.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/rational.hpp"
#include "support/ticks.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using obs::exact_quantile;
using obs::LatencyHistogram;
using svc::ServiceOptions;
using svc::ServiceReport;
using svc::WorkloadSpec;

/// The quantile fractions every certification below checks: p50, p90, p99,
/// p99.9, p99.99, and the extremes.
const std::pair<std::uint64_t, std::uint64_t> kQuantiles[] = {
    {0, 1}, {1, 2}, {9, 10}, {99, 100}, {999, 1000}, {9999, 10000}, {1, 1}};

/// Assert the certified bound for every probe quantile of `values`.
void certify(const LatencyHistogram& hist, std::vector<std::uint64_t> values,
             const std::string& tag) {
  ASSERT_EQ(hist.count(), values.size()) << tag;
  std::sort(values.begin(), values.end());
  for (const auto& [num, den] : kQuantiles) {
    const std::uint64_t v = exact_quantile(values, num, den);
    const std::uint64_t q = hist.quantile(num, den);
    ASSERT_LE(v, q) << tag << " p=" << num << "/" << den;
    // q <= v + floor(v * 2^-bits), written overflow-safe (v can be ~2^64).
    EXPECT_LE(q - v, v >> hist.precision_bits()) << tag << " p=" << num << "/" << den;
  }
  // The extremes are exact regardless of precision.
  EXPECT_EQ(hist.min(), values.front()) << tag;
  EXPECT_EQ(hist.max(), values.back()) << tag;
  EXPECT_EQ(hist.quantile(1, 1), values.back()) << tag;
}

// ---------------------------------------------------------------------------
// Histogram unit behavior
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ValidatesConstructionAndQueries) {
  POSTAL_EXPECT_THROW(LatencyHistogram(0), InvalidArgument);
  POSTAL_EXPECT_THROW(LatencyHistogram(21), InvalidArgument);

  LatencyHistogram hist(7);
  POSTAL_EXPECT_THROW(hist.quantile(1, 2), InvalidArgument);  // empty
  hist.record(5);
  POSTAL_EXPECT_THROW(hist.quantile(3, 2), InvalidArgument);  // p > 1
  POSTAL_EXPECT_THROW(hist.quantile(1, 0), InvalidArgument);  // den == 0
  EXPECT_EQ(hist.quantile(1, 2), 5u);
}

TEST(LatencyHistogram, SmallValuesAreExactNotJustBounded) {
  // Every value below 2^(bits+1) sits in a width-1 bucket: quantiles are
  // exactly the nearest-rank element, not an upper bound.
  LatencyHistogram hist(4);  // exact below 32
  std::vector<std::uint64_t> values;
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(0, 31);
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const auto& [num, den] : kQuantiles) {
    EXPECT_EQ(hist.quantile(num, den), exact_quantile(values, num, den))
        << num << "/" << den;
  }
  EXPECT_EQ(hist.count(), 1000u);
}

TEST(LatencyHistogram, CertifiedBoundHoldsAcrossMagnitudesAndPrecisions) {
  for (const unsigned bits : {1u, 4u, 7u, 12u}) {
    LatencyHistogram hist(bits);
    std::vector<std::uint64_t> values;
    Xoshiro256 rng(7 + bits);
    // Log-uniform magnitudes: every bucket regime from unit buckets to the
    // widest, including 0 and near-2^64 extremes.
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t shift = rng.uniform(0, 63);
      const std::uint64_t v = rng() >> shift;
      values.push_back(v);
      hist.record(v);
    }
    values.push_back(0);
    hist.record(0);
    values.push_back(~std::uint64_t{0});
    hist.record(~std::uint64_t{0});
    certify(hist, values, "bits=" + std::to_string(bits));
  }
}

TEST(LatencyHistogram, MeanIsTheExactSumOverCount) {
  LatencyHistogram hist(7);
  EXPECT_EQ(hist.mean(), 0.0);
  hist.record(1);
  hist.record(2);
  hist.record(9);
  EXPECT_DOUBLE_EQ(hist.mean(), 4.0);
  // The 128-bit sum survives values that would wrap a 64-bit accumulator.
  LatencyHistogram big(7);
  big.record(~std::uint64_t{0});
  big.record(~std::uint64_t{0});
  EXPECT_NEAR(big.mean(), 1.8446744073709552e19, 1e5);
}

TEST(LatencyHistogram, MergeEqualsRecordingEverythingInOne) {
  LatencyHistogram a(7);
  LatencyHistogram b(7);
  LatencyHistogram all(7);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng() >> rng.uniform(0, 50);
    values.push_back(v);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  ASSERT_EQ(a.count(), all.count());
  for (const auto& [num, den] : kQuantiles) {
    EXPECT_EQ(a.quantile(num, den), all.quantile(num, den)) << num << "/" << den;
  }
  certify(a, std::move(values), "merged");

  LatencyHistogram coarse(4);
  POSTAL_EXPECT_THROW(a.merge(coarse), InvalidArgument);
}

TEST(ExactQuantile, NearestRankReferenceSemantics) {
  const std::vector<std::uint64_t> sorted = {10, 20, 30, 40};
  EXPECT_EQ(exact_quantile(sorted, 0, 1), 10u);   // rank clamps up to 1
  EXPECT_EQ(exact_quantile(sorted, 1, 2), 20u);   // ceil(0.5 * 4) = 2
  EXPECT_EQ(exact_quantile(sorted, 1, 4), 10u);   // ceil(0.25 * 4) = 1
  EXPECT_EQ(exact_quantile(sorted, 51, 100), 30u);  // ceil(2.04) = 3
  EXPECT_EQ(exact_quantile(sorted, 1, 1), 40u);
  POSTAL_EXPECT_THROW(exact_quantile({}, 1, 2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Service percentile certification: streaming histogram vs the exact
// sojourn list of a real run
// ---------------------------------------------------------------------------

TEST(ServicePercentiles, ReportedQuantilesAreCertifiedAgainstTheExactSojourns) {
  const WorkloadSpec spec = WorkloadSpec::parse(
      "poisson;grid=16;rate=1/2;jobs=2000;mix=w3:n64:l2:m1|w1:n256:l5/2:m1");
  ServiceOptions options;
  options.queue_capacity = 0;  // unbounded: all 2000 sojourns certified
  options.keep_sojourns = true;
  const ServiceReport report = svc::run_service(spec, 1234, options);
  ASSERT_EQ(report.sojourns.size(), report.counters.completed);
  ASSERT_EQ(report.counters.completed, 2000u);
  ASSERT_EQ(report.counters.sojourn_offgrid, 0u);

  // Exact tick conversion of every sojourn (fault-free they all sit on the
  // folded grid), then the nearest-rank reference.
  const TickDomain domain(report.sojourn_grid);
  std::vector<std::uint64_t> ticks;
  for (const Rational& sojourn : report.sojourns) {
    const auto t = domain.to_ticks(sojourn);
    ASSERT_TRUE(t.has_value()) << sojourn.str();
    ticks.push_back(static_cast<std::uint64_t>(*t));
  }
  std::sort(ticks.begin(), ticks.end());

  const std::pair<std::uint64_t, std::uint64_t> reported[] = {
      {1, 2}, {99, 100}, {999, 1000}};
  const std::uint64_t values[] = {report.p50_ticks, report.p99_ticks,
                                  report.p999_ticks};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::uint64_t v = exact_quantile(ticks, reported[i].first, reported[i].second);
    EXPECT_LE(v, values[i]) << i;
    EXPECT_LE(values[i], v + (v >> report.histogram_bits)) << i;
    // And the Rational rendering is exactly ticks/grid.
    EXPECT_EQ(Rational(static_cast<std::int64_t>(values[i]), report.sojourn_grid),
              i == 0 ? report.p50 : (i == 1 ? report.p99 : report.p999));
  }
}

// ---------------------------------------------------------------------------
// Golden replay: the committed report JSON of a fixed (spec, seed, options)
// ---------------------------------------------------------------------------

TEST(ServiceGolden, FixedSpecSeedOptionsReplayToTheCommittedJson) {
  const WorkloadSpec spec =
      WorkloadSpec::parse("poisson;grid=16;rate=1/4;jobs=100;mix=w1:n64:l2:m1");
  ServiceOptions options;
  options.exec_every = 8;
  // Captured from `postal_cli serve` at the layer's introduction; any
  // byte-level drift here is a replay-contract break, not a refresh.
  const std::string json =
      R"({"spec":"poisson;grid=16;rate=1/4;jobs=100;mix=w1:n64:l2:m1","seed":42,)"
      R"("generated":100,"admitted":100,"shed":0,"completed":100,"depth_max":64,)"
      R"("planned_oracle":100,"planned_materialized":0,"planned_registry":0,)"
      R"("exec_runs":13,"exec_verified":13,"exec_faulted":0,)"
      R"("exec_retransmissions":0,"exec_repairs":0,"exec_crashed":0,)"
      R"("sojourn_grid":16,"histogram_bits":7,"sojourn_offgrid":0,)"
      R"("sojourn_total":"243801/8","sojourn_max":"5109/8","horizon":"16173/16",)"
      R"("p50_ticks":4671,"p99_ticks":10175,"p999_ticks":10218,"p50":"4671/16",)"
      R"("p99":"10175/16","p999":"5109/8","throughput":"1600/16173"})";
  for (const unsigned threads : {1u, 4u}) {
    ServiceOptions opts = options;
    opts.threads = threads;
    EXPECT_EQ(svc::run_service(spec, 42, opts).to_json(), json)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace postal
