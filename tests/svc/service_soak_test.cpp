// The service soak suite (docs/SERVICE.md): sweep 200+ seeded workload
// scenarios -- arrival families crossed with rates, grids, queue
// capacities, mixes, and seeds -- and hold the admission-queue invariants
// on every one:
//
//   * bounded depth: depth_max never exceeds the configured capacity;
//   * conservation: generated = admitted + shed and, after drain,
//     admitted = completed (no lost or duplicated jobs);
//   * the percentile chain is monotone: p50 <= p99 <= p999 <= max sojourn;
//   * accounting is exact: sojourn_total/completed brackets the
//     percentiles, throughput = completed/horizon;
//   * determinism: the same (spec, seed, options) replays to the
//     byte-identical report.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/rational.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using svc::ServiceOptions;
using svc::ServiceReport;
using svc::WorkloadSpec;

struct Scenario {
  WorkloadSpec spec;
  std::uint64_t seed = 0;
  ServiceOptions options;
  std::string tag;
};

void check_invariants(const Scenario& s, const ServiceReport& report) {
  const auto& c = report.counters;
  // Conservation: every generated job is accounted for exactly once.
  EXPECT_EQ(c.generated, s.spec.jobs) << s.tag;
  EXPECT_EQ(c.generated, c.admitted + c.shed) << s.tag;
  EXPECT_EQ(c.admitted, c.completed) << s.tag << ": drain retired everything";

  // Back-pressure: the queue never exceeded its capacity, and nothing was
  // shed while it had room (shed implies the bound was actually reached).
  if (s.options.queue_capacity != 0) {
    EXPECT_LE(c.depth_max, s.options.queue_capacity) << s.tag;
    if (c.shed > 0) {
      EXPECT_EQ(c.depth_max, s.options.queue_capacity) << s.tag;
    }
  } else {
    EXPECT_EQ(c.shed, 0u) << s.tag << ": unbounded queues never shed";
  }

  // Every admitted job was planned by exactly one planner.
  EXPECT_EQ(c.planned_oracle + c.planned_materialized + c.planned_registry,
            c.admitted)
      << s.tag;

  bool single_message = true;
  for (const auto& entry : s.spec.mix) single_message = single_message && entry.m == 1;

  if (c.completed > 0) {
    // Percentile chain and bracketing (ticks are exact counts, so the
    // chain is monotone by construction -- a violation is a histogram bug).
    EXPECT_LE(report.p50_ticks, report.p99_ticks) << s.tag;
    EXPECT_LE(report.p99_ticks, report.p999_ticks) << s.tag;
    EXPECT_FALSE(report.sojourn_max < report.p999) << s.tag;
    EXPECT_FALSE(report.sojourn_total < report.sojourn_max) << s.tag;
    EXPECT_FALSE(report.horizon < report.sojourn_max) << s.tag;
    EXPECT_EQ(report.throughput * report.horizon,
              Rational(static_cast<std::int64_t>(c.completed)))
        << s.tag;
    // Fault-free single-message runs with the grid folded from the spec
    // never leave it (m > 1 registry predictions carry no such guarantee).
    if (single_message) {
      EXPECT_EQ(c.sojourn_offgrid, 0u) << s.tag;
    }
  }
}

TEST(ServiceSoak, TwoHundredPlusSeededScenariosHoldTheInvariants) {
  std::uint64_t scenarios = 0;
  std::uint64_t total_shed = 0;
  std::uint64_t saturated = 0;
  const auto run = [&](const Scenario& s) {
    const ServiceReport report = svc::run_service(s.spec, s.seed, s.options);
    check_invariants(s, report);
    ++scenarios;
    total_shed += report.counters.shed;
    if (s.options.queue_capacity != 0 &&
        report.counters.depth_max == s.options.queue_capacity) {
      ++saturated;
    }
  };

  // Poisson sweep: 3 rates x 3 capacities x 8 seeds = 72 scenarios, over
  // a two-shape mix (oracle planning for both).
  const std::uint64_t capacities[] = {2, 16, 0};
  for (const char* rate : {"1/8", "1/2", "2"}) {
    for (const std::uint64_t capacity : capacities) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Scenario s;
        s.spec = WorkloadSpec::parse(std::string("poisson;grid=16;rate=") + rate +
                                     ";jobs=120;mix=w1:n64:l2:m1|w2:n16:l5/2:m1");
        s.seed = seed;
        s.options.queue_capacity = capacity;
        s.tag = "poisson rate=" + std::string(rate) +
                " cap=" + std::to_string(capacity) + " seed=" + std::to_string(seed);
        run(s);
      }
    }
  }

  // Bursty sweep: 2 duty cycles x 2 capacities x 8 seeds = 32 scenarios;
  // the ON/OFF bursts are what actually stress the shed policy.
  const std::uint64_t burst_capacities[] = {4, 32};
  for (const char* phase : {"on=16;off=48", "on=64;off=64"}) {
    for (const std::uint64_t capacity : burst_capacities) {
      for (std::uint64_t seed = 10; seed <= 17; ++seed) {
        Scenario s;
        s.spec = WorkloadSpec::parse(std::string("onoff;grid=16;rate=8;") + phase +
                                     ";jobs=150;mix=w1:n128:l3:m1");
        s.seed = seed;
        s.options.queue_capacity = capacity;
        s.tag = std::string("onoff ") + phase + " cap=" + std::to_string(capacity) +
                " seed=" + std::to_string(seed);
        run(s);
      }
    }
  }

  // Mixed-m sweep (registry planning rides along): 2 grids x 2 rates x
  // 8 seeds = 32 scenarios.
  const std::int64_t grids[] = {4, 32};
  for (const std::int64_t grid : grids) {
    for (const char* rate : {"1/4", "1"}) {
      for (std::uint64_t seed = 20; seed <= 27; ++seed) {
        Scenario s;
        s.spec = WorkloadSpec::parse("poisson;grid=" + std::to_string(grid) +
                                     ";rate=" + rate +
                                     ";jobs=80;mix=w1:n32:l2:m1|w1:n32:l2:m4");
        s.seed = seed;
        s.options.queue_capacity = 8;
        s.tag = "mixed-m grid=" + std::to_string(grid) + " rate=" + rate +
                " seed=" + std::to_string(seed);
        run(s);
      }
    }
  }

  // Seed-heavy tail on one saturating config: 80 seeds of heavy overload,
  // where the queue lives pinned at capacity and shed dominates.
  for (std::uint64_t seed = 100; seed < 180; ++seed) {
    Scenario s;
    s.spec = WorkloadSpec::parse(
        "poisson;grid=16;rate=4;jobs=100;mix=w1:n256:l5/2:m1");
    s.seed = seed;
    s.options.queue_capacity = 3;
    s.tag = "overload seed=" + std::to_string(seed);
    run(s);
  }

  EXPECT_GE(scenarios, 200u);
  // The sweep must actually exercise back-pressure, not tiptoe around it.
  EXPECT_GT(total_shed, 0u);
  EXPECT_GT(saturated, 50u);
}

TEST(ServiceSoak, ReplaysAreByteIdentical) {
  // A saturating bursty config with a mixed workload replays exactly.
  const WorkloadSpec spec = WorkloadSpec::parse(
      "onoff;grid=16;rate=8;on=32;off=96;jobs=200;mix=w1:n64:l2:m1|w1:n96:l5/2:m1");
  ServiceOptions options;
  options.queue_capacity = 8;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string a = svc::run_service(spec, seed, options).to_json();
    const std::string b = svc::run_service(spec, seed, options).to_json();
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

}  // namespace
}  // namespace postal
