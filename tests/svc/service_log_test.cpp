// Replicated-log admission routing in the broadcast service
// (docs/COORDINATION.md, docs/SERVICE.md): with coord_log on, every
// admitted job is a command on the control plane's replicated log and is
// billed the log's exact fault-free commit latency before service begins.
// Strictly conditional: coord_log off -- with or without coord_ranks --
// must not change a single report byte.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "coord/log.hpp"
#include "model/params.hpp"
#include "support/error.hpp"
#include "support/rational.hpp"
#include "svc/service.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using svc::BroadcastService;
using svc::Job;
using svc::JobOutcome;
using svc::ServiceOptions;
using svc::ServiceReport;

Job make_job(std::uint64_t id, Rational arrival, std::uint64_t n = 4,
             Rational lambda = Rational(2)) {
  Job job;
  job.id = id;
  job.arrival = std::move(arrival);
  job.n = n;
  job.lambda = std::move(lambda);
  job.m = 1;
  return job;
}

TEST(ServiceLog, AdmissionsAreBilledTheControlPlaneCommitLatency) {
  ServiceOptions options;
  options.coord_ranks = 5;
  options.coord_log = true;

  // Independent reference run of the control plane's log: the billed
  // latency must be exactly its fault-free commit latency.
  const PostalParams params(options.coord_ranks, options.coord_lambda);
  coord::LogOptions lopts;
  lopts.commands = 1;
  const coord::LogReport reference = coord::run_log(params, nullptr, lopts);
  ASSERT_TRUE(reference.check.ok);
  ASSERT_LT(Rational(0), reference.commit_latency);

  BroadcastService service(options);
  const JobOutcome a = service.submit(make_job(0, Rational(0)));
  EXPECT_EQ(a.start, reference.commit_latency);
  EXPECT_EQ(a.sojourn, reference.commit_latency + a.planned_makespan);
  const JobOutcome b = service.submit(make_job(1, Rational(1)));
  // FIFO after the first job plus the second command's own commit.
  EXPECT_EQ(b.start, a.completion + reference.commit_latency);

  const ServiceReport report = service.drain();
  EXPECT_TRUE(report.coord_log);
  EXPECT_EQ(report.coord_log_latency, reference.commit_latency);
  EXPECT_EQ(report.counters.coord_log_commands, 2u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"coord_log_commands\":2"), std::string::npos);
  EXPECT_NE(json.find("\"coord_log_latency\":\"" +
                      reference.commit_latency.str() + "\""),
            std::string::npos);
}

TEST(ServiceLog, OffKeepsCoordReportsByteIdentical) {
  // The same coord-routed workload with and without the coord_log flag
  // mentioned at all: the off report must not contain any log key, and
  // two off runs produce identical bytes (replay safety for the existing
  // golden serve artifacts).
  ServiceOptions off;
  off.coord_ranks = 3;
  BroadcastService a(off);
  static_cast<void>(a.submit(make_job(0, Rational(0))));
  const std::string json_a = a.drain().to_json();
  BroadcastService b(off);
  static_cast<void>(b.submit(make_job(0, Rational(0))));
  const std::string json_b = b.drain().to_json();
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(json_a.find("coord_log"), std::string::npos);
}

TEST(ServiceLog, ShedJobsAreNotBilled) {
  ServiceOptions options;
  options.coord_ranks = 3;
  options.coord_log = true;
  options.queue_capacity = 1;
  BroadcastService service(options);
  const JobOutcome first = service.submit(make_job(0, Rational(0)));
  EXPECT_TRUE(first.admitted);
  const JobOutcome second = service.submit(make_job(1, Rational(0)));
  EXPECT_FALSE(second.admitted);
  const ServiceReport report = service.drain();
  EXPECT_EQ(report.counters.coord_log_commands, 1u);
  EXPECT_EQ(report.counters.shed, 1u);
}

TEST(ServiceLog, RequiresACoordControlPlane) {
  ServiceOptions options;
  options.coord_log = true;  // coord_ranks left at 0
  POSTAL_EXPECT_THROW(BroadcastService{options}, InvalidArgument);
}

}  // namespace
}  // namespace postal
