// Tests for the broadcast service core (docs/SERVICE.md): the admission
// queue's bookkeeping, submit()'s contract, planner selection, and the
// differential gate -- a single job routed through the service must agree
// exactly with the direct Communicator::broadcast() /
// broadcast_oracle() answer, across both TimePaths and thread counts
// {1, 2, 4}.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/communicator.hpp"
#include "model/genfib.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/rational.hpp"
#include "support/ticks.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using svc::AdmissionQueue;
using svc::BroadcastService;
using svc::Job;
using svc::JobOutcome;
using svc::PlannerPolicy;
using svc::ServiceOptions;
using svc::ServiceReport;
using svc::WorkloadSpec;

Job make_job(std::uint64_t id, Rational arrival, std::uint64_t n, Rational lambda,
             std::uint64_t m = 1) {
  Job job;
  job.id = id;
  job.arrival = std::move(arrival);
  job.n = n;
  job.lambda = std::move(lambda);
  job.m = m;
  return job;
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

TEST(AdmissionQueue, BoundsDepthAndTracksTheHighWaterMark) {
  AdmissionQueue queue(2);
  EXPECT_FALSE(queue.full());
  queue.push(Rational(3));
  queue.push(Rational(5));
  EXPECT_TRUE(queue.full());
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.depth_max(), 2u);
  POSTAL_EXPECT_THROW(queue.push(Rational(7)), LogicError);

  // A departure at exactly t frees the slot for an arrival at t.
  EXPECT_EQ(queue.retire_until(Rational(3)), 1u);
  EXPECT_FALSE(queue.full());
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.depth_max(), 2u);  // high-water mark is sticky
  EXPECT_EQ(queue.retire_until(Rational(4)), 0u);  // nothing due yet

  queue.push(Rational(6));
  EXPECT_EQ(queue.retire_all(), 2u);
  EXPECT_EQ(queue.admitted(), 3u);
  EXPECT_EQ(queue.retired(), 3u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueue, RejectsCompletionsGoingBackwards) {
  AdmissionQueue queue(0);
  queue.push(Rational(5));
  queue.push(Rational(5));  // equal is fine (FIFO ties)
  POSTAL_EXPECT_THROW(queue.push(Rational(9, 2)), LogicError);
}

TEST(AdmissionQueue, CapacityZeroIsUnbounded) {
  AdmissionQueue queue(0);
  for (int i = 1; i <= 1000; ++i) queue.push(Rational(i));
  EXPECT_FALSE(queue.full());
  EXPECT_EQ(queue.depth(), 1000u);
}

// ---------------------------------------------------------------------------
// submit() contract
// ---------------------------------------------------------------------------

TEST(BroadcastService, SubmitValidatesJobAndArrivalOrder) {
  BroadcastService service;
  POSTAL_EXPECT_THROW(service.submit(make_job(0, Rational(1), 0, Rational(1))),
                      InvalidArgument);
  POSTAL_EXPECT_THROW(service.submit(make_job(0, Rational(1), 4, Rational(1, 2))),
                      InvalidArgument);
  POSTAL_EXPECT_THROW(service.submit(make_job(0, Rational(1), 4, Rational(1), 0)),
                      InvalidArgument);
  POSTAL_EXPECT_THROW(service.submit(make_job(0, Rational(-1), 4, Rational(1))),
                      InvalidArgument);

  static_cast<void>(service.submit(make_job(0, Rational(2), 4, Rational(1))));
  // Arrivals must be nondecreasing; equal arrivals are allowed.
  static_cast<void>(service.submit(make_job(1, Rational(2), 4, Rational(1))));
  POSTAL_EXPECT_THROW(service.submit(make_job(2, Rational(1), 4, Rational(1))),
                      InvalidArgument);
}

TEST(BroadcastService, FifoVirtualTimeQueuesBehindTheServer) {
  // Every job is a broadcast in MPS(4, 1), so service time is f = f_1(4).
  const Rational f = GenFib(Rational(1)).f(4);
  ASSERT_LT(Rational(0), f);
  const Rational half = f / Rational(2);

  ServiceOptions options;
  options.queue_capacity = 0;
  BroadcastService service(options);

  const JobOutcome a = service.submit(make_job(0, Rational(0), 4, Rational(1)));
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.start, Rational(0));
  EXPECT_EQ(a.completion, f);
  EXPECT_EQ(a.sojourn, f);

  // Arrives mid-service: waits for the server, sojourn includes the wait.
  const JobOutcome b = service.submit(make_job(1, half, 4, Rational(1)));
  EXPECT_EQ(b.start, f);
  EXPECT_EQ(b.completion, f + f);
  EXPECT_EQ(b.sojourn, f + half);

  // Arrives after the backlog drained: starts immediately.
  const JobOutcome c = service.submit(make_job(2, Rational(3) * f, 4, Rational(1)));
  EXPECT_EQ(c.start, Rational(3) * f);
  EXPECT_EQ(c.sojourn, f);

  const ServiceReport report = service.drain();
  EXPECT_EQ(report.counters.generated, 3u);
  EXPECT_EQ(report.counters.completed, 3u);
  EXPECT_EQ(report.horizon, Rational(4) * f);
  EXPECT_EQ(report.sojourn_max, f + half);
  EXPECT_EQ(report.sojourn_total, Rational(2) * f + (f + half));
}

TEST(BroadcastService, ShedsWhenFullAndAdmitsAgainAfterDepartures) {
  const Rational f = GenFib(Rational(1)).f(4);
  ServiceOptions options;
  options.queue_capacity = 1;
  BroadcastService service(options);

  const JobOutcome a = service.submit(make_job(0, Rational(0), 4, Rational(1)));
  ASSERT_TRUE(a.admitted);
  ASSERT_EQ(a.completion, f);

  // Mid-service arrival finds the queue full: shed, nothing billed.
  const JobOutcome b = service.submit(make_job(1, f / Rational(2), 4, Rational(1)));
  EXPECT_FALSE(b.admitted);
  EXPECT_EQ(b.planner, "");
  EXPECT_EQ(b.sojourn, Rational(0));
  EXPECT_EQ(service.depth(), 1u);

  // Arrival at exactly the completion time is admitted (departure first).
  const JobOutcome c = service.submit(make_job(2, f, 4, Rational(1)));
  EXPECT_TRUE(c.admitted);
  EXPECT_EQ(c.start, f);

  const ServiceReport report = service.drain();
  EXPECT_EQ(report.counters.generated, 3u);
  EXPECT_EQ(report.counters.admitted, 2u);
  EXPECT_EQ(report.counters.shed, 1u);
  EXPECT_EQ(report.counters.depth_max, 1u);
}

TEST(BroadcastService, DrainUntilRetiresDeparturesOnAnIdleService) {
  const Rational f = GenFib(Rational(1)).f(4);
  ServiceOptions options;
  options.queue_capacity = 4;
  BroadcastService service(options);
  static_cast<void>(service.submit(make_job(0, Rational(0), 4, Rational(1))));
  static_cast<void>(service.submit(make_job(1, Rational(0), 4, Rational(1))));
  EXPECT_EQ(service.depth(), 2u);
  service.drain_until(f);  // the first job departs at f, the second at 2f
  EXPECT_EQ(service.depth(), 1u);
  EXPECT_EQ(service.counters().completed, 1u);
  service.drain_until(Rational(100) * f);
  EXPECT_EQ(service.depth(), 0u);
  static_cast<void>(service.drain());
}

// ---------------------------------------------------------------------------
// Planner selection
// ---------------------------------------------------------------------------

TEST(BroadcastService, PlannerPoliciesAgreeOnTheMakespan) {
  const Rational expected = GenFib(Rational(5, 2)).f(64);

  BroadcastService auto_service;
  const JobOutcome via_oracle =
      auto_service.submit(make_job(0, Rational(0), 64, Rational(5, 2)));
  EXPECT_EQ(via_oracle.planner, "oracle");
  EXPECT_EQ(via_oracle.planned_makespan, expected);
  EXPECT_EQ(auto_service.counters().planned_oracle, 1u);

  ServiceOptions materialized;
  materialized.planner = PlannerPolicy::kMaterialized;
  BroadcastService mat_service(materialized);
  const JobOutcome via_schedule =
      mat_service.submit(make_job(0, Rational(0), 64, Rational(5, 2)));
  EXPECT_EQ(via_schedule.planner, "materialized");
  EXPECT_EQ(via_schedule.planned_makespan, expected);
  EXPECT_EQ(mat_service.counters().planned_materialized, 1u);

  static_cast<void>(auto_service.drain());
  static_cast<void>(mat_service.drain());
}

TEST(BroadcastService, MultiMessageJobsUseTheRegistryBestAlgorithm) {
  Communicator comm(32, Rational(2));
  const Rational expected = comm.broadcast(6).completion;

  BroadcastService service;
  const JobOutcome outcome = service.submit(make_job(0, Rational(0), 32, Rational(2), 6));
  EXPECT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.planner.rfind("registry:", 0), 0u) << outcome.planner;
  EXPECT_EQ(outcome.planned_makespan, expected);
  EXPECT_EQ(service.counters().planned_registry, 1u);
  static_cast<void>(service.drain());
}

// ---------------------------------------------------------------------------
// The differential gate (satellite): service == direct API, every engine
// ---------------------------------------------------------------------------

TEST(ServiceDifferential, SingleJobMatchesBroadcastAndOracleAcrossEngines) {
  // One deterministic job: rate == grid makes the first tick fire, so the
  // job arrives at 1/4 regardless of seed.
  const WorkloadSpec spec =
      WorkloadSpec::parse("poisson;grid=4;rate=4;jobs=1;mix=w1:n64:l5/2:m1");

  Communicator comm(64, Rational(5, 2));
  const CollectivePlan plan = comm.broadcast();
  ASSERT_TRUE(plan.verified);
  const Rational f = comm.broadcast_time();
  EXPECT_EQ(plan.completion, f);
  EXPECT_EQ(comm.broadcast_oracle().makespan(), f);

  std::vector<std::string> jsons;
  for (const TimePath path : {TimePath::kAuto, TimePath::kRational}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      ServiceOptions options;
      options.exec_every = 1;  // actually run the job on the Machine
      options.time_path = path;
      options.threads = threads;
      const ServiceReport report = Communicator::serve(spec, 7, options);

      // The one job starts at its arrival, so sojourn == service time ==
      // the direct answer, in every time representation and lane count.
      EXPECT_EQ(report.counters.completed, 1u);
      EXPECT_EQ(report.counters.exec_runs, 1u);
      EXPECT_EQ(report.counters.exec_verified, 1u);
      EXPECT_EQ(report.sojourn_max, f);
      EXPECT_EQ(report.p50, f);
      EXPECT_EQ(report.p999, f);
      EXPECT_EQ(report.horizon, Rational(1, 4) + f);
      jsons.push_back(report.to_json());
    }
  }
  // Byte-identical reports across every engine configuration.
  for (const std::string& json : jsons) EXPECT_EQ(json, jsons.front());
}

TEST(ServiceDifferential, IntegerLambdaExercisesTheShardedEngineIdentically) {
  // lambda = 2 keeps the reliable protocol's timers on the tick grid, so
  // threads > 1 really runs the sharded ParMachine (docs/PARALLELISM.md).
  const WorkloadSpec spec =
      WorkloadSpec::parse("poisson;grid=4;rate=4;jobs=3;mix=w1:n96:l2:m1");
  std::vector<std::string> jsons;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ServiceOptions options;
    options.exec_every = 1;
    options.threads = threads;
    const ServiceReport report = Communicator::serve(spec, 11, options);
    EXPECT_EQ(report.counters.exec_verified, 3u);
    EXPECT_EQ(report.sojourn_max, report.p999);
    jsons.push_back(report.to_json());
  }
  for (const std::string& json : jsons) EXPECT_EQ(json, jsons.front());
}

TEST(ServiceDifferential, BroadcastJobRoutesThroughTheCommunicator) {
  Communicator comm(64, Rational(5, 2));
  const Rational f = comm.broadcast_time();

  ServiceOptions options;
  options.exec_every = 1;
  BroadcastService service(options);
  const JobOutcome first = comm.broadcast_job(service, Rational(1));
  EXPECT_TRUE(first.admitted);
  EXPECT_TRUE(first.executed);
  EXPECT_EQ(first.job.id, 0u);
  EXPECT_EQ(first.job.n, 64u);
  EXPECT_EQ(first.planned_makespan, f);
  EXPECT_EQ(first.exec_completion, f);
  EXPECT_EQ(first.completion, Rational(1) + f);

  // Jobs queue FIFO behind the first; ids follow the generated counter.
  const JobOutcome second = comm.broadcast_job(service, Rational(2));
  EXPECT_EQ(second.job.id, 1u);
  EXPECT_EQ(second.start, first.completion);
  const ServiceReport report = service.drain();
  EXPECT_EQ(report.counters.admitted, 2u);
  EXPECT_EQ(report.counters.planned_oracle, 2u);
}

TEST(BroadcastService, LiveMetricsMirrorTheCounters) {
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.queue_capacity = 1;
  BroadcastService service(options, &registry);
  static_cast<void>(service.submit(make_job(0, Rational(0), 8, Rational(1))));
  static_cast<void>(service.submit(make_job(1, Rational(1), 8, Rational(1))));
  const ServiceReport report = service.drain();
  EXPECT_EQ(registry.counter("svc.generated").value(), report.counters.generated);
  EXPECT_EQ(registry.counter("svc.admitted").value(), report.counters.admitted);
  EXPECT_EQ(registry.counter("svc.shed").value(), report.counters.shed);
  EXPECT_EQ(registry.counter("svc.plan.oracle").value(),
            report.counters.planned_oracle);
}

}  // namespace
}  // namespace postal
