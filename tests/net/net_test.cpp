// Tests for the packet-network substrate: topologies and routing, the
// store-and-forward simulator's timing, calibration, and schedule replay.
#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "net/calibrate.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "sched/bcast.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(Topology, CompleteGraphHasDirectRoutes) {
  const Topology t = Topology::complete(6, Rational(3));
  EXPECT_EQ(t.n(), 6u);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(t.links(u).size(), 5u);
    for (NodeId v = 0; v < 6; ++v) {
      if (u == v) continue;
      EXPECT_EQ(t.next_hop(u, v), v);
      EXPECT_EQ(t.hop_count(u, v), 1u);
    }
  }
}

TEST(Topology, MeshRoutesAreShortest) {
  // 3x3 mesh, node ids row-major.
  const Topology t = Topology::mesh2d(3, 3, Rational(1));
  EXPECT_EQ(t.hop_count(0, 8), 4u);  // corner to corner
  EXPECT_EQ(t.hop_count(0, 2), 2u);
  EXPECT_EQ(t.hop_count(4, 4), 0u);
  EXPECT_EQ(t.hop_count(3, 5), 2u);
}

TEST(Topology, TorusWrapShortens) {
  const Topology mesh = Topology::mesh2d(1, 5, Rational(1));
  const Topology torus = Topology::torus2d(1, 5, Rational(1));
  EXPECT_EQ(mesh.hop_count(0, 4), 4u);
  EXPECT_EQ(torus.hop_count(0, 4), 1u);  // wraps around
}

TEST(Topology, NextHopRejectsSelf) {
  const Topology t = Topology::complete(3, Rational(1));
  POSTAL_EXPECT_THROW(t.next_hop(1, 1), InvalidArgument);
}

TEST(Topology, SingleNodeIsDegenerate) {
  const Topology t = Topology::complete(1, Rational(1));
  EXPECT_EQ(t.n(), 1u);
  EXPECT_EQ(t.hop_count(0, 0), 0u);
}

TEST(NetConfig, Validation) {
  NetConfig config;
  config.send_overhead = Rational(0);
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = NetConfig{};
  config.jitter_max = Rational(-1);
  EXPECT_THROW(config.validate(), InvalidArgument);
  EXPECT_NO_THROW(NetConfig{}.validate());
}

TEST(PacketNetwork, SinglePacketTimingOnCompleteGraph) {
  // Idle complete graph: delivery = send_overhead + wire + prop + recv.
  NetConfig config;
  config.send_overhead = Rational(1);
  config.recv_overhead = Rational(1);
  config.wire_time = Rational(1);
  PacketNetwork net(Topology::complete(4, Rational(3)), config);
  net.submit(0, 2, 0, Rational(0));
  const auto out = net.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].delivered, Rational(6));  // 1 + 1 + 3 + 1
}

TEST(PacketNetwork, MultiHopPaysPerHop) {
  NetConfig config;
  PacketNetwork net(Topology::mesh2d(1, 4, Rational(2)), config);
  net.submit(0, 3, 0, Rational(0));
  const auto out = net.run();
  ASSERT_EQ(out.size(), 1u);
  // 1 (sw) + 3 hops * (1 wire + 2 prop) + 1 (sw) = 11.
  EXPECT_EQ(out[0].delivered, Rational(11));
}

TEST(PacketNetwork, EgressSerializesBursts) {
  NetConfig config;
  config.send_overhead = Rational(2);
  PacketNetwork net(Topology::complete(4, Rational(1)), config);
  net.submit(0, 1, 0, Rational(0));
  net.submit(0, 2, 1, Rational(0));
  net.submit(0, 3, 2, Rational(0));
  const auto out = net.run();
  ASSERT_EQ(out.size(), 3u);
  // Injections at 2, 4, 6; each then pays 1 wire + 1 prop + 1 recv.
  EXPECT_EQ(out[0].delivered, Rational(5));
  EXPECT_EQ(out[1].delivered, Rational(7));
  EXPECT_EQ(out[2].delivered, Rational(9));
}

TEST(PacketNetwork, WireQueuesContendingPackets) {
  // Two packets racing over the same single wire: second waits.
  NetConfig config;
  PacketNetwork net(Topology::mesh2d(1, 2, Rational(5)), config);
  net.submit(0, 1, 0, Rational(0));
  net.submit(0, 1, 1, Rational(0));
  const auto out = net.run();
  ASSERT_EQ(out.size(), 2u);
  // First: 1 + (1 + 5) + 1 = 8. Second: injected at 2, wire from 2: +1+5,
  // ingress after first (free at 8): starts max(8, 8) -> 9.
  EXPECT_EQ(out[0].delivered, Rational(8));
  EXPECT_EQ(out[1].delivered, Rational(9));
}

TEST(PacketNetwork, RejectsBadSubmissions) {
  PacketNetwork net(Topology::complete(3, Rational(1)), NetConfig{});
  EXPECT_THROW(net.submit(0, 0, 0, Rational(0)), InvalidArgument);
  EXPECT_THROW(net.submit(0, 9, 0, Rational(0)), InvalidArgument);
  EXPECT_THROW(net.submit(0, 1, 0, Rational(-1)), InvalidArgument);
}

TEST(PacketNetwork, DeterministicWithJitter) {
  NetConfig config;
  config.jitter_max = Rational(1, 2);
  config.jitter_seed = 99;
  auto run_once = [&]() {
    PacketNetwork net(Topology::complete(8, Rational(2)), config);
    for (NodeId p = 1; p < 8; ++p) {
      net.submit(0, p, 0, Rational(static_cast<std::int64_t>(p)));
    }
    return net.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].delivered, b[i].delivered);
  }
}

TEST(Calibrate, RecoversConfiguredLatencyOnCompleteGraph) {
  // Idle complete graph: every probe sees exactly the same latency, and
  // lambda = (send + wire + prop + recv) / send.
  NetConfig config;
  config.send_overhead = Rational(2);
  config.recv_overhead = Rational(2);
  config.wire_time = Rational(1);
  PacketNetwork net(Topology::complete(10, Rational(5)), config);
  const CalibrationReport report = calibrate_lambda(net, 50, /*seed=*/7);
  EXPECT_EQ(report.lambda_min, report.lambda_max);
  EXPECT_EQ(report.lambda_mean, Rational(5));  // (2+1+5+2)/2
  EXPECT_EQ(report.lambda_snapped, Rational(5));
  EXPECT_EQ(report.probes, 50u);
}

TEST(Calibrate, SnapsUpToGrid) {
  NetConfig config;
  config.send_overhead = Rational(3);
  PacketNetwork net(Topology::complete(4, Rational(3)), config);
  // latency = (3 + 1 + 3 + 1)/3 = 8/3; snapped up to quarters: 11/4.
  const CalibrationReport report = calibrate_lambda(net, 10, 1, /*grid=*/4);
  EXPECT_EQ(report.lambda_mean, Rational(8, 3));
  EXPECT_EQ(report.lambda_snapped, Rational(11, 4));
}

TEST(Calibrate, MeshLatencyVariesByDistance) {
  PacketNetwork net(Topology::mesh2d(4, 4, Rational(1)), NetConfig{});
  const CalibrationReport report = calibrate_lambda(net, 100, 3);
  EXPECT_LT(report.lambda_min, report.lambda_max);
  EXPECT_GE(report.lambda_snapped, Rational(1));
}

TEST(Replay, PostalScheduleTransfersToCompleteGraph) {
  // With send_overhead = recv_overhead = 1 and wire+prop = lambda - 2 + 1,
  // the network realizes exactly the postal model, so the BCAST schedule
  // must complete exactly at its postal prediction.
  const Rational lambda(4);
  NetConfig config;
  config.wire_time = Rational(1);
  // send(1) + wire(1) + prop + recv(1) = lambda -> prop = lambda - 3.
  PacketNetwork net(Topology::complete(16, lambda - Rational(3)), config);
  const PostalParams params(16, lambda);
  GenFib fib(lambda);
  const Schedule schedule = bcast_schedule(params, fib);
  const ReplayReport report = replay_schedule(net, schedule, fib.f(16));
  EXPECT_EQ(report.deliveries, 15u);
  EXPECT_EQ(report.observed, report.predicted);
  EXPECT_DOUBLE_EQ(report.ratio, 1.0);
}

TEST(Replay, ScaledUnitsStillTransfer) {
  // send_overhead = 2 scales postal time by 2.
  const Rational lambda(3);
  NetConfig config;
  config.send_overhead = Rational(2);
  config.recv_overhead = Rational(2);
  config.wire_time = Rational(1);
  // per-send latency = 2 + 1 + prop + 2 = lambda * 2 -> prop = 1.
  PacketNetwork net(Topology::complete(8, Rational(1)), config);
  const PostalParams params(8, lambda);
  GenFib fib(lambda);
  const ReplayReport report =
      replay_schedule(net, bcast_schedule(params, fib), fib.f(8));
  EXPECT_EQ(report.observed, report.predicted);
}


TEST(CutThrough, FasterThanStoreAndForwardOnMultiHop) {
  NetConfig sf;
  NetConfig ct = sf;
  ct.switching = Switching::kCutThrough;
  // 1x5 line, 4 hops, prop = 2.
  auto run = [](const NetConfig& config) {
    PacketNetwork net(Topology::mesh2d(1, 5, Rational(2)), config);
    net.submit(0, 4, 0, Rational(0));
    return net.run()[0].delivered;
  };
  const Rational t_sf = run(sf);
  const Rational t_ct = run(ct);
  // SF: 1 + 4*(1+2) + 1 = 14. CT: head streams: 1 + 3*(1/4+2) + (1+2) + 1
  //   = 1 + 27/4 + 3 + 1 = 47/4.
  EXPECT_EQ(t_sf, Rational(14));
  EXPECT_EQ(t_ct, Rational(47, 4));
  EXPECT_LT(t_ct, t_sf);
}

TEST(CutThrough, SingleHopIsIdentical) {
  NetConfig sf;
  NetConfig ct = sf;
  ct.switching = Switching::kCutThrough;
  for (const NetConfig& config : {sf, ct}) {
    PacketNetwork net(Topology::complete(4, Rational(3)), config);
    net.submit(0, 2, 0, Rational(0));
    EXPECT_EQ(net.run()[0].delivered, Rational(6));
  }
}

TEST(CutThrough, ConfigValidatesHeaderTime) {
  NetConfig config;
  config.header_time = Rational(0);
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.header_time = Rational(2);  // > wire_time = 1
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(CutThrough, LowersCalibratedLambdaOnMesh) {
  NetConfig sf;
  NetConfig ct = sf;
  ct.switching = Switching::kCutThrough;
  PacketNetwork net_sf(Topology::mesh2d(5, 5, Rational(1)), sf);
  PacketNetwork net_ct(Topology::mesh2d(5, 5, Rational(1)), ct);
  const CalibrationReport a = calibrate_lambda(net_sf, 60, 5);
  const CalibrationReport b = calibrate_lambda(net_ct, 60, 5);
  EXPECT_LT(b.lambda_mean, a.lambda_mean);
}

}  // namespace
}  // namespace postal
