// Unit tests for the implicit schedule oracle (src/oracle, docs/ORACLE.md):
// hand-checked answers on the paper's Figure 1 instance, agreement with the
// materialized BroadcastTree on small systems, the lazy children generator,
// send-slot arithmetic, the last-informed witness, edge cases (n = 1, the
// origin, out-of-range ranks), and the O(1)-memory claim's teeth: per-rank
// queries at n = 10^12 where no event list could exist.
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "oracle/oracle.hpp"
#include "par/genfib_cache.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/error.hpp"

namespace postal {
namespace {

TEST(OracleTest, Figure1MakespanAndWitness) {
  const oracle::ScheduleOracle oracle(14, Rational(5, 2));
  EXPECT_EQ(oracle.makespan(), Rational(15, 2));
  const oracle::Rank witness = oracle.last_informed_rank();
  EXPECT_EQ(oracle.inform_time(witness), Rational(15, 2));
}

TEST(OracleTest, OriginInfo) {
  const oracle::ScheduleOracle oracle(14, Rational(5, 2));
  const oracle::RankInfo info = oracle.info(0);
  EXPECT_EQ(info.rank, 0u);
  EXPECT_EQ(info.parent, 0u);  // the origin is its own parent
  EXPECT_EQ(info.inform_time, Rational(0));
  EXPECT_EQ(info.depth, 0u);
  EXPECT_EQ(info.subtree, 14u);
  EXPECT_GE(info.out_degree, 1u);
}

TEST(OracleTest, MatchesBroadcastTreeOnSmallSystems) {
  for (const auto& [n, lambda] :
       std::vector<std::pair<std::uint64_t, Rational>>{{14, Rational(5, 2)},
                                                       {64, Rational(1)},
                                                       {37, Rational(7, 3)},
                                                       {100, Rational(4)}}) {
    const oracle::ScheduleOracle oracle(n, lambda);
    const BroadcastTree tree = BroadcastTree::fibonacci(n, lambda);
    EXPECT_EQ(oracle.makespan(), tree.completion_time(lambda));
    for (std::uint64_t r = 0; r < n; ++r) {
      const oracle::RankInfo info = oracle.info(r);
      EXPECT_EQ(info.parent, tree.parent(static_cast<ProcId>(r)))
          << "parent mismatch at rank " << r << ", n=" << n;
      EXPECT_EQ(info.out_degree, tree.children(static_cast<ProcId>(r)).size())
          << "out-degree mismatch at rank " << r << ", n=" << n;
      // The children generator yields the tree's child list in send order.
      std::vector<std::uint64_t> kids;
      for (const oracle::Child& c : oracle.children(r)) kids.push_back(c.rank);
      const std::vector<ProcId>& expect = tree.children(static_cast<ProcId>(r));
      ASSERT_EQ(kids.size(), expect.size());
      for (std::size_t i = 0; i < kids.size(); ++i) {
        EXPECT_EQ(kids[i], static_cast<std::uint64_t>(expect[i]));
      }
    }
  }
}

TEST(OracleTest, SendSlotsAreConsecutiveUnits) {
  const oracle::ScheduleOracle oracle(64, Rational(5, 2));
  for (std::uint64_t r : {0ull, 1ull, 5ull, 33ull}) {
    const oracle::RankInfo info = oracle.info(r);
    for (std::uint64_t k = 0; k < info.out_degree; ++k) {
      EXPECT_EQ(oracle.send_slot(r, k),
                info.inform_time + Rational(static_cast<std::int64_t>(k)));
    }
    EXPECT_THROW((void)oracle.send_slot(r, info.out_degree), InvalidArgument);
    EXPECT_EQ(oracle.child_at(r, info.out_degree), std::nullopt);
  }
}

TEST(OracleTest, ChildAtAgreesWithGenerator) {
  const oracle::ScheduleOracle oracle(100, Rational(3));
  std::uint64_t slot = 0;
  for (const oracle::Child& c : oracle.children(0)) {
    const std::optional<oracle::Rank> got = oracle.child_at(0, slot);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, c.rank);
    EXPECT_EQ(oracle.send_slot(0, slot), c.send_time);
    ++slot;
  }
  EXPECT_EQ(slot, oracle.out_degree(0));
}

TEST(OracleTest, SingleProcessor) {
  const oracle::ScheduleOracle oracle(1, Rational(2));
  EXPECT_EQ(oracle.makespan(), Rational(0));
  EXPECT_EQ(oracle.last_informed_rank(), 0u);
  EXPECT_EQ(oracle.out_degree(0), 0u);
  EXPECT_EQ(oracle.children(0).begin(), oracle.children(0).end());
  EXPECT_TRUE(oracle.events(0, 1).empty());
}

TEST(OracleTest, OutOfRangeRankThrows) {
  const oracle::ScheduleOracle oracle(14, Rational(5, 2));
  EXPECT_THROW((void)oracle.inform_time(14), InvalidArgument);
  EXPECT_THROW((void)oracle.parent(99), InvalidArgument);
  EXPECT_THROW((void)oracle.events(3, 2), InvalidArgument);
  EXPECT_THROW((void)oracle.events(0, 15), InvalidArgument);
}

TEST(OracleTest, InvalidParamsThrow) {
  EXPECT_THROW(oracle::ScheduleOracle(0, Rational(2)), InvalidArgument);
  EXPECT_THROW(oracle::ScheduleOracle(4, Rational(1, 2)), InvalidArgument);
}

TEST(OracleTest, HugeSystemQueriesStayExact) {
  // n = 10^12: the materialized path would need ~10^13 bytes; the oracle
  // answers per-rank queries by descent. GenFib cross-checks the makespan.
  const std::uint64_t n = 1000000000000ull;
  for (const Rational& lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    const oracle::ScheduleOracle oracle(n, lambda);
    GenFib fib(lambda);
    EXPECT_EQ(oracle.makespan(), fib.f(n));
    const oracle::Rank witness = oracle.last_informed_rank();
    EXPECT_EQ(oracle.inform_time(witness), oracle.makespan());
    // Parent/child round-trip at an arbitrary deep rank.
    const oracle::Rank r = n - 1;
    const oracle::RankInfo info = oracle.info(r);
    bool found = false;
    std::uint64_t slot = 0;
    for (const oracle::Child& c : oracle.children(info.parent)) {
      if (c.rank == r) {
        EXPECT_EQ(c.send_time, info.parent_send);
        EXPECT_EQ(oracle.child_at(info.parent, slot), r);
        found = true;
        break;
      }
      ++slot;
    }
    EXPECT_TRUE(found) << "rank " << r << " missing from its parent's children";
  }
}

TEST(OracleTest, SubtreeSizesPartitionTheRange) {
  // The split recursion hands disjoint contiguous ranges to children; the
  // subtree sizes of rank 0's children plus itself must sum to n.
  const std::uint64_t n = 987654321ull;
  const oracle::ScheduleOracle oracle(n, Rational(5, 2));
  std::uint64_t total = 1;  // rank 0 itself
  for (const oracle::Child& c : oracle.children(0)) total += c.subtree;
  EXPECT_EQ(total, n);
}

TEST(OracleTest, SharedCacheServesRepeatQueries) {
  par::GenFibCache cache;
  const oracle::ScheduleOracle oracle(100000, Rational(5, 2), &cache);
  (void)oracle.info(99999);
  const par::GenFibCache::Stats before = cache.stats();
  (void)oracle.info(99999);  // identical descent: every split is cached
  const par::GenFibCache::Stats after = cache.stats();
  EXPECT_GT(after.split_hits, before.split_hits);
  EXPECT_EQ(after.split_misses, before.split_misses);
}

}  // namespace
}  // namespace postal
