// The oracle differential gate (docs/ORACLE.md): on every (n, lambda) the
// materialized path can hold, the implicit oracle must reproduce Algorithm
// BCAST *event-for-event* -- same sender, same receiver, same send start
// for every rank -- and its per-rank answers must agree with the tree
// reconstructed from that schedule. This is what licenses trusting the
// oracle's closed forms at n = 10^12, where nothing can double-check them
// but the streaming validator (whose source is the oracle itself) and the
// last-informed witness.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/oracle.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sim/stream_validator.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"

namespace postal {
namespace {

struct RandomPair {
  std::uint64_t n;
  Rational lambda;
};

std::vector<RandomPair> random_pairs(std::uint64_t seed, std::size_t count) {
  Xoshiro256 rng(seed);
  std::vector<RandomPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const std::uint64_t n = rng.uniform(1, 256);
    const std::uint64_t q = rng.uniform(1, 4);
    const std::uint64_t p = rng.uniform(q, 8 * q);  // lambda = p/q in [1, 8]
    pairs.push_back({n, Rational(static_cast<std::int64_t>(p),
                                 static_cast<std::int64_t>(q))});
  }
  return pairs;
}

/// The materialized schedule's events keyed by receiver, the total order
/// the oracle emits.
std::vector<StreamEvent> by_receiver(const Schedule& schedule) {
  std::vector<StreamEvent> events;
  events.reserve(schedule.size());
  for (const SendEvent& e : schedule.events()) {
    events.push_back({e.src, e.dst, e.t});
  }
  std::sort(events.begin(), events.end(),
            [](const StreamEvent& a, const StreamEvent& b) { return a.dst < b.dst; });
  return events;
}

TEST(OracleDifferentialTest, EventForEventOnRandomCorpus) {
  for (const RandomPair& pair : random_pairs(2024, 60)) {
    const PostalParams params(pair.n, pair.lambda);
    const Schedule schedule = bcast_schedule(params);
    const oracle::ScheduleOracle oracle(pair.n, pair.lambda);

    const std::vector<StreamEvent> expect = by_receiver(schedule);
    const std::vector<StreamEvent> got = oracle.events(0, pair.n);
    ASSERT_EQ(got.size(), expect.size())
        << "event count mismatch at n=" << pair.n << " lambda=" << pair.lambda;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i])
          << "event " << i << " mismatch at n=" << pair.n
          << " lambda=" << pair.lambda << ": oracle p" << got[i].src << "->p"
          << got[i].dst << " at " << got[i].t << ", sched p" << expect[i].src
          << "->p" << expect[i].dst << " at " << expect[i].t;
    }
  }
}

TEST(OracleDifferentialTest, PerRankAnswersMatchReconstructedTree) {
  for (const RandomPair& pair : random_pairs(777, 25)) {
    if (pair.n < 2) continue;
    const PostalParams params(pair.n, pair.lambda);
    const Schedule schedule = bcast_schedule(params);
    const BroadcastTree tree = BroadcastTree::from_schedule(schedule, pair.n);
    const oracle::ScheduleOracle oracle(pair.n, pair.lambda);
    for (std::uint64_t r = 0; r < pair.n; ++r) {
      const oracle::RankInfo info = oracle.info(r);
      EXPECT_EQ(info.parent, tree.parent(static_cast<ProcId>(r)));
      EXPECT_EQ(info.out_degree, tree.children(static_cast<ProcId>(r)).size());
    }
  }
}

TEST(OracleDifferentialTest, MakespanMatchesValidator) {
  for (const RandomPair& pair : random_pairs(31415, 20)) {
    const PostalParams params(pair.n, pair.lambda);
    const Schedule schedule = bcast_schedule(params);
    const SimReport report = validate_schedule(schedule, params);
    ASSERT_TRUE(report.ok) << report.summary();
    const oracle::ScheduleOracle oracle(pair.n, pair.lambda);
    EXPECT_EQ(oracle.makespan(), report.makespan)
        << "n=" << pair.n << " lambda=" << pair.lambda;
    const oracle::Rank witness = oracle.last_informed_rank();
    EXPECT_EQ(oracle.inform_time(witness), report.makespan);
  }
}

TEST(OracleDifferentialTest, StreamingAndMaterializedValidatorsAgree) {
  // The streaming validator accepting the oracle stream must coincide with
  // the full validator accepting the materialized schedule.
  for (const RandomPair& pair : random_pairs(999, 15)) {
    const PostalParams params(pair.n, pair.lambda);
    ASSERT_TRUE(validate_schedule(bcast_schedule(params), params).ok);
    const oracle::ScheduleOracle oracle(pair.n, pair.lambda);
    StreamingValidator streaming(oracle);
    streaming.feed(oracle.events(0, pair.n));
    const StreamReport report = streaming.finish();
    EXPECT_TRUE(report.ok) << "n=" << pair.n << " lambda=" << pair.lambda
                           << ": " << report.summary();
  }
}

TEST(OracleDifferentialTest, HugeSystemSmoke) {
  // Beyond the differential range nothing materializes; the witness gate
  // plus a streaming-validated tail chunk still certify the closed forms.
  for (const std::uint64_t n : {1000000000ull, 1000000000000ull}) {
    const oracle::ScheduleOracle oracle(n, Rational(5, 2));
    const oracle::Rank witness = oracle.last_informed_rank();
    EXPECT_EQ(oracle.inform_time(witness), oracle.makespan());
    const std::uint64_t lo = n - 1024;
    StreamingValidator streaming(oracle, lo, n);
    streaming.feed(oracle.events(lo, n));
    const StreamReport report = streaming.finish();
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(report.events_checked, 1024u);
  }
}

}  // namespace
}  // namespace postal
