// Shared helpers for the postal test suite.
#pragma once

#include <gtest/gtest.h>

/// EXPECT_THROW for [[nodiscard]] expressions (gtest discards the value).
#define POSTAL_EXPECT_THROW(expr, exception_type) \
  EXPECT_THROW(static_cast<void>(expr), exception_type)
