// Shared helpers for the postal test suite.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"

/// EXPECT_THROW for [[nodiscard]] expressions (gtest discards the value).
#define POSTAL_EXPECT_THROW(expr, exception_type) \
  EXPECT_THROW(static_cast<void>(expr), exception_type)

namespace postal::test {

/// Failure count of the currently running test, for detecting whether one
/// chaos scenario inside a loop failed (compare before/after).
inline int failure_part_count() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return info == nullptr ? 0 : info->result()->total_part_count();
}

/// Dump a failing chaos scenario so it can be reproduced offline: the seed
/// and the fully resolved fault plan go to stderr, and -- when the
/// POSTAL_CHAOS_ARTIFACTS environment variable names a directory (CI's
/// failing-seed artifact upload) -- the plan JSON is also written to
/// <dir>/<tag>.json. `tag` is sanitized to [A-Za-z0-9._-] for the filename.
inline void dump_chaos_artifact(const std::string& tag, std::uint64_t seed,
                                const FaultPlan& plan) {
  const std::string json = fault_plan_to_json(plan);
  std::fprintf(stderr, "[chaos] FAILING scenario %s seed=%llu\n", tag.c_str(),
               static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "[chaos] resolved plan: %s\n", json.c_str());
  const char* dir = std::getenv("POSTAL_CHAOS_ARTIFACTS");
  if (dir == nullptr || *dir == '\0') return;
  std::string name;
  for (const char c : tag) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    name.push_back(keep ? c : '_');
  }
  const std::string path = std::string(dir) + "/" + name + ".json";
  std::ofstream out(path);
  if (out) {
    out << json << "\n";
    std::fprintf(stderr, "[chaos] plan written to %s\n", path.c_str());
  }
}

}  // namespace postal::test
