// Tests for the schedule-compaction extension: minimal_stride and the
// BLOCKED(b) family.
#include "compaction/blocked.hpp"

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "sched/pipeline.hpp"
#include "sched/repeat.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(MinimalStride, RejectsBadArguments) {
  const PostalParams params(4, Rational(2));
  const Schedule good = bcast_schedule(params);
  POSTAL_EXPECT_THROW(minimal_stride(good, params, 1, 1), InvalidArgument);
  POSTAL_EXPECT_THROW(minimal_stride(good, params, 0, 3), InvalidArgument);
  Schedule bad;
  bad.add(0, 1, 0, Rational(0));
  bad.add(0, 2, 0, Rational(0));  // send-port conflict
  POSTAL_EXPECT_THROW(minimal_stride(bad, params, 1, 3), InvalidArgument);
}

TEST(MinimalStride, EmptyIterationHasZeroStride) {
  const PostalParams params(1, Rational(2));
  EXPECT_EQ(minimal_stride(Schedule(), params, 1, 3), Rational(0));
}

TEST(MinimalStride, ResultIsValidAndOneStepLessIsNot) {
  // The defining property: the returned stride validates, the previous
  // grid step does not.
  for (const Rational lambda : {Rational(2), Rational(5, 2), Rational(4)}) {
    const PostalParams params(20, lambda);
    const Schedule iteration = bcast_schedule(params);
    const Rational s = minimal_stride(iteration, params, 1, 4);
    const Rational step(1, lambda.den());

    auto valid_at = [&](const Rational& stride) {
      Schedule combined;
      for (std::uint32_t i = 0; i < 4; ++i) {
        combined.append_shifted(iteration,
                                stride * Rational(static_cast<std::int64_t>(i)), i);
      }
      ValidatorOptions options;
      options.messages = 4;
      return validate_schedule(combined, params, options).ok;
    };
    EXPECT_TRUE(valid_at(s)) << "lambda=" << lambda.str();
    if (s > step) {
      EXPECT_FALSE(valid_at(s - step)) << "lambda=" << lambda.str();
    }
  }
}

TEST(MinimalStride, NeverExceedsLemma10Stride) {
  // Lemma 10's REPEAT stride f(n) - (lambda - 1) is sufficient; the true
  // minimum can only be smaller or equal.
  for (const Rational lambda : {Rational(2), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 21ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      const Schedule iteration = bcast_schedule(params);
      const Rational paper = fib.f(n) - (lambda - Rational(1));
      const Rational measured = minimal_stride(iteration, params, 1, 4);
      EXPECT_LE(measured, paper) << "n=" << n << " lambda=" << lambda.str();
    }
  }
}

TEST(Blocked, RejectsBadBlockSizes) {
  const PostalParams params(8, Rational(2));
  POSTAL_EXPECT_THROW(blocked_schedule(params, 4, 0), InvalidArgument);
  POSTAL_EXPECT_THROW(blocked_schedule(params, 4, 5), InvalidArgument);
}

TEST(Blocked, SingleProcessorEmpty) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(blocked_schedule(params, 4, 2).empty());
}

struct BlockedCase {
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t b;
  Rational lambda;
};

class BlockedSweep : public ::testing::TestWithParam<BlockedCase> {};

TEST_P(BlockedSweep, ValidCoversAndBeatsNothingBelowLowerBound) {
  const auto& [n, m, b, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = blocked_schedule(params, m, b);
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  const SimReport report = validate_schedule(s, params, options);
  ASSERT_TRUE(report.ok) << report.summary();
  GenFib fib(lambda);
  const Rational lower =
      Rational(static_cast<std::int64_t>(m) - 1) + fib.f(n);  // Lemma 8
  EXPECT_GE(report.makespan, lower);
  EXPECT_EQ(report.makespan, predict_blocked(params, m, b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockedSweep,
    ::testing::Values(BlockedCase{8, 6, 1, Rational(2)},
                      BlockedCase{8, 6, 2, Rational(2)},
                      BlockedCase{8, 6, 3, Rational(2)},
                      BlockedCase{8, 6, 6, Rational(2)},
                      BlockedCase{14, 8, 4, Rational(5, 2)},
                      BlockedCase{32, 5, 2, Rational(4)},
                      BlockedCase{20, 7, 3, Rational(3, 2)}),
    [](const ::testing::TestParamInfo<BlockedCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_m" + std::to_string(pinfo.param.m) +
             "_b" + std::to_string(pinfo.param.b) + "_lam" +
             std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

TEST(Blocked, FullBlockRecoversPipeline) {
  // b = m is exactly PIPELINE.
  const PostalParams params(16, Rational(5, 2));
  EXPECT_EQ(predict_blocked(params, 6, 6), predict_pipeline(Rational(5, 2), 16, 6));
}

TEST(Blocked, CompactionNeverLosesToRepeat) {
  // b = 1 with an optimized stride is REPEAT with Lemma 10's stride
  // replaced by the true minimum -- it can only be faster or equal.
  for (const Rational lambda : {Rational(2), Rational(5, 2)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 20ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {2ULL, 4ULL, 6ULL}) {
        EXPECT_LE(predict_blocked(params, m, 1), predict_repeat(fib, n, m))
            << "n=" << n << " m=" << m << " lambda=" << lambda.str();
      }
    }
  }
}

TEST(Blocked, AutoPicksAtLeastAsGoodAsEndpoints) {
  const PostalParams params(16, Rational(5, 2));
  const std::uint64_t m = 8;
  const BlockedPlan plan = auto_blocked(params, m);
  EXPECT_LE(plan.completion, predict_blocked(params, m, 1));
  EXPECT_LE(plan.completion, predict_blocked(params, m, m));
  EXPECT_GE(plan.block, 1u);
  EXPECT_LE(plan.block, m);
}

}  // namespace
}  // namespace postal
