// Tests for the independent optimality checkers (split-recursion DP and
// greedy frontier expansion): they must agree with each other on a wide
// grid -- the Theorem 6 cross-check itself lives in tests/paper.
#include "brute/optimal_search.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace postal {
namespace {

TEST(BruteForce, Degenerates) {
  EXPECT_EQ(optimal_broadcast_dp(1, Rational(3)), Rational(0));
  EXPECT_EQ(optimal_broadcast_greedy(1, Rational(3)), Rational(0));
  EXPECT_EQ(optimal_broadcast_dp(2, Rational(3)), Rational(3));
  EXPECT_EQ(optimal_broadcast_greedy(2, Rational(3)), Rational(3));
}

TEST(BruteForce, RejectsBadArguments) {
  POSTAL_EXPECT_THROW(optimal_broadcast_dp(0, Rational(2)), InvalidArgument);
  POSTAL_EXPECT_THROW(optimal_broadcast_dp(4, Rational(1, 2)), InvalidArgument);
  POSTAL_EXPECT_THROW(optimal_broadcast_greedy(0, Rational(2)), InvalidArgument);
  POSTAL_EXPECT_THROW(optimal_broadcast_greedy(4, Rational(1, 2)), InvalidArgument);
}

TEST(BruteForce, TelephoneModelIsCeilLog2) {
  for (std::uint64_t n = 1; n <= 64; ++n) {
    std::int64_t expected = 0;
    std::uint64_t reach = 1;
    while (reach < n) {
      reach *= 2;
      ++expected;
    }
    EXPECT_EQ(optimal_broadcast_dp(n, Rational(1)), Rational(expected)) << n;
    EXPECT_EQ(optimal_broadcast_greedy(n, Rational(1)), Rational(expected)) << n;
  }
}

TEST(BruteForce, DpAndGreedyAgreeOnGrid) {
  for (const Rational lambda :
       {Rational(1), Rational(3, 2), Rational(2), Rational(5, 2), Rational(3),
        Rational(10, 3), Rational(6)}) {
    for (std::uint64_t n = 1; n <= 150; ++n) {
      EXPECT_EQ(optimal_broadcast_dp(n, lambda), optimal_broadcast_greedy(n, lambda))
          << "lambda=" << lambda.str() << " n=" << n;
    }
  }
}

TEST(BruteForce, MonotoneInN) {
  Rational prev(0);
  for (std::uint64_t n = 1; n <= 100; ++n) {
    const Rational t = optimal_broadcast_greedy(n, Rational(5, 2));
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(BruteForce, MonotoneInLambda) {
  Rational prev(0);
  for (std::int64_t num = 2; num <= 16; ++num) {
    const Rational t = optimal_broadcast_dp(50, Rational(num, 2));
    EXPECT_GE(t, prev) << "lambda=" << Rational(num, 2).str();
    prev = t;
  }
}

TEST(BruteForce, Figure1Value) {
  EXPECT_EQ(optimal_broadcast_dp(14, Rational(5, 2)), Rational(15, 2));
  EXPECT_EQ(optimal_broadcast_greedy(14, Rational(5, 2)), Rational(15, 2));
}

}  // namespace
}  // namespace postal
