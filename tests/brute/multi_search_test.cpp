// Tests for the exhaustive multi-message broadcast search (the Section 5
// gap probe).
#include "brute/multi_search.hpp"

#include <gtest/gtest.h>

#include "brute/optimal_search.hpp"
#include "model/genfib.hpp"
#include "sched/registry.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(MultiSearch, RejectsOutOfRangeInstances) {
  POSTAL_EXPECT_THROW(multi_broadcast_feasible(9, 2, 2, 5, false), InvalidArgument);
  POSTAL_EXPECT_THROW(multi_broadcast_feasible(3, 9, 2, 5, false), InvalidArgument);
  POSTAL_EXPECT_THROW(multi_broadcast_feasible(3, 2, 9, 5, false), InvalidArgument);
  POSTAL_EXPECT_THROW(multi_broadcast_feasible(3, 2, 2, -1, false), InvalidArgument);
}

TEST(MultiSearch, SingleMessageMatchesTheorem6) {
  // m = 1: the optimum (order is vacuous) must equal f_lambda(n).
  for (std::int64_t lambda = 1; lambda <= 4; ++lambda) {
    GenFib fib{Rational(lambda)};
    for (std::uint64_t n = 1; n <= 5; ++n) {
      const Rational expected = fib.f(n);
      ASSERT_TRUE(expected.is_integer());
      EXPECT_EQ(multi_broadcast_optimum(n, 1, lambda, false), expected.num())
          << "n=" << n << " lambda=" << lambda;
      EXPECT_EQ(multi_broadcast_optimum(n, 1, lambda, true), expected.num())
          << "n=" << n << " lambda=" << lambda;
    }
  }
}

TEST(MultiSearch, OrderPreservationCanCostStrictlyMore) {
  // The concrete certificate of the Section 5 / [13] gap: at n=3, m=2,
  // lambda=2 the unrestricted optimum meets Lemma 8 (4) but every
  // order-preserving schedule needs 5.
  EXPECT_EQ(multi_broadcast_optimum(3, 2, 2, false), 4);
  EXPECT_EQ(multi_broadcast_optimum(3, 2, 2, true), 5);
}

TEST(MultiSearch, Lemma8IsNotAlwaysTightEvenUnrestricted) {
  // (4, 3, 3): Lemma 8 gives 2 + f_3(4) = 7, but no schedule (ordered or
  // not) beats 8 -- the lower bound can be off by one, consistent with the
  // paper's "cannot be *substantially* improved".
  GenFib fib{Rational(3)};
  EXPECT_EQ(Rational(2) + fib.f(4), Rational(7));
  EXPECT_EQ(multi_broadcast_optimum(4, 3, 3, false), 8);
}

TEST(MultiSearch, OptimumBracketedByLemma8AndBestAlgorithm) {
  for (std::int64_t lambda = 1; lambda <= 3; ++lambda) {
    GenFib fib{Rational(lambda)};
    for (std::uint64_t n = 2; n <= 4; ++n) {
      const PostalParams params(n, Rational(lambda));
      for (std::uint64_t m = 1; m <= 3; ++m) {
        const std::int64_t lower =
            static_cast<std::int64_t>(m) - 1 + fib.f(n).num();
        const std::int64_t free_opt = multi_broadcast_optimum(n, m, lambda, false);
        const std::int64_t order_opt = multi_broadcast_optimum(n, m, lambda, true);
        EXPECT_GE(free_opt, lower) << "n=" << n << " m=" << m << " l=" << lambda;
        EXPECT_LE(free_opt, order_opt);
        // The Section 4 algorithms are all order-preserving upper bounds.
        Rational best_algo;
        bool first = true;
        for (const MultiAlgo algo : all_multi_algos()) {
          const Rational time = predict_multi(algo, params, m);
          if (first || time < best_algo) best_algo = time;
          first = false;
        }
        EXPECT_LE(Rational(order_opt), best_algo)
            << "n=" << n << " m=" << m << " l=" << lambda;
      }
    }
  }
}

TEST(MultiSearch, FeasibilityIsMonotoneInHorizon) {
  const std::int64_t opt = multi_broadcast_optimum(4, 2, 2, true);
  EXPECT_FALSE(multi_broadcast_feasible(4, 2, 2, opt - 1, true));
  EXPECT_TRUE(multi_broadcast_feasible(4, 2, 2, opt, true));
  EXPECT_TRUE(multi_broadcast_feasible(4, 2, 2, opt + 1, true));
}

TEST(MultiSearch, SingleProcessorTrivial) {
  EXPECT_EQ(multi_broadcast_optimum(1, 3, 2, true), 0);
}

}  // namespace
}  // namespace postal
