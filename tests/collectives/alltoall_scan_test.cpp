// Tests for the all-to-all personalized exchange and the parallel-prefix
// scan extensions.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "collectives/alltoall.hpp"
#include "collectives/reduce.hpp"
#include "collectives/scan.hpp"
#include "model/genfib.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

TEST(Alltoall, MsgIdsAreABijection) {
  const PostalParams params(7, Rational(2));
  std::vector<bool> seen(7 * 6, false);
  for (ProcId s = 0; s < 7; ++s) {
    for (ProcId d = 0; d < 7; ++d) {
      if (s == d) continue;
      const MsgId id = alltoall_msg_id(params, s, d);
      ASSERT_LT(id, seen.size());
      EXPECT_FALSE(seen[id]) << "duplicate id for (" << s << "," << d << ")";
      seen[id] = true;
    }
  }
}

TEST(Alltoall, MsgIdRejectsSelfPairs) {
  const PostalParams params(4, Rational(2));
  POSTAL_EXPECT_THROW(alltoall_msg_id(params, 2, 2), InvalidArgument);
}

class AlltoallSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(AlltoallSweep, ValidAndMeetsLowerBoundExactly) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = alltoall_schedule(params);
  const SimReport report = validate_schedule(s, params, alltoall_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_alltoall(params));
  EXPECT_EQ(report.makespan, alltoall_lower_bound(params));
  EXPECT_EQ(s.size(), n * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlltoallSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{2, Rational(2)},
                      std::pair<std::uint64_t, Rational>{5, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{12, Rational(1)},
                      std::pair<std::uint64_t, Rational>{9, Rational(4)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(Alltoall, EveryPairDeliveredDirectly) {
  const PostalParams params(6, Rational(3));
  const Schedule s = alltoall_schedule(params);
  for (const SendEvent& e : s.events()) {
    EXPECT_EQ(e.msg, alltoall_msg_id(params, e.src, e.dst));
  }
}

TEST(Alltoall, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(alltoall_schedule(params).empty());
  EXPECT_EQ(predict_alltoall(params), Rational(0));
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

TEST(Scan, CompletionIsTwiceBroadcast) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 14ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      EXPECT_EQ(predict_scan(params), Rational(2) * fib.f(n))
          << "n=" << n << " lambda=" << lambda.str();
    }
  }
}

TEST(Scan, ScheduleHasBothSweeps) {
  const PostalParams params(10, Rational(5, 2));
  const Schedule s = scan_schedule(params);
  EXPECT_EQ(s.size(), 2 * (params.n() - 1));
  // Up-sweep ids < n; down-sweep ids >= n.
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  for (const SendEvent& e : s.events()) {
    (e.msg < params.n() ? up : down) += 1;
  }
  EXPECT_EQ(up, params.n() - 1);
  EXPECT_EQ(down, params.n() - 1);
}

class ScanSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(ScanSweep, ComputesExactExclusivePrefixes) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  std::vector<std::int64_t> inputs(n);
  for (std::uint64_t p = 0; p < n; ++p) {
    inputs[p] = static_cast<std::int64_t>(p * p + 1);
  }
  const std::vector<std::int64_t> result = scan_values(params, inputs);
  std::int64_t running = 0;
  for (std::uint64_t p = 0; p < n; ++p) {
    EXPECT_EQ(result[p], running) << "p=" << p;
    running += inputs[p];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScanSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{1, Rational(2)},
                      std::pair<std::uint64_t, Rational>{2, Rational(2)},
                      std::pair<std::uint64_t, Rational>{14, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{64, Rational(1)},
                      std::pair<std::uint64_t, Rational>{100, Rational(3)},
                      std::pair<std::uint64_t, Rational>{33, Rational(9, 4)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(Scan, RejectsWrongInputSize) {
  const PostalParams params(4, Rational(2));
  POSTAL_EXPECT_THROW(scan_values(params, {1, 2}), InvalidArgument);
}

TEST(Scan, NegativeValuesWork) {
  const PostalParams params(9, Rational(5, 2));
  std::vector<std::int64_t> inputs{3, -7, 0, 11, -2, 5, -5, 1, 100};
  const auto result = scan_values(params, inputs);
  EXPECT_EQ(result[0], 0);
  EXPECT_EQ(result[2], -4);
  EXPECT_EQ(result[8], 6);
}

TEST(Scan, BothSweepsPassTheirPhaseValidators) {
  const PostalParams params(20, Rational(5, 2));
  GenFib fib(params.lambda());
  const Rational half = fib.f(params.n());
  const Schedule s = scan_schedule(params);
  Schedule up;
  Schedule down;
  for (const SendEvent& e : s.events()) {
    if (e.msg < params.n()) {
      up.add(e);
    } else {
      down.add(e.src, e.dst, 0, e.t - half);
    }
  }
  // Up-sweep is exactly a reduction; down-sweep is exactly a broadcast.
  const ReduceReport r1 = validate_reduce(up, params);
  EXPECT_TRUE(r1.ok) << (r1.violations.empty() ? "" : r1.violations[0]);
  const SimReport r2 = validate_schedule(down, params);
  EXPECT_TRUE(r2.ok) << r2.summary();
  EXPECT_EQ(r1.completion, half);
  EXPECT_EQ(r2.makespan, half);
}

}  // namespace
}  // namespace postal
