// Tests for scatter, gather, allgather, and barrier in the postal model.
#include <gtest/gtest.h>

#include <tuple>

#include "collectives/allgather.hpp"
#include "collectives/barrier.hpp"
#include "collectives/reduce.hpp"
#include "collectives/scatter.hpp"
#include "model/genfib.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

// ---------------------------------------------------------------------------
// Scatter / gather
// ---------------------------------------------------------------------------

class ScatterSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(ScatterSweep, ScatterMeetsItsLowerBoundExactly) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = scatter_schedule(params);
  const SimReport report = validate_schedule(s, params, scatter_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_scatter(params));
  EXPECT_EQ(report.makespan, scatter_gather_lower_bound(params));
}

TEST_P(ScatterSweep, GatherMeetsItsLowerBoundExactly) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = gather_schedule(params);
  const SimReport report = validate_schedule(s, params, gather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_gather(params));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScatterSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{2, Rational(2)},
                      std::pair<std::uint64_t, Rational>{14, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{64, Rational(1)},
                      std::pair<std::uint64_t, Rational>{40, Rational(17, 4)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(Scatter, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(scatter_schedule(params).empty());
  EXPECT_EQ(predict_scatter(params), Rational(0));
}

TEST(Scatter, PersonalizedMessagesGoToTheRightPlaces) {
  const PostalParams params(6, Rational(3));
  const Schedule s = scatter_schedule(params);
  for (const SendEvent& e : s.events()) {
    EXPECT_EQ(e.src, 0u);
    EXPECT_EQ(e.dst, e.msg + 1);
  }
}

TEST(Gather, ArrivalsLandBackToBackAtRoot) {
  const PostalParams params(6, Rational(3));
  const Schedule s = gather_schedule(params);
  const SimReport report = validate_schedule(s, params, gather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  // Arrivals at lambda, lambda+1, ..., lambda+n-2: receive port saturated.
  for (const SendEvent& e : s.events()) {
    EXPECT_EQ(e.t + params.lambda(),
              params.lambda() + Rational(static_cast<std::int64_t>(e.msg)));
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

class AllgatherSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(AllgatherSweep, DirectExchangeIsValidAndOptimal) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = allgather_direct_schedule(params);
  const SimReport report = validate_schedule(s, params, allgather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_allgather_direct(params));
  EXPECT_EQ(report.makespan, allgather_lower_bound(params));
}

TEST_P(AllgatherSweep, RingIsValidButPaysLatencyPerHop) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = allgather_ring_schedule(params);
  const SimReport report = validate_schedule(s, params, allgather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_allgather_ring(params));
  // The ring meets the lower bound only in the telephone model or the
  // degenerate 2-processor system ((n-1)*lambda == (n-2)+lambda there).
  if (lambda == Rational(1) || n == 2) {
    EXPECT_EQ(report.makespan, allgather_lower_bound(params));
  } else {
    EXPECT_GT(report.makespan, allgather_lower_bound(params));
  }
}

TEST_P(AllgatherSweep, GatherBcastIsValid) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = allgather_gather_bcast_schedule(params);
  const SimReport report = validate_schedule(s, params, allgather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_allgather_gather_bcast(params));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllgatherSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{2, Rational(2)},
                      std::pair<std::uint64_t, Rational>{5, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{16, Rational(1)},
                      std::pair<std::uint64_t, Rational>{12, Rational(4)},
                      std::pair<std::uint64_t, Rational>{9, Rational(7, 3)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(Allgather, DirectBeatsRingExactlyWhenLatencyAboveOne) {
  for (const Rational lambda : {Rational(3, 2), Rational(3), Rational(8)}) {
    const PostalParams params(10, lambda);
    EXPECT_LT(predict_allgather_direct(params), predict_allgather_ring(params))
        << "lambda=" << lambda.str();
  }
}

TEST(Allgather, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(allgather_direct_schedule(params).empty());
  EXPECT_TRUE(allgather_ring_schedule(params).empty());
  EXPECT_EQ(predict_allgather_direct(params), Rational(0));
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

TEST(Barrier, CompletionIsTwiceTheIndexFunction) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 9ULL, 33ULL, 128ULL}) {
      const PostalParams params(n, lambda);
      EXPECT_EQ(predict_barrier(params), Rational(2) * fib.f(n))
          << "n=" << n << " lambda=" << lambda.str();
    }
  }
}

TEST(Barrier, ScheduleHasBothPhases) {
  const PostalParams params(10, Rational(5, 2));
  const Schedule s = barrier_schedule(params);
  // n-1 arrival sends plus n-1 release sends.
  EXPECT_EQ(s.size(), 2 * (params.n() - 1));
  // The release message id is n.
  bool saw_release = false;
  for (const SendEvent& e : s.events()) {
    if (e.msg == params.n()) saw_release = true;
  }
  EXPECT_TRUE(saw_release);
}

TEST(Barrier, ReducePhaseIsValidAndReleasePhaseCovers) {
  const PostalParams params(10, Rational(5, 2));
  const Schedule s = barrier_schedule(params);
  // Split phases by message id and validate each with its own checker.
  Schedule arrive;
  Schedule release;
  for (const SendEvent& e : s.events()) {
    if (e.msg == params.n()) {
      release.add(e.src, e.dst, 0, e.t - predict_reduce(params));
    } else {
      arrive.add(e);
    }
  }
  const ReduceReport r1 = validate_reduce(arrive, params);
  EXPECT_TRUE(r1.ok) << (r1.violations.empty() ? "" : r1.violations[0]);
  const SimReport r2 = validate_schedule(release, params);
  EXPECT_TRUE(r2.ok) << r2.summary();
}

TEST(Barrier, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(barrier_schedule(params).empty());
  EXPECT_EQ(predict_barrier(params), Rational(0));
}

}  // namespace
}  // namespace postal
