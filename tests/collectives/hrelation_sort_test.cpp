// Tests for the Section 5 "permuting and sorting" problems: h-relation
// routing via Konig edge coloring, and the sorting algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "collectives/allgather.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/hrelation.hpp"
#include "collectives/sort.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

// ---------------------------------------------------------------------------
// h-relations
// ---------------------------------------------------------------------------

void check_proper_coloring(const PostalParams& params,
                           const std::vector<Demand>& demands,
                           const std::vector<std::uint64_t>& color,
                           std::uint64_t h) {
  ASSERT_EQ(color.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LT(color[i], h) << "edge " << i;
    for (std::size_t j = i + 1; j < demands.size(); ++j) {
      if (demands[i].src == demands[j].src || demands[i].dst == demands[j].dst) {
        EXPECT_NE(color[i], color[j])
            << "edges " << i << " and " << j << " share a port";
      }
    }
  }
  static_cast<void>(params);
}

TEST(HRelation, EmptyRelationIsFree) {
  const PostalParams params(4, Rational(2));
  EXPECT_EQ(relation_degree(params, {}), 0u);
  EXPECT_TRUE(hrelation_schedule(params, {}).empty());
  EXPECT_EQ(predict_hrelation(params, {}), Rational(0));
}

TEST(HRelation, RejectsBadDemands) {
  const PostalParams params(4, Rational(2));
  POSTAL_EXPECT_THROW(relation_degree(params, {{1, 1}}), InvalidArgument);
  POSTAL_EXPECT_THROW(relation_degree(params, {{1, 9}}), InvalidArgument);
}

TEST(HRelation, PermutationCompletesInLambdaExactly) {
  const PostalParams params(8, Rational(5, 2));
  std::vector<ProcId> pi{3, 0, 1, 2, 7, 6, 5, 4};
  const std::vector<Demand> demands = permutation_demands(params, pi);
  EXPECT_EQ(relation_degree(params, demands), 1u);
  const Schedule s = hrelation_schedule(params, demands);
  const SimReport report = validate_schedule(s, params, hrelation_goal(params, demands));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, params.lambda());
  // Everything fires at t = 0: permuting is free in the postal model.
  for (const SendEvent& e : s.events()) EXPECT_EQ(e.t, Rational(0));
}

TEST(HRelation, PermutationWithFixedPointsSkipsThem) {
  const PostalParams params(5, Rational(2));
  std::vector<ProcId> pi{0, 2, 1, 3, 4};  // three fixed points
  EXPECT_EQ(permutation_demands(params, pi).size(), 2u);
}

TEST(HRelation, RejectsNonPermutations) {
  const PostalParams params(3, Rational(2));
  POSTAL_EXPECT_THROW(permutation_demands(params, {0, 0, 1}), InvalidArgument);
  POSTAL_EXPECT_THROW(permutation_demands(params, {0, 1}), InvalidArgument);
}

TEST(HRelation, AlltoallIsAnNMinusOneRelation) {
  // The rotated all-to-all is an (n-1)-relation; Konig must route any
  // (n-1)-relation in the same optimal time (n-2) + lambda.
  const PostalParams params(7, Rational(3));
  std::vector<Demand> demands;
  for (ProcId s = 0; s < 7; ++s) {
    for (ProcId d = 0; d < 7; ++d) {
      if (s != d) demands.push_back(Demand{s, d});
    }
  }
  EXPECT_EQ(relation_degree(params, demands), 6u);
  const Schedule s = hrelation_schedule(params, demands);
  const SimReport report = validate_schedule(s, params, hrelation_goal(params, demands));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_alltoall(params));
}

TEST(HRelation, RandomRelationsRouteOptimally) {
  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t n = rng.uniform(2, 14);
    const PostalParams params(n, Rational(static_cast<std::int64_t>(rng.uniform(2, 9)),
                                          2));
    // Random multigraph demands (repeats allowed).
    std::vector<Demand> demands;
    const std::uint64_t count = rng.uniform(1, 4 * n);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto src = static_cast<ProcId>(rng.uniform(0, n - 1));
      auto dst = static_cast<ProcId>(rng.uniform(0, n - 2));
      if (dst >= src) ++dst;
      demands.push_back(Demand{src, dst});
    }
    const std::uint64_t h = relation_degree(params, demands);
    const std::vector<std::uint64_t> color = color_relation(params, demands);
    check_proper_coloring(params, demands, color, h);
    const Schedule s = hrelation_schedule(params, demands);
    const SimReport report =
        validate_schedule(s, params, hrelation_goal(params, demands));
    ASSERT_TRUE(report.ok) << "trial=" << trial << ": " << report.summary();
    EXPECT_EQ(report.makespan, predict_hrelation(params, demands)) << "trial=" << trial;
  }
}

TEST(HRelation, ParallelDemandsBetweenSamePairStack) {
  // Three messages u -> v form a 3-relation: T = 2 + lambda.
  const PostalParams params(2, Rational(2));
  const std::vector<Demand> demands{{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(relation_degree(params, demands), 3u);
  const Schedule s = hrelation_schedule(params, demands);
  const SimReport report = validate_schedule(s, params, hrelation_goal(params, demands));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, Rational(4));
}

// ---------------------------------------------------------------------------
// Sorting
// ---------------------------------------------------------------------------

TEST(Sort, GossipSortProducesSortedPermutation) {
  const PostalParams params(9, Rational(5, 2));
  const std::vector<std::int64_t> keys{5, -1, 9, 0, 5, 3, -7, 2, 5};
  const std::vector<std::int64_t> out = sort_values(params, keys);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  auto a = keys;
  auto b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Sort, GossipSortScheduleIsTheOptimalAllgather) {
  const PostalParams params(12, Rational(3));
  const SimReport report =
      validate_schedule(sort_schedule(params), params, allgather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_sort(params));
  EXPECT_EQ(report.makespan, Rational(10) + Rational(3));
}

TEST(Sort, OddEvenSortsAndCostsNLambda) {
  const PostalParams params(10, Rational(5, 2));
  std::vector<std::int64_t> keys{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  const OddEvenResult result = odd_even_sort(params, keys);
  EXPECT_TRUE(std::is_sorted(result.values.begin(), result.values.end()));
  EXPECT_EQ(result.rounds, 10u);
  EXPECT_EQ(result.completion, Rational(25));
}

TEST(Sort, GossipBeatsOddEvenForEveryLambdaAboveOne) {
  for (const Rational lambda : {Rational(3, 2), Rational(3), Rational(8)}) {
    for (std::uint64_t n : {4ULL, 32ULL, 128ULL}) {
      const PostalParams params(n, lambda);
      std::vector<std::int64_t> keys(n);
      std::iota(keys.rbegin(), keys.rend(), 0);
      const OddEvenResult baseline = odd_even_sort(params, keys);
      EXPECT_LT(predict_sort(params), baseline.completion)
          << "n=" << n << " lambda=" << lambda.str();
    }
  }
}

TEST(Sort, RejectsWrongKeyCount) {
  const PostalParams params(4, Rational(2));
  POSTAL_EXPECT_THROW(sort_values(params, {1, 2}), InvalidArgument);
  POSTAL_EXPECT_THROW(odd_even_sort(params, {1}), InvalidArgument);
}

}  // namespace
}  // namespace postal
