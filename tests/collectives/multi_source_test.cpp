// Tests for multi-source broadcast (k-source gossip).
#include "collectives/multi_source.hpp"

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(MultiSource, ValidatesSourceList) {
  const PostalParams params(8, Rational(2));
  POSTAL_EXPECT_THROW(multi_source_schedule(params, {}), InvalidArgument);
  POSTAL_EXPECT_THROW(multi_source_schedule(params, {1, 1}), InvalidArgument);
  POSTAL_EXPECT_THROW(multi_source_schedule(params, {9}), InvalidArgument);
}

TEST(MultiSource, SingleSourceIsBroadcast) {
  const PostalParams params(20, Rational(5, 2));
  GenFib fib(params.lambda());
  for (const ProcId hub : {ProcId{0}, ProcId{7}, ProcId{19}}) {
    const std::vector<ProcId> sources{hub};
    const Schedule s = multi_source_schedule(params, sources);
    const SimReport report =
        validate_schedule(s, params, multi_source_goal(params, sources));
    ASSERT_TRUE(report.ok) << "hub=" << hub << ": " << report.summary();
    EXPECT_EQ(report.makespan, fib.f(20)) << "hub=" << hub;
  }
}

struct MsCase {
  std::uint64_t n;
  std::vector<ProcId> sources;
  Rational lambda;
};

class MultiSourceSweep : public ::testing::TestWithParam<MsCase> {};

TEST_P(MultiSourceSweep, ValidCoversAndRespectsLowerBound) {
  const auto& [n, sources, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = multi_source_schedule(params, sources);
  const SimReport report =
      validate_schedule(s, params, multi_source_goal(params, sources));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_multi_source(params, sources));
  EXPECT_GE(report.makespan, multi_source_lower_bound(params, sources.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiSourceSweep,
    ::testing::Values(MsCase{8, {0, 1, 2}, Rational(2)},
                      MsCase{8, {3, 6, 1, 7}, Rational(5, 2)},
                      MsCase{20, {5, 0}, Rational(3)},
                      MsCase{16, {15, 3, 8, 0, 12}, Rational(1)},
                      MsCase{14, {2, 9, 13}, Rational(5, 2)},
                      MsCase{30, {29}, Rational(4)}),
    [](const ::testing::TestParamInfo<MsCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_k" +
             std::to_string(pinfo.param.sources.size()) + "_lam" +
             std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

TEST(MultiSource, InterpolatesBetweenBroadcastAndAllgather) {
  const PostalParams params(12, Rational(2));
  GenFib fib(params.lambda());
  Rational prev(0);
  // Completion grows with the number of sources.
  for (std::uint64_t k = 1; k <= 12; ++k) {
    std::vector<ProcId> sources;
    for (std::uint64_t i = 0; i < k; ++i) sources.push_back(static_cast<ProcId>(i));
    const Rational t = predict_multi_source(params, sources);
    EXPECT_GE(t, prev) << "k=" << k;
    EXPECT_GE(t, multi_source_lower_bound(params, k)) << "k=" << k;
    prev = t;
  }
  // k = 1 is exactly broadcast time.
  EXPECT_EQ(predict_multi_source(params, {0}), fib.f(12));
}

TEST(MultiSource, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(multi_source_schedule(params, {0}).empty());
  EXPECT_EQ(predict_multi_source(params, {0}), Rational(0));
}

}  // namespace
}  // namespace postal
