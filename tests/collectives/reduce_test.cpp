// Tests for reduction/combining: the time-reversed BCAST schedule, its
// optimality (f_lambda(n)), and the dedicated reduce validator including
// negative cases.
#include "collectives/reduce.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "model/genfib.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

class ReduceSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(ReduceSweep, ValidAndCompletesAtIndexFunction) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = reduce_schedule(params);
  const ReduceReport report = validate_reduce(s, params);
  ASSERT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  GenFib fib(lambda);
  EXPECT_EQ(report.completion, fib.f(n));
  EXPECT_EQ(report.completion, predict_reduce(params));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReduceSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{2, Rational(2)},
                      std::pair<std::uint64_t, Rational>{14, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{64, Rational(1)},
                      std::pair<std::uint64_t, Rational>{100, Rational(3)},
                      std::pair<std::uint64_t, Rational>{33, Rational(9, 4)},
                      std::pair<std::uint64_t, Rational>{7, Rational(10)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(Reduce, SingleProcessorEmpty) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(reduce_schedule(params).empty());
  EXPECT_EQ(predict_reduce(params), Rational(0));
  const ReduceReport report = validate_reduce(Schedule(), params);
  EXPECT_TRUE(report.ok);
}

TEST(Reduce, EveryNonRootSendsExactlyOnce) {
  const PostalParams params(30, Rational(5, 2));
  const Schedule s = reduce_schedule(params);
  EXPECT_EQ(s.size(), params.n() - 1);
  const auto counts = s.sends_per_proc(params.n());
  EXPECT_EQ(counts[0], 0u);
  for (ProcId p = 1; p < params.n(); ++p) EXPECT_EQ(counts[p], 1u) << "p=" << p;
}

TEST(ReduceValidator, RejectsRootSending) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 0, 1, Rational(2));
  const ReduceReport report = validate_reduce(s, PostalParams(2, Rational(2)));
  ASSERT_FALSE(report.ok);
}

TEST(ReduceValidator, RejectsDoubleSend) {
  Schedule s;
  s.add(1, 0, 1, Rational(0));
  s.add(1, 0, 1, Rational(1));
  const ReduceReport report = validate_reduce(s, PostalParams(2, Rational(2)));
  ASSERT_FALSE(report.ok);
}

TEST(ReduceValidator, RejectsMissingContribution) {
  Schedule s;
  s.add(1, 0, 1, Rational(0));
  const ReduceReport report = validate_reduce(s, PostalParams(3, Rational(2)));
  ASSERT_FALSE(report.ok);
}

TEST(ReduceValidator, RejectsLateContribution) {
  // p2's value arrives at p1 only after p1 already forwarded its partial.
  Schedule s;
  s.add(1, 0, 1, Rational(0));
  s.add(2, 1, 2, Rational(1));  // arrives at 3 > 0
  const ReduceReport report = validate_reduce(s, PostalParams(3, Rational(2)));
  ASSERT_FALSE(report.ok);
  bool found = false;
  for (const auto& v : report.violations) {
    found |= v.find("already sent") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ReduceValidator, AcceptsChainWithExactTimings) {
  // p2 -> p1 at t=0 (arrives 2), p1 -> p0 at t=2 (arrives 4): valid chain.
  Schedule s;
  s.add(2, 1, 2, Rational(0));
  s.add(1, 0, 1, Rational(2));
  const ReduceReport report = validate_reduce(s, PostalParams(3, Rational(2)));
  ASSERT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.completion, Rational(4));
}

TEST(ReduceValidator, RejectsReceivePortOverload) {
  // Two partials arrive at the root with overlapping receive windows.
  Schedule s;
  s.add(1, 0, 1, Rational(0));
  s.add(2, 0, 2, Rational(1, 2));
  const ReduceReport report = validate_reduce(s, PostalParams(3, Rational(2)));
  ASSERT_FALSE(report.ok);
}

TEST(Reduce, ReductionMirrorsBroadcastTimes) {
  // Optimal combining takes exactly as long as optimal broadcasting, for
  // every n and lambda (the time-reversal symmetry the paper inherits
  // from [6]).
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n = 2; n <= 128; n = n * 2 + 1) {
      const PostalParams params(n, lambda);
      const ReduceReport report = validate_reduce(reduce_schedule(params), params);
      ASSERT_TRUE(report.ok) << "n=" << n;
      EXPECT_EQ(report.completion, fib.f(n)) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace postal
