// Tests for allreduce: both strategies, the auto-pick crossover, and model
// validity of the generated schedules.
#include "collectives/allreduce.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "collectives/allgather.hpp"
#include "collectives/reduce.hpp"
#include "model/genfib.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(Allreduce, TreeTimeIsTwiceReduce) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 14ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      EXPECT_EQ(predict_allreduce(params, AllreduceStrategy::kTree),
                Rational(2) * fib.f(n));
    }
  }
}

TEST(Allreduce, GossipTimeIsAllgather) {
  const PostalParams params(20, Rational(3));
  EXPECT_EQ(predict_allreduce(params, AllreduceStrategy::kGossip),
            predict_allgather_direct(params));
}

TEST(Allreduce, GossipScheduleIsValidAllgather) {
  const PostalParams params(12, Rational(5, 2));
  const Schedule s = allreduce_schedule(params, AllreduceStrategy::kGossip);
  const SimReport report = validate_schedule(s, params, allgather_goal(params));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, predict_allreduce(params, AllreduceStrategy::kGossip));
}

TEST(Allreduce, TreeScheduleHasValidPhases) {
  const PostalParams params(12, Rational(5, 2));
  const Schedule s = allreduce_schedule(params, AllreduceStrategy::kTree);
  Schedule arrive;
  Schedule release;
  const Rational half = predict_reduce(params);
  for (const SendEvent& e : s.events()) {
    if (e.msg == params.n()) {
      release.add(e.src, e.dst, 0, e.t - half);
    } else {
      arrive.add(e);
    }
  }
  const ReduceReport r1 = validate_reduce(arrive, params);
  EXPECT_TRUE(r1.ok) << (r1.violations.empty() ? "" : r1.violations[0]);
  const SimReport r2 = validate_schedule(release, params);
  EXPECT_TRUE(r2.ok) << r2.summary();
}

TEST(Allreduce, CrossoverGoesToGossipForHugeLatency) {
  // lambda >> n: one direct exchange beats two tree heights.
  const PostalParams params(16, Rational(64));
  EXPECT_EQ(allreduce_auto(params), AllreduceStrategy::kGossip);
  // n >> lambda: the logarithmic tree wins.
  const PostalParams params2(4096, Rational(2));
  EXPECT_EQ(allreduce_auto(params2), AllreduceStrategy::kTree);
}

TEST(Allreduce, AutoNeverWorseThanEitherStrategy) {
  for (const Rational lambda : {Rational(1), Rational(4), Rational(16), Rational(64)}) {
    for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      const Rational best = predict_allreduce(params, allreduce_auto(params));
      EXPECT_LE(best, predict_allreduce(params, AllreduceStrategy::kTree));
      EXPECT_LE(best, predict_allreduce(params, AllreduceStrategy::kGossip));
      EXPECT_GE(best, allreduce_lower_bound(params));
    }
  }
}

TEST(Allreduce, StrategyNamesDistinct) {
  EXPECT_NE(allreduce_strategy_name(AllreduceStrategy::kTree),
            allreduce_strategy_name(AllreduceStrategy::kGossip));
}

TEST(Allreduce, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(allreduce_schedule(params, AllreduceStrategy::kTree).empty());
  EXPECT_EQ(predict_allreduce(params, AllreduceStrategy::kGossip), Rational(0));
  EXPECT_EQ(allreduce_lower_bound(params), Rational(0));
}

}  // namespace
}  // namespace postal
