// View-change consensus unit tests (docs/COORDINATION.md): fault-free
// decisions in view 0, leader-crash view rotation, Paxos value stability,
// quorum-loss safety, and byte-identical determinism across thread counts
// and TimePaths.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "coord/consensus.hpp"
#include "coord/validator.hpp"
#include "faults/fault_plan.hpp"
#include "test_util.hpp"

namespace postal::coord {
namespace {

TEST(Consensus, FaultFreeDecidesLeaderValueInViewZero) {
  const PostalParams params(8, Rational(2));
  const ConsensusReport report = run_consensus(params);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.check.liveness_checked);
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.views_used, 0U);
  EXPECT_EQ(report.counters.decides, 8U);
  EXPECT_EQ(report.counters.proposals, 1U);
  EXPECT_EQ(report.counters.proposal_repairs, 0U);
  EXPECT_EQ(report.quorum, 5U);
  for (ProcId p = 0; p < 8; ++p) {
    ASSERT_TRUE(report.decisions[p].started);
    ASSERT_TRUE(report.decisions[p].decided) << "rank " << p;
    EXPECT_EQ(report.decisions[p].value, 1000U);
    EXPECT_EQ(report.decisions[p].view, 0U);
  }
  EXPECT_EQ(report.recovery_time, Rational(0));
  EXPECT_EQ(report.baseline, report.decision_latency);
}

TEST(Consensus, SingleProcessorDecidesImmediately) {
  const PostalParams params(1, Rational(2));
  const ConsensusReport report = run_consensus(params);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  ASSERT_TRUE(report.decisions[0].decided);
  EXPECT_EQ(report.decisions[0].value, 1000U);
  EXPECT_EQ(report.decision_latency, Rational(0));
}

TEST(Consensus, LeaderCrashRotatesToNextView) {
  const PostalParams params(8, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(0)});
  const ConsensusReport report = run_consensus(params, &plan);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.check.liveness_checked);
  EXPECT_GE(report.views_used, 1U);
  for (ProcId p = 1; p < 8; ++p) {
    ASSERT_TRUE(report.decisions[p].decided) << "rank " << p;
    EXPECT_EQ(report.decisions[p].value, 1001U);  // view 1's client value
  }
  EXPECT_GT(report.recovery_time, Rational(0));
  EXPECT_GT(report.decision_latency, report.baseline);
}

TEST(Consensus, MidViewLeaderCrashKeepsAgreement) {
  // Crash the first leader somewhere inside view 0: depending on timing the
  // proposal may or may not have reached a quorum, but agreement, validity
  // and single-proposer must hold either way -- and the survivors must all
  // decide the same value.
  const PostalParams params(7, Rational(2));
  for (const std::int64_t crash_at : {1, 3, 5, 8, 13, 21, 34}) {
    FaultPlan plan;
    plan.crashes.push_back(CrashFault{0, Rational(crash_at)});
    const ConsensusReport report = run_consensus(params, &plan);
    EXPECT_TRUE(report.check.ok)
        << "crash at t=" << crash_at << ": " << report.check.summary();
    EXPECT_TRUE(report.check.liveness_checked) << "crash at t=" << crash_at;
  }
}

TEST(Consensus, QuorumLossIsSafeButNotLive) {
  // 4 of 6 crash at t=0: 2 survivors < quorum 4. Nobody may decide
  // anything wrong; the liveness clause must not fire.
  const PostalParams params(6, Rational(2));
  FaultPlan plan;
  for (const ProcId p : {0U, 1U, 2U, 3U}) {
    plan.crashes.push_back(CrashFault{p, Rational(0)});
  }
  const ConsensusReport report = run_consensus(params, &plan);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_FALSE(report.check.liveness_checked);
  EXPECT_EQ(report.counters.decides, 0U);
}

TEST(Consensus, ValueBaseIsConfigurable) {
  const PostalParams params(4, Rational(3));
  ConsensusOptions options;
  options.value_base = 5000;
  const ConsensusReport report = run_consensus(params, nullptr, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(report.decisions[p].value, 5000U);
  }
}

TEST(Consensus, DerivedViewLengthIsOnTheGrid) {
  const PostalParams params(8, Rational(5, 2));
  const ConsensusOptions resolved =
      resolve_consensus_options(params, nullptr, ConsensusOptions{});
  EXPECT_GT(resolved.view_length, Rational(0));
  // lambda = 5/2: every derived time must be a multiple of 1/2 so the tick
  // fast path admits the run.
  EXPECT_EQ(resolved.view_length.den() == 1 || resolved.view_length.den() == 2,
            true)
      << resolved.view_length.str();
  EXPECT_GE(resolved.max_views, 1U);
}

TEST(Consensus, ByteIdenticalAcrossThreadsAndTimePaths) {
  const PostalParams params(10, Rational(5, 2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(9, 2)});
  plan.crashes.push_back(CrashFault{4, Rational(40)});

  std::vector<ConsensusReport> reports;
  for (const unsigned threads : {1U, 4U}) {
    for (const TimePath path : {TimePath::kAuto, TimePath::kRational}) {
      ConsensusOptions options;
      options.threads = threads;
      options.time_path = path;
      reports.push_back(run_consensus(params, &plan, options));
    }
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].events, reports[0].events) << "variant " << i;
    EXPECT_EQ(reports[i].decisions, reports[0].decisions) << "variant " << i;
    EXPECT_EQ(reports[i].counters, reports[0].counters) << "variant " << i;
    EXPECT_EQ(reports[i].result.schedule.events(), reports[0].result.schedule.events())
        << "variant " << i;
  }
  EXPECT_TRUE(reports[0].check.ok) << reports[0].check.summary();
}

TEST(Consensus, ValidatorFlagsFabricatedDisagreement) {
  const PostalParams params(5, Rational(2));
  ConsensusReport report = run_consensus(params);
  ASSERT_TRUE(report.check.ok);
  for (auto& e : report.events) {
    if (e.kind == ConsensusEvent::Kind::kDecide && e.rank == 2) {
      e.value = 9999;
    }
  }
  const CoordCheck tampered = check_consensus(report, params, nullptr);
  EXPECT_FALSE(tampered.ok);
  EXPECT_NE(tampered.summary().find("agreement"), std::string::npos)
      << tampered.summary();
}

TEST(Consensus, ValidatorFlagsWrongProposer) {
  const PostalParams params(5, Rational(2));
  ConsensusReport report = run_consensus(params);
  ASSERT_TRUE(report.check.ok);
  for (auto& e : report.events) {
    if (e.kind == ConsensusEvent::Kind::kPropose) e.rank = 3;
  }
  const CoordCheck tampered = check_consensus(report, params, nullptr);
  EXPECT_FALSE(tampered.ok);
}

}  // namespace
}  // namespace postal::coord
