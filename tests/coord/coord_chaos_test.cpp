// Coordination chaos suite (docs/COORDINATION.md, docs/FAULTS.md): sweep
// 150+ seeded random fault scenarios -- leader crashes, quorum-preserving
// link loss, latency-spike windows, and combinations -- across n, lambda,
// and both protocols, and hold the coordination safety clauses on every
// one:
//
//   * the crash-aware machine validation accepts the run;
//   * the coordination validator accepts it (election: one live leader and
//     legitimacy under crash-only plans; consensus: agreement, validity,
//     integrity, single proposer, guarded liveness);
//   * a sampled subset re-runs at 4 threads on the Rational TimePath and
//     must reproduce byte-identical events and final states.
//
// A failing scenario dumps its seed and resolved FaultPlan JSON to stderr
// (and to $POSTAL_CHAOS_ARTIFACTS for CI's artifact upload) via
// postal::test::dump_chaos_artifact, so it can be replayed offline with
// `postal_cli elect/consensus --plan`.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coord/consensus.hpp"
#include "coord/election.hpp"
#include "faults/fault_plan.hpp"
#include "test_util.hpp"

namespace postal::coord {
namespace {

struct ChaosScenario {
  PostalParams params;
  FaultPlan plan;
  std::uint64_t seed = 0;
  std::string tag;
};

/// The sweep grid shared by both protocols: random plans (which never
/// crash rank 0) and, on odd seeds, an explicit crash of rank 0 -- the
/// initial election leader and view 0's proposer -- at a seed-derived time.
std::vector<ChaosScenario> make_scenarios(const std::string& protocol) {
  std::vector<ChaosScenario> out;
  const std::vector<std::uint64_t> sizes = {5, 9, 16};
  const std::vector<Rational> lambdas = {Rational(2), Rational(5, 2)};
  for (const std::uint64_t n : sizes) {
    for (const Rational& lambda : lambdas) {
      for (std::uint64_t seed = 1; seed <= 7; ++seed) {
        for (const bool leader_crash : {false, true}) {
          const PostalParams params(n, lambda);
          RandomFaultOptions ropts;
          ropts.crashes = 1 + (seed % 2);
          ropts.loss_p = (seed % 3 == 0) ? Rational(1, 2) : Rational(0);
          ropts.lossy_links = (seed % 3 == 0) ? 2 : 0;
          ropts.max_losses = 3;
          ropts.spikes = (seed % 4 == 0) ? 1 : 0;
          FaultPlan plan = random_fault_plan(params, seed * 7919 + n, ropts);
          if (leader_crash) {
            plan.crashes.push_back(
                CrashFault{0, Rational(static_cast<std::int64_t>(seed % 13))});
          }
          std::ostringstream tag;
          tag << protocol << "-n" << n << "-l" << lambda.num() << "d"
              << lambda.den() << "-s" << seed << (leader_crash ? "-lc" : "");
          out.push_back(ChaosScenario{params, std::move(plan), seed, tag.str()});
        }
      }
    }
  }
  return out;
}

TEST(CoordChaos, ElectionSafetyHoldsOnEveryScenario) {
  const auto scenarios = make_scenarios("elect");
  ASSERT_GE(scenarios.size(), 84U);
  int checked = 0;
  for (const ChaosScenario& s : scenarios) {
    const int before = test::failure_part_count();
    const ElectionReport report = run_election(s.params, &s.plan);
    EXPECT_TRUE(report.validation.ok)
        << s.tag << ": " << report.validation.summary();
    EXPECT_TRUE(report.check.ok) << s.tag << ": " << report.check.summary();
    EXPECT_LE(report.crashed.size(), s.plan.crashes.size()) << s.tag;
    // Every sixth scenario re-runs sharded on the Rational reference path:
    // the run must be byte-identical (the lambda-barrier determinism claim).
    if (s.seed % 6 == 0) {
      ElectionOptions opts;
      opts.threads = 4;
      opts.time_path = TimePath::kRational;
      const ElectionReport again = run_election(s.params, &s.plan, opts);
      EXPECT_EQ(again.events, report.events) << s.tag;
      EXPECT_EQ(again.beliefs, report.beliefs) << s.tag;
      EXPECT_EQ(again.counters, report.counters) << s.tag;
    }
    if (test::failure_part_count() != before) {
      test::dump_chaos_artifact(s.tag, s.seed, s.plan);
    }
    ++checked;
  }
  EXPECT_GE(checked, 84);
}

TEST(CoordChaos, ConsensusSafetyHoldsOnEveryScenario) {
  const auto scenarios = make_scenarios("consensus");
  ASSERT_GE(scenarios.size(), 84U);
  int checked = 0;
  for (const ChaosScenario& s : scenarios) {
    const int before = test::failure_part_count();
    const ConsensusReport report = run_consensus(s.params, &s.plan);
    EXPECT_TRUE(report.validation.ok)
        << s.tag << ": " << report.validation.summary();
    EXPECT_TRUE(report.check.ok) << s.tag << ": " << report.check.summary();
    // Counter consistency: decides count every kDecide, one per rank.
    EXPECT_LE(report.counters.decides, s.params.n()) << s.tag;
    EXPECT_LE(report.counters.commits, report.counters.proposals) << s.tag;
    if (s.seed % 6 == 0) {
      ConsensusOptions opts;
      opts.threads = 4;
      opts.time_path = TimePath::kRational;
      const ConsensusReport again = run_consensus(s.params, &s.plan, opts);
      EXPECT_EQ(again.events, report.events) << s.tag;
      EXPECT_EQ(again.decisions, report.decisions) << s.tag;
      EXPECT_EQ(again.counters, report.counters) << s.tag;
    }
    if (test::failure_part_count() != before) {
      test::dump_chaos_artifact(s.tag, s.seed, s.plan);
    }
    ++checked;
  }
  EXPECT_GE(checked, 84);
}

}  // namespace
}  // namespace postal::coord
