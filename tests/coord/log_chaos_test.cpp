// Replicated-log chaos suite (docs/COORDINATION.md): sweep 60+ seeded
// random fault scenarios over the multi-decree log -- leader crashes mid
// batch, quorum-preserving link loss, latency-spike windows, lease-expiry
// races pinned to grid boundaries, and reconfiguration overlapping crashes
// -- and hold the full check_log clause set on every one:
//
//   * the crash-aware machine validation accepts the run;
//   * check_log accepts it (per-slot agreement, validity, single proposer
//     per (view, slot), proposals inside their lease, pairwise-disjoint
//     lease intervals with monotone fencing tokens, counter consistency,
//     prefix durability + config-epoch/membership consistency, guarded
//     liveness);
//   * a sampled subset re-runs at 4 threads on the Rational TimePath and
//     must reproduce byte-identical events, rank states, and counters.
//
// A failing scenario dumps its seed and resolved FaultPlan JSON to stderr
// (and to $POSTAL_CHAOS_ARTIFACTS for CI's artifact upload) via
// postal::test::dump_chaos_artifact, so it can be replayed offline with
// `postal_cli log --plan`.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coord/log.hpp"
#include "faults/fault_plan.hpp"
#include "test_util.hpp"

namespace postal::coord {
namespace {

struct LogScenario {
  PostalParams params;
  FaultPlan plan;
  LogOptions options;
  std::uint64_t seed = 0;
  std::string tag;
};

/// The sweep grid: random plans (which never crash rank 0) plus, on odd
/// seeds, an explicit crash of rank 0 -- view 0's leader and lease holder
/// -- at a seed-derived time inside the first batch. Every third scenario
/// adds a reconfiguration (remove a mid rank, and on some seeds re-add it
/// later) so membership changes overlap the crash/loss plans.
std::vector<LogScenario> make_scenarios() {
  std::vector<LogScenario> out;
  const std::vector<std::uint64_t> sizes = {5, 9, 16};
  const std::vector<Rational> lambdas = {Rational(2), Rational(5, 2)};
  for (const std::uint64_t n : sizes) {
    for (const Rational& lambda : lambdas) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        for (const bool leader_crash : {false, true}) {
          const PostalParams params(n, lambda);
          RandomFaultOptions ropts;
          ropts.crashes = 1 + (seed % 2);
          ropts.loss_p = (seed % 3 == 0) ? Rational(1, 2) : Rational(0);
          ropts.lossy_links = (seed % 3 == 0) ? 2 : 0;
          ropts.max_losses = 3;
          ropts.spikes = (seed % 4 == 0) ? 1 : 0;
          FaultPlan plan = random_fault_plan(params, seed * 6007 + n, ropts);
          if (leader_crash) {
            plan.crashes.push_back(
                CrashFault{0, Rational(static_cast<std::int64_t>(seed % 13))});
          }
          LogOptions options;
          options.commands = 3 + (seed % 3);
          const bool reconfig = (seed % 3 == 0) && n >= 5;
          if (reconfig) {
            // Remove a rank the random plan never crashes explicitly and
            // re-add it on even seeds, at times inside the run.
            const ProcId victim = static_cast<ProcId>(2 + (seed % (n - 2)));
            options.reconfig.push_back(
                ReconfigRequest{victim, Rational(static_cast<std::int64_t>(
                                            3 + (seed % 7)))});
            if (seed % 2 == 0) {
              options.reconfig.push_back(ReconfigRequest{
                  victim, Rational(static_cast<std::int64_t>(150 + 10 * seed))});
            }
          }
          std::ostringstream tag;
          tag << "log-n" << n << "-l" << lambda.num() << "d" << lambda.den()
              << "-s" << seed << (leader_crash ? "-lc" : "")
              << (reconfig ? "-rc" : "");
          out.push_back(LogScenario{params, std::move(plan), std::move(options),
                                    seed, tag.str()});
        }
      }
    }
  }
  return out;
}

TEST(LogChaos, SafetyHoldsOnEveryScenario) {
  const auto scenarios = make_scenarios();
  ASSERT_GE(scenarios.size(), 60U);
  int checked = 0;
  for (const LogScenario& s : scenarios) {
    const int before = test::failure_part_count();
    const LogReport report = run_log(s.params, &s.plan, s.options);
    EXPECT_TRUE(report.validation.ok)
        << s.tag << ": " << report.validation.summary();
    EXPECT_TRUE(report.check.ok) << s.tag << ": " << report.check.summary();
    EXPECT_LE(report.crashed.size(), s.plan.crashes.size()) << s.tag;
    // Counter sanity that holds on every plan: decides are per (rank,
    // slot), commits never exceed proposals plus catch-up heals.
    EXPECT_LE(report.counters.decides, s.params.n() * report.slots) << s.tag;
    EXPECT_LE(report.counters.lease_renewals, report.counters.renews_sent)
        << s.tag;
    // Every sixth scenario re-runs sharded on the Rational reference path:
    // the run must be byte-identical (the lambda-barrier determinism claim).
    if (s.seed % 6 == 0) {
      LogOptions opts = s.options;
      opts.threads = 4;
      opts.time_path = TimePath::kRational;
      const LogReport again = run_log(s.params, &s.plan, opts);
      EXPECT_EQ(again.events, report.events) << s.tag;
      EXPECT_EQ(again.ranks, report.ranks) << s.tag;
      EXPECT_EQ(again.counters, report.counters) << s.tag;
    }
    if (test::failure_part_count() != before) {
      test::dump_chaos_artifact(s.tag, s.seed, s.plan);
    }
    ++checked;
  }
  EXPECT_GE(checked, 60);
}

TEST(LogChaos, LeaseBoundaryRacesStayDisjointUnderCrashes) {
  // Lease-expiry races on the grid boundary: force lease == heartbeat so
  // every renewal tick collides with an expiry tick (timer wins each tie),
  // while seeded crashes remove leaders around those instants. Mutual
  // exclusion (pairwise-disjoint lease intervals, monotone fencing tokens)
  // must hold on every run -- check_log enforces it.
  const PostalParams params(6, Rational(2));
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int before = test::failure_part_count();
    LogOptions options;
    options.commands = 4;
    options.heartbeat_period = Rational(2);
    options.lease_length = Rational(2);
    FaultPlan plan;
    // Crash up to two ranks at grid-aligned times near lease boundaries.
    plan.crashes.push_back(CrashFault{
        static_cast<ProcId>(seed % 3),
        Rational(static_cast<std::int64_t>(2 * (1 + seed % 5)))});
    if (seed % 2 == 0) {
      plan.crashes.push_back(CrashFault{
          static_cast<ProcId>(3 + seed % 2),
          Rational(static_cast<std::int64_t>(2 * (4 + seed % 6)))});
    }
    std::ostringstream tag;
    tag << "log-lease-boundary-s" << seed;
    const LogReport report = run_log(params, &plan, options);
    EXPECT_TRUE(report.validation.ok)
        << tag.str() << ": " << report.validation.summary();
    EXPECT_TRUE(report.check.ok) << tag.str() << ": " << report.check.summary();
    // With lease == heartbeat every renewal arrives at/after expiry: no
    // extension is ever granted.
    EXPECT_EQ(report.counters.lease_renewals, 0U) << tag.str();
    if (test::failure_part_count() != before) {
      test::dump_chaos_artifact(tag.str(), seed, plan);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 8);
}

}  // namespace
}  // namespace postal::coord
