// Replicated-log unit tests (docs/COORDINATION.md): fault-free batches in
// view 0 under a single lease, leader-crash rotation with catch-up,
// quorum-loss safety, reconfiguration (remove / re-add mid-run),
// lease-boundary ties on the grid (timer wins), stale-token fencing, and
// byte-identical determinism across thread counts and TimePaths.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "coord/log.hpp"
#include "coord/validator.hpp"
#include "faults/fault_plan.hpp"
#include "test_util.hpp"

namespace postal::coord {
namespace {

TEST(Log, FaultFreeDecidesAllSlotsInViewZero) {
  const PostalParams params(8, Rational(2));
  const LogReport report = run_log(params);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.check.liveness_checked);
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.views_used, 0U);
  EXPECT_EQ(report.slots, 6U);
  EXPECT_EQ(report.counters.decides, 6U * 8U);
  EXPECT_EQ(report.counters.proposals, 6U);
  EXPECT_EQ(report.counters.lease_acquisitions, 1U);
  EXPECT_EQ(report.counters.lease_expiries, 0U);
  EXPECT_EQ(report.counters.stale_rejects, 0U);
  EXPECT_EQ(report.counters.proposal_repairs, 0U);
  EXPECT_EQ(report.quorum, 5U);
  for (ProcId p = 0; p < 8; ++p) {
    const RankLog& rl = report.ranks[p];
    ASSERT_TRUE(rl.started);
    EXPECT_EQ(rl.commit_prefix, 6U) << "rank " << p;
    for (std::uint32_t s = 0; s < 6; ++s) {
      ASSERT_TRUE(rl.slots[s].decided) << "rank " << p << " slot " << s;
      EXPECT_EQ(rl.slots[s].value, 3000U + s);
      EXPECT_EQ(rl.slots[s].view, 0U);
    }
  }
  EXPECT_EQ(report.recovery_time, Rational(0));
  EXPECT_EQ(report.baseline, report.commit_latency);
}

TEST(Log, SingleProcessorDecidesImmediately) {
  const PostalParams params(1, Rational(2));
  const LogReport report = run_log(params);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  ASSERT_TRUE(report.ranks[0].started);
  EXPECT_EQ(report.ranks[0].commit_prefix, 6U);
  EXPECT_EQ(report.commit_latency, Rational(0));
  EXPECT_EQ(report.counters.lease_acquisitions, 0U);
}

TEST(Log, LeaderCrashMidBatchKeepsAgreementAndRecovers) {
  // Crash the first leader at various points inside view 0: before the
  // quorum, mid-dissemination, after some commits. Whatever landed must
  // stay chosen; the survivors must finish the whole log.
  const PostalParams params(7, Rational(2));
  for (const std::int64_t crash_at : {1, 3, 5, 8, 13, 21, 34}) {
    FaultPlan plan;
    plan.crashes.push_back(CrashFault{0, Rational(crash_at)});
    const LogReport report = run_log(params, &plan);
    EXPECT_TRUE(report.check.ok)
        << "crash at t=" << crash_at << ": " << report.check.summary();
    EXPECT_TRUE(report.check.liveness_checked) << "crash at t=" << crash_at;
    for (ProcId p = 1; p < 7; ++p) {
      EXPECT_EQ(report.ranks[p].commit_prefix, report.slots)
          << "crash at t=" << crash_at << " rank " << p;
    }
  }
}

TEST(Log, QuorumLossIsSafeButNotLive) {
  // 4 of 6 crash at t=0: 2 survivors < quorum 4. The liveness clause must
  // not fire and nothing inconsistent may be decided.
  const PostalParams params(6, Rational(2));
  FaultPlan plan;
  for (const ProcId p : {0U, 1U, 2U, 3U}) {
    plan.crashes.push_back(CrashFault{p, Rational(0)});
  }
  const LogReport report = run_log(params, &plan);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_FALSE(report.check.liveness_checked);
  EXPECT_EQ(report.counters.decides, 0U);
}

TEST(Log, RepairWaveHealsAStragglerBehindALossyLink) {
  // Deterministically eat the first messages on every link out of the
  // leader so part of the view-0 batch never reaches its tree children:
  // the leader's repair wave (point-to-point re-sends after repair_after_)
  // or a later view's catch-up must heal the stragglers, and the run must
  // still decide the full log everywhere.
  const PostalParams params(6, Rational(2));
  FaultPlan plan;
  for (ProcId dst = 1; dst < 6; ++dst) {
    plan.losses.push_back(LinkLoss{0, dst, Rational(1), 2});
  }
  const LogReport report = run_log(params, &plan);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.check.liveness_checked);
  EXPECT_GT(report.counters.proposal_repairs + report.counters.catchup_commits +
                report.counters.view_changes_sent,
            0U);
  for (ProcId p = 0; p < 6; ++p) {
    EXPECT_EQ(report.ranks[p].commit_prefix, report.slots) << "rank " << p;
  }
}

TEST(Log, DerivedTimingIsOnTheGrid) {
  const PostalParams params(8, Rational(5, 2));
  const LogOptions resolved = resolve_log_options(params, nullptr, LogOptions{});
  // lambda = 5/2: every derived duration must be a multiple of 1/2 so the
  // tick fast path admits the run on both TimePaths.
  for (const Rational& r : {resolved.view_length, resolved.heartbeat_period,
                            resolved.lease_length}) {
    EXPECT_GT(r, Rational(0));
    EXPECT_TRUE(r.den() == 1 || r.den() == 2) << r.str();
  }
  EXPECT_GE(resolved.max_views, 1U);
  // The lease derivation: heartbeat + the renewal round trip.
  EXPECT_GT(resolved.lease_length, resolved.heartbeat_period);
  EXPECT_LT(resolved.lease_length, resolved.view_length);
}

TEST(Log, ReconfigRemovesARankFromTheMembership) {
  const PostalParams params(6, Rational(2));
  LogOptions options;
  options.commands = 4;
  options.reconfig.push_back(ReconfigRequest{3, Rational(5)});
  const LogReport report = run_log(params, nullptr, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.check.liveness_checked);
  EXPECT_EQ(report.slots, 5U);
  EXPECT_EQ(report.final_members, (std::vector<ProcId>{0, 1, 2, 4, 5}));
  EXPECT_GE(report.counters.config_applies, 1U);
  for (const ProcId p : report.final_members) {
    EXPECT_EQ(report.ranks[p].members, report.final_members) << "rank " << p;
    EXPECT_EQ(report.ranks[p].commit_prefix, 5U) << "rank " << p;
  }
  // The removed rank keeps observing and is healed to the full log too.
  EXPECT_EQ(report.ranks[3].commit_prefix, 5U);
  EXPECT_EQ(report.ranks[3].members, report.final_members);
}

TEST(Log, ReconfigRemoveThenReAddUnderACrash) {
  // Remove rank 2, crash rank 4 while the change settles, then re-add
  // rank 2: the tree/quorum/leader mapping is recomputed twice and the
  // re-added rank must rejoin via catch-up.
  const PostalParams params(7, Rational(2));
  LogOptions options;
  options.commands = 3;
  options.reconfig.push_back(ReconfigRequest{2, Rational(4)});
  options.reconfig.push_back(ReconfigRequest{2, Rational(200)});
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{4, Rational(8)});
  const LogReport report = run_log(params, &plan, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_EQ(report.final_members, (std::vector<ProcId>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_GE(report.counters.reconfig_commands, 2U);
  if (report.check.liveness_checked) {
    for (const ProcId p : {0U, 1U, 2U, 3U, 5U, 6U}) {
      EXPECT_EQ(report.ranks[p].commit_prefix, report.slots) << "rank " << p;
    }
  }
}

TEST(Log, ReconfigBelowTwoMembersIsRejected) {
  const PostalParams params(2, Rational(2));
  LogOptions options;
  options.reconfig.push_back(ReconfigRequest{1, Rational(3)});
  POSTAL_EXPECT_THROW(resolve_log_options(params, nullptr, options),
                      InvalidArgument);
}

TEST(Log, LeaseExpiryTieWithRenewalTickTimerWins) {
  // lease_length == heartbeat_period puts the first renewal exactly on
  // the expiry tick. The write guard is now < expiry, so the renewal is
  // refused and the lease lapses: the timer wins the on-grid tie, exactly
  // like the reliable-bcast zero-slack backoff boundary. Progress is
  // preserved -- the leader still learns its quorum locally and heals the
  // followers through later views' catch-up.
  const PostalParams params(5, Rational(2));
  LogOptions options;
  options.commands = 3;
  options.heartbeat_period = Rational(2);
  options.lease_length = Rational(2);
  const LogReport report = run_log(params, nullptr, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_EQ(report.counters.lease_renewals, 0U);
  EXPECT_GE(report.counters.lease_expiries, 1U);
  EXPECT_TRUE(report.check.liveness_checked);
  for (ProcId p = 0; p < 5; ++p) {
    EXPECT_EQ(report.ranks[p].commit_prefix, report.slots) << "rank " << p;
  }
}

TEST(Log, LeaderCrashExactlyAtLeaseExpiryTick) {
  // Pin the view-0 leader's crash to the exact expiry tick of its first
  // lease (read off a fault-free run): the lease interval closes at the
  // crash instant, no event may be logged at/after it, and the next
  // leader's acquisition must not overlap.
  const PostalParams params(6, Rational(2));
  LogOptions options;
  options.commands = 4;
  options.heartbeat_period = Rational(4);
  options.lease_length = Rational(4);
  const LogReport probe = run_log(params, nullptr, options);
  Rational expiry{0};
  for (const LogEvent& e : probe.events) {
    if (e.kind == LogEvent::Kind::kLeaseAcquire && e.view == 0) {
      expiry = e.until;
      break;
    }
  }
  ASSERT_GT(expiry, Rational(0));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, expiry});
  const LogReport report = run_log(params, &plan, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.check.liveness_checked);
  for (ProcId p = 1; p < 6; ++p) {
    EXPECT_EQ(report.ranks[p].commit_prefix, report.slots) << "rank " << p;
  }
}

TEST(Log, StaleTokenWritesAreRejectedAndCounted) {
  // A latency spike holds view 0's batch in flight past the view
  // boundary: the deposed leader's commands arrive at ranks already
  // promised to view 1 and must be fenced -- rejected and counted, with
  // matching kStaleReject events.
  const PostalParams params(5, Rational(2));
  LogOptions options;
  options.commands = 3;
  // Probe the fault-free run for the instant view 0's leader starts its
  // batch, then delay exactly the sends in that window past the view
  // boundary -- the VC round before it is untouched, so the leader
  // acquires and writes, but its writes land on ranks already promised to
  // view 1.
  const LogReport probe = run_log(params, nullptr, options);
  Rational propose_at{-1};
  for (const LogEvent& e : probe.events) {
    if (e.kind == LogEvent::Kind::kPropose && e.view == 0) {
      propose_at = e.time;
      break;
    }
  }
  ASSERT_GE(propose_at, Rational(0));
  // The window must also cover the leader's repair wave (its point-to-point
  // re-proposals would otherwise rescue view 0 before the boundary).
  const LogOptions resolved = resolve_log_options(params, nullptr, options);
  FaultPlan plan;
  plan.spikes.push_back(LatencySpike{propose_at,
                                     propose_at + resolved.view_length,
                                     resolved.view_length * Rational(2)});
  const LogReport report = run_log(params, &plan, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_GT(report.counters.stale_rejects, 0U);
  std::uint64_t stale_events = 0;
  for (const LogEvent& e : report.events) {
    if (e.kind == LogEvent::Kind::kStaleReject) ++stale_events;
  }
  EXPECT_EQ(stale_events, report.counters.stale_rejects);
}

TEST(Log, ByteIdenticalAcrossThreadsAndTimePaths) {
  const PostalParams params(9, Rational(5, 2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(9, 2)});
  plan.crashes.push_back(CrashFault{4, Rational(40)});
  LogOptions base;
  base.commands = 4;
  base.reconfig.push_back(ReconfigRequest{6, Rational(15)});

  std::vector<LogReport> reports;
  for (const unsigned threads : {1U, 4U}) {
    for (const TimePath path : {TimePath::kAuto, TimePath::kRational}) {
      LogOptions options = base;
      options.threads = threads;
      options.time_path = path;
      reports.push_back(run_log(params, &plan, options));
    }
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].events, reports[0].events) << "variant " << i;
    EXPECT_EQ(reports[i].ranks, reports[0].ranks) << "variant " << i;
    EXPECT_EQ(reports[i].counters, reports[0].counters) << "variant " << i;
    EXPECT_EQ(reports[i].result.schedule.events(),
              reports[0].result.schedule.events())
        << "variant " << i;
  }
  EXPECT_TRUE(reports[0].check.ok) << reports[0].check.summary();
}

TEST(Log, ValidatorFlagsFabricatedSlotDisagreement) {
  const PostalParams params(5, Rational(2));
  LogReport report = run_log(params);
  ASSERT_TRUE(report.check.ok);
  for (auto& e : report.events) {
    if (e.kind == LogEvent::Kind::kDecide && e.rank == 2 && e.slot == 1) {
      e.value = 9999;
    }
  }
  const CoordCheck tampered = check_log(report, params, nullptr);
  EXPECT_FALSE(tampered.ok);
  EXPECT_NE(tampered.summary().find("agreement"), std::string::npos)
      << tampered.summary();
}

TEST(Log, ValidatorFlagsLeaseOverlap) {
  const PostalParams params(5, Rational(2));
  LogReport report = run_log(params);
  ASSERT_TRUE(report.check.ok);
  // Fabricate a second lease inside the first one's interval.
  LogEvent fake;
  fake.kind = LogEvent::Kind::kLeaseAcquire;
  fake.rank = 3;
  fake.view = 1;
  for (const LogEvent& e : report.events) {
    if (e.kind == LogEvent::Kind::kLeaseAcquire) {
      fake.time = e.time;
      fake.until = e.until;
      break;
    }
  }
  report.events.push_back(fake);
  report.counters.lease_acquisitions += 1;
  const CoordCheck tampered = check_log(report, params, nullptr);
  EXPECT_FALSE(tampered.ok);
  EXPECT_NE(tampered.summary().find("lease overlap"), std::string::npos)
      << tampered.summary();
}

TEST(Log, ValidatorFlagsProposalOutsideLease) {
  const PostalParams params(5, Rational(2));
  LogReport report = run_log(params);
  ASSERT_TRUE(report.check.ok);
  for (auto& e : report.events) {
    if (e.kind == LogEvent::Kind::kPropose && e.slot == 2) {
      e.time = e.time + Rational(100000);  // way past the lease
    }
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const LogEvent& a, const LogEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });
  const CoordCheck tampered = check_log(report, params, nullptr);
  EXPECT_FALSE(tampered.ok);
  EXPECT_NE(tampered.summary().find("outside its lease"), std::string::npos)
      << tampered.summary();
}

}  // namespace
}  // namespace postal::coord
