// Leader election unit tests (docs/COORDINATION.md): fault-free stability,
// crash-driven succession under both priority policies, the coordination
// validator's clauses, and byte-identical determinism across thread counts
// and TimePaths.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "coord/election.hpp"
#include "coord/validator.hpp"
#include "faults/fault_plan.hpp"
#include "oracle/oracle.hpp"
#include "test_util.hpp"

namespace postal::coord {
namespace {

TEST(Election, FaultFreeKeepsInitialLeader) {
  const PostalParams params(8, Rational(2));
  const ElectionReport report = run_election(params);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.leader, 0U);
  EXPECT_EQ(report.counters.suspicions, 0U);
  EXPECT_EQ(report.counters.takeovers, 0U);
  EXPECT_EQ(report.counters.step_downs, 0U);
  EXPECT_GT(report.counters.heartbeats_sent, 0U);
  for (ProcId p = 0; p < 8; ++p) {
    ASSERT_TRUE(report.beliefs[p].started);
    EXPECT_EQ(report.beliefs[p].leader, 0U);
    EXPECT_EQ(report.beliefs[p].term, 0U);
  }
}

TEST(Election, SingleProcessorIsItsOwnLeader) {
  const PostalParams params(1, Rational(3));
  const ElectionReport report = run_election(params);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_EQ(report.leader, 0U);
  EXPECT_EQ(report.counters.heartbeats_sent, 0U);
}

TEST(Election, LeaderCrashElectsHighestSurvivor) {
  const PostalParams params(8, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(5)});
  const ElectionReport report = run_election(params, &plan);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.leader, 7U);  // classic bully: highest rank wins
  EXPECT_GT(report.counters.suspicions, 0U);
  EXPECT_GT(report.first_suspect, Rational(5));
  EXPECT_GT(report.elected_at, report.first_suspect);
  EXPECT_EQ(report.election_latency, report.elected_at - Rational(5));
  for (ProcId p = 1; p < 8; ++p) {
    EXPECT_EQ(report.beliefs[p].leader, 7U) << "rank " << p;
  }
}

TEST(Election, OracleDepthPolicyPrefersBcastRoot) {
  const PostalParams params(9, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(4)});
  ElectionOptions options;
  options.policy = ElectionPolicy::kOracleDepth;
  const ElectionReport report = run_election(params, &plan, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  // The validator recomputes legitimacy; pin the expectation independently:
  // the best survivor is the smallest (depth, rank) pair among ranks 1..8.
  const oracle::ScheduleOracle oracle(9, Rational(2));
  ProcId expected = 1;
  for (ProcId p = 2; p < 9; ++p) {
    const auto dp = oracle.info(p).depth;
    const auto de = oracle.info(expected).depth;
    if (dp < de || (dp == de && p < expected)) expected = p;
  }
  EXPECT_EQ(report.leader, expected);
}

TEST(Election, NonLeaderCrashChangesNothing) {
  const PostalParams params(6, Rational(3, 2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{4, Rational(3)});
  const ElectionReport report = run_election(params, &plan);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_EQ(report.leader, 0U);
  EXPECT_EQ(report.counters.suspicions, 0U);
}

TEST(Election, NonZeroInitialLeaderSuccession) {
  const PostalParams params(5, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{3, Rational(2)});
  ElectionOptions options;
  options.initial_leader = 3;
  const ElectionReport report = run_election(params, &plan, options);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_EQ(report.leader, 4U);
}

TEST(Election, CascadingLeaderCrashes) {
  // The first successor (rank 7) crashes too; the system must re-elect 6.
  const PostalParams params(8, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(5)});
  plan.crashes.push_back(CrashFault{7, Rational(120)});
  const ElectionReport report = run_election(params, &plan);
  EXPECT_TRUE(report.check.ok) << report.check.summary();
  EXPECT_EQ(report.leader, 6U);
}

TEST(Election, DerivedOptionsMatchFormulas) {
  const PostalParams params(8, Rational(2));
  const ElectionOptions resolved =
      resolve_election_options(params, nullptr, ElectionOptions{});
  // P = max(4 lambda, 2 (n - 1)) = max(8, 14) = 14.
  EXPECT_EQ(resolved.heartbeat_period, Rational(14));
  EXPECT_GT(resolved.horizon, Rational(0));

  const PostalParams wide(3, Rational(10));
  const ElectionOptions resolved_wide =
      resolve_election_options(wide, nullptr, ElectionOptions{});
  EXPECT_EQ(resolved_wide.heartbeat_period, Rational(40));  // 4 lambda wins
}

TEST(Election, ByteIdenticalAcrossThreadsAndTimePaths) {
  const PostalParams params(12, Rational(5, 2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, Rational(7, 2)});
  plan.crashes.push_back(CrashFault{5, Rational(30)});

  std::vector<ElectionReport> reports;
  for (const unsigned threads : {1U, 4U}) {
    for (const TimePath path : {TimePath::kAuto, TimePath::kRational}) {
      ElectionOptions options;
      options.threads = threads;
      options.time_path = path;
      reports.push_back(run_election(params, &plan, options));
    }
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].events, reports[0].events) << "variant " << i;
    EXPECT_EQ(reports[i].beliefs, reports[0].beliefs) << "variant " << i;
    EXPECT_EQ(reports[i].counters, reports[0].counters) << "variant " << i;
    EXPECT_EQ(reports[i].leader, reports[0].leader) << "variant " << i;
    EXPECT_EQ(reports[i].result.schedule.events(), reports[0].result.schedule.events())
        << "variant " << i;
  }
  EXPECT_TRUE(reports[0].check.ok) << reports[0].check.summary();
}

TEST(Election, ValidatorFlagsFabricatedSplit) {
  // Tamper with a good report: two live ranks disagreeing must be caught.
  const PostalParams params(4, Rational(2));
  ElectionReport report = run_election(params);
  ASSERT_TRUE(report.check.ok);
  report.beliefs[2].leader = 3;
  const CoordCheck tampered = check_election(report, params, nullptr);
  EXPECT_FALSE(tampered.ok);
  EXPECT_NE(tampered.summary().find("fault-free"), std::string::npos)
      << tampered.summary();
}

}  // namespace
}  // namespace postal::coord
