// Tests for fault injection in the event-driven Machine: the byte-identical
// fault-free regression, crash/loss/spike semantics, determinism, and the
// FaultInjector's own query contract.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "model/genfib.hpp"
#include "sim/machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

PostalParams mps(std::uint64_t n, Rational lambda) { return {n, std::move(lambda)}; }

/// Origin sends `count` copies of message 0 to processor 1, back to back.
class BlastProtocol final : public Protocol {
 public:
  explicit BlastProtocol(std::uint64_t count) : count_(count) {}
  void on_start(MachineContext& ctx) override {
    if (ctx.self() != 0) return;
    for (std::uint64_t i = 0; i < count_; ++i) ctx.send(1, Packet{0, i, 0});
  }
  void on_receive(MachineContext&, const Packet&) override {}

 private:
  std::uint64_t count_;
};

/// Processor 1 arms a timer at start; if it fires, it sends to 0.
class TimerProtocol final : public Protocol {
 public:
  void on_start(MachineContext& ctx) override {
    if (ctx.self() == 1) ctx.set_timer(Rational(5), 99);
  }
  void on_receive(MachineContext&, const Packet&) override {}
  void on_timer(MachineContext& ctx, std::uint64_t token) override {
    EXPECT_EQ(token, 99u);
    ctx.send(0, Packet{0, 0, 0});
  }
};

bool same_run(const MachineResult& a, const MachineResult& b) {
  return a.schedule.events() == b.schedule.events() &&
         a.trace.deliveries() == b.trace.deliveries();
}

TEST(MachineFaults, NoPlanEmptyPlanAndDetachAreByteIdentical) {
  const PostalParams params = mps(34, Rational(5, 2));

  Machine bare(params, 1);
  BcastProtocol p1(params);
  const MachineResult baseline = bare.run(p1);

  Machine empty_plan(params, 1);
  empty_plan.attach_faults(FaultPlan{});  // empty plan == no plan
  EXPECT_FALSE(empty_plan.has_faults());
  BcastProtocol p2(params);
  const MachineResult under_empty = empty_plan.run(p2);

  Machine detached(params, 1);
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{3, Rational(1)});
  detached.attach_faults(plan);
  EXPECT_TRUE(detached.has_faults());
  detached.detach_faults();
  EXPECT_FALSE(detached.has_faults());
  BcastProtocol p3(params);
  const MachineResult after_detach = detached.run(p3);

  EXPECT_TRUE(same_run(baseline, under_empty));
  EXPECT_TRUE(same_run(baseline, after_detach));
  EXPECT_EQ(baseline.faults.total(), 0u);
  EXPECT_TRUE(baseline.faults.events.empty());
}

TEST(MachineFaults, CrashSuppressesSendsAndVoidsDeliveries) {
  const Rational lambda(2);
  const PostalParams params = mps(16, lambda);
  GenFib fib(lambda);
  const auto relay = static_cast<ProcId>(fib.bcast_split(params.n()));
  const Rational crash_at = lambda;  // the instant its copy arrives

  FaultPlan plan;
  plan.crashes.push_back(CrashFault{relay, crash_at});
  Machine machine(params, 1);
  machine.attach_faults(plan);
  BcastProtocol protocol(params);
  const MachineResult result = machine.run(protocol);

  // Dead processors transmit nothing at or after the crash...
  for (const SendEvent& e : result.schedule.events()) {
    EXPECT_FALSE(e.src == relay && e.t >= crash_at)
        << "crashed p" << relay << " sent at " << e.t.str();
  }
  // ...and complete no receive at or after it.
  for (const Delivery& d : result.trace.deliveries()) {
    EXPECT_FALSE(d.dst == relay && d.arrival >= crash_at)
        << "crashed p" << relay << " received at " << d.arrival.str();
  }
  // The relay's whole subtree is orphaned under plain BCAST.
  const std::vector<ProcId> uncovered = result.trace.uncovered(0);
  EXPECT_EQ(uncovered.size(), params.n() - relay);
  EXPECT_TRUE(std::find(uncovered.begin(), uncovered.end(), relay) !=
              uncovered.end());

  EXPECT_EQ(result.faults.crashes_applied, 1u);
  EXPECT_GT(result.faults.drops_crash, 0u);  // its copy arrived dead
  EXPECT_EQ(result.faults.total(), result.faults.crashes_applied +
                                       result.faults.sends_suppressed +
                                       result.faults.drops_crash);
  // The timeline leads with the crash event.
  ASSERT_FALSE(result.faults.events.empty());
  EXPECT_EQ(result.faults.events.front().kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(result.faults.events.front().proc, relay);
  EXPECT_EQ(result.faults.events.front().time, crash_at);
}

TEST(MachineFaults, CrashAtZeroKillsAllActivityOfTheProcessor) {
  const PostalParams params = mps(8, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{1, Rational(0)});
  Machine machine(params, 1);
  machine.attach_faults(plan);
  BcastProtocol protocol(params);
  const MachineResult result = machine.run(protocol);
  for (const SendEvent& e : result.schedule.events()) EXPECT_NE(e.src, 1u);
  for (const Delivery& d : result.trace.deliveries()) EXPECT_NE(d.dst, 1u);
}

TEST(MachineFaults, IdenticalPlanGivesIdenticalRuns) {
  const PostalParams params = mps(24, Rational(5, 2));
  FaultPlan plan;
  plan.seed = 77;
  plan.crashes.push_back(CrashFault{5, Rational(3)});
  plan.losses.push_back(LinkLoss{0, 1, Rational(1, 2), 0});
  plan.losses.push_back(LinkLoss{1, 9, Rational(1, 2), 0});
  plan.spikes.push_back(LatencySpike{Rational(2), Rational(4), Rational(1)});

  MachineResult runs[2];
  for (MachineResult& out : runs) {
    Machine machine(params, 1);
    machine.attach_faults(plan);
    BcastProtocol protocol(params);
    out = machine.run(protocol);
  }
  EXPECT_TRUE(same_run(runs[0], runs[1]));
  EXPECT_EQ(runs[0].faults.events, runs[1].faults.events);
  EXPECT_EQ(runs[0].faults.total(), runs[1].faults.total());
}

TEST(MachineFaults, MaxLossesCapsTheBurst) {
  const PostalParams params = mps(2, Rational(2));
  FaultPlan plan;
  plan.losses.push_back(LinkLoss{0, 1, Rational(1), 2});  // p=1, cap 2
  Machine machine(params, 1);
  machine.attach_faults(plan);
  BlastProtocol protocol(5);
  const MachineResult result = machine.run(protocol);
  EXPECT_EQ(result.faults.drops_loss, 2u);
  EXPECT_EQ(result.trace.deliveries().size(), 3u);  // the cap spares the rest
  EXPECT_EQ(result.schedule.size(), 5u);  // lost sends still occupied the port
}

TEST(MachineFaults, UncappedCertainLossEatsEverything) {
  const PostalParams params = mps(2, Rational(2));
  FaultPlan plan;
  plan.losses.push_back(LinkLoss{0, 1, Rational(1), 0});
  Machine machine(params, 1);
  machine.attach_faults(plan);
  BlastProtocol protocol(4);
  const MachineResult result = machine.run(protocol);
  EXPECT_EQ(result.faults.drops_loss, 4u);
  EXPECT_TRUE(result.trace.deliveries().empty());
}

TEST(MachineFaults, SpikeStretchesLatency) {
  const Rational lambda(2);
  const PostalParams params = mps(2, lambda);
  FaultPlan plan;
  plan.spikes.push_back(LatencySpike{Rational(0), Rational(1), Rational(3)});
  Machine machine(params, 1);
  machine.attach_faults(plan);
  BlastProtocol protocol(2);
  const MachineResult result = machine.run(protocol);
  ASSERT_EQ(result.trace.deliveries().size(), 2u);
  for (const Delivery& d : result.trace.deliveries()) {
    // The send starting at 0 is inside the window (arrives at lambda + 3);
    // the one starting at 1 is outside (plain lambda).
    const Rational expected =
        d.send_start == Rational(0) ? lambda + Rational(3) : Rational(1) + lambda;
    EXPECT_EQ(d.arrival, expected) << "send at " << d.send_start.str();
  }
  EXPECT_EQ(result.faults.spikes_applied, 1u);
}

TEST(MachineFaults, TimerOnCrashedProcessorNeverFires) {
  const PostalParams params = mps(2, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{1, Rational(1)});
  Machine machine(params, 1);
  machine.attach_faults(plan);
  TimerProtocol protocol;
  const MachineResult result = machine.run(protocol);
  EXPECT_EQ(result.stats.timers_set, 1u);
  EXPECT_EQ(result.stats.timers_fired, 0u);
  EXPECT_TRUE(result.schedule.empty());  // the timer's send never happened
}

TEST(MachineFaults, AttachValidatesThePlan) {
  Machine machine(mps(4, Rational(2)), 1);
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{7, Rational(1)});  // proc out of range
  POSTAL_EXPECT_THROW(machine.attach_faults(plan), InvalidArgument);
}

TEST(FaultInjector, CrashQueryIsInclusiveAtTheCrashInstant) {
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{2, Rational(5, 2)});
  const FaultInjector injector(plan, 4);
  EXPECT_FALSE(injector.crashed(2, Rational(2)));
  EXPECT_TRUE(injector.crashed(2, Rational(5, 2)));
  EXPECT_TRUE(injector.crashed(2, Rational(3)));
  EXPECT_FALSE(injector.crashed(1, Rational(100)));
  EXPECT_TRUE(injector.crash_time(2).has_value());
  EXPECT_FALSE(injector.crash_time(0).has_value());
}

TEST(FaultInjector, LossDrawsAreStableAcrossReset) {
  FaultPlan plan;
  plan.seed = 11;
  plan.losses.push_back(LinkLoss{0, 1, Rational(1, 2), 0});
  FaultInjector injector(plan, 2);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(injector.lose(0, 1));
  injector.reset();
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(injector.lose(0, 1), first[static_cast<std::size_t>(i)]) << i;
  // p = 1/2 over 64 draws: both outcomes must occur.
  EXPECT_TRUE(std::find(first.begin(), first.end(), true) != first.end());
  EXPECT_TRUE(std::find(first.begin(), first.end(), false) != first.end());
  // A link with no loss entry never drops.
  injector.reset();
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(injector.lose(1, 0));
}

TEST(FaultInjector, ExtraLatencySumsOverlappingWindows) {
  FaultPlan plan;
  plan.spikes.push_back(LatencySpike{Rational(0), Rational(4), Rational(1)});
  plan.spikes.push_back(LatencySpike{Rational(2), Rational(6), Rational(2)});
  const FaultInjector injector(plan, 2);
  EXPECT_EQ(injector.extra_latency(Rational(1)), Rational(1));
  EXPECT_EQ(injector.extra_latency(Rational(3)), Rational(3));  // both windows
  EXPECT_EQ(injector.extra_latency(Rational(5)), Rational(2));
  EXPECT_EQ(injector.extra_latency(Rational(6)), Rational(0));  // until exclusive
}

}  // namespace
}  // namespace postal
