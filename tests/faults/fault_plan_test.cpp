// Tests for the FaultPlan data model: JSON round-trips, the strict parser's
// rejections, validate()'s domain checks, and the determinism of seeded
// random plan generation.
#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "model/genfib.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.crashes = {CrashFault{3, Rational(5, 2)}, CrashFault{9, Rational(0)}};
  plan.losses = {LinkLoss{0, 3, Rational(1, 10), 3},
                 LinkLoss{2, 5, Rational(1), 0}};
  plan.spikes = {LatencySpike{Rational(3), Rational(6), Rational(2)}};
  return plan;
}

TEST(FaultPlan, EmptyPredicate) {
  EXPECT_TRUE(FaultPlan{}.empty());
  FaultPlan plan;
  plan.spikes.push_back(LatencySpike{Rational(0), Rational(1), Rational(1)});
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, JsonRoundTripIsExact) {
  const FaultPlan plan = sample_plan();
  const std::string json = fault_plan_to_json(plan);
  const FaultPlan parsed = parse_fault_plan(json);
  EXPECT_EQ(parsed, plan);
  // Serializing the parse reproduces the same bytes (canonical form).
  EXPECT_EQ(fault_plan_to_json(parsed), json);
}

TEST(FaultPlan, EmptyPlanRoundTrips) {
  const std::string json = fault_plan_to_json(FaultPlan{});
  const FaultPlan parsed = parse_fault_plan(json);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(parsed.seed, 0u);
}

TEST(FaultPlan, ParserAcceptsWhitespace) {
  const FaultPlan parsed = parse_fault_plan(
      " { \"seed\" : 5 ,\n \"crashes\" : [ { \"proc\" : 1 , \"time\" : "
      "\"3/2\" } ] ,\n \"losses\" : [ ] , \"spikes\" : [ ] }\n");
  EXPECT_EQ(parsed.seed, 5u);
  ASSERT_EQ(parsed.crashes.size(), 1u);
  EXPECT_EQ(parsed.crashes[0].proc, 1u);
  EXPECT_EQ(parsed.crashes[0].time, Rational(3, 2));
}

TEST(FaultPlan, ParserRejectsMalformedInput) {
  // Unknown key.
  POSTAL_EXPECT_THROW(
      parse_fault_plan(R"({"seed":1,"crashes":[],"losses":[],"spikes":[],"x":1})"),
      InvalidArgument);
  POSTAL_EXPECT_THROW(
      parse_fault_plan(R"({"seed":1,"crashes":[{"proc":1,"time":"2","bad":3}],"losses":[],"spikes":[]})"),
      InvalidArgument);
  // Trailing characters after the document.
  POSTAL_EXPECT_THROW(
      parse_fault_plan(fault_plan_to_json(FaultPlan{}) + "garbage"),
      InvalidArgument);
  // Not an object / truncated.
  POSTAL_EXPECT_THROW(parse_fault_plan(""), InvalidArgument);
  POSTAL_EXPECT_THROW(parse_fault_plan("[]"), InvalidArgument);
  POSTAL_EXPECT_THROW(parse_fault_plan(R"({"seed":1)"), InvalidArgument);
  // Rationals must be strings, not numbers.
  POSTAL_EXPECT_THROW(
      parse_fault_plan(R"({"seed":1,"crashes":[{"proc":1,"time":2}],"losses":[],"spikes":[]})"),
      InvalidArgument);
}

TEST(FaultPlan, ValidateChecksDomains) {
  const std::uint64_t n = 8;
  EXPECT_NO_THROW(sample_plan().validate(16));

  FaultPlan bad = sample_plan();  // crashes proc 9 -- out of range for n=8
  POSTAL_EXPECT_THROW(bad.validate(n), InvalidArgument);

  FaultPlan loss_proc;
  loss_proc.losses = {LinkLoss{0, 8, Rational(1, 2), 0}};
  POSTAL_EXPECT_THROW(loss_proc.validate(n), InvalidArgument);

  FaultPlan loss_p;
  loss_p.losses = {LinkLoss{0, 1, Rational(3, 2), 0}};
  POSTAL_EXPECT_THROW(loss_p.validate(n), InvalidArgument);
  loss_p.losses = {LinkLoss{0, 1, Rational(-1, 2), 0}};
  POSTAL_EXPECT_THROW(loss_p.validate(n), InvalidArgument);

  FaultPlan crash_neg;
  crash_neg.crashes = {CrashFault{1, Rational(-1)}};
  POSTAL_EXPECT_THROW(crash_neg.validate(n), InvalidArgument);

  FaultPlan spike_bad;
  spike_bad.spikes = {LatencySpike{Rational(6), Rational(3), Rational(1)}};
  POSTAL_EXPECT_THROW(spike_bad.validate(n), InvalidArgument);
  spike_bad.spikes = {LatencySpike{Rational(0), Rational(3), Rational(-1)}};
  POSTAL_EXPECT_THROW(spike_bad.validate(n), InvalidArgument);
}

TEST(FaultPlan, RandomPlanIsSeedDeterministic) {
  const PostalParams params(32, Rational(5, 2));
  RandomFaultOptions opts;
  opts.crashes = 4;
  opts.loss_p = Rational(1, 8);
  opts.lossy_links = 6;
  opts.spikes = 2;
  const FaultPlan a = random_fault_plan(params, 42, opts);
  const FaultPlan b = random_fault_plan(params, 42, opts);
  EXPECT_EQ(a, b);
  const FaultPlan c = random_fault_plan(params, 43, opts);
  EXPECT_NE(a, c);
}

TEST(FaultPlan, RandomPlanNeverCrashesOriginAndStaysOnGrid) {
  const Rational lambda(5, 2);  // grid = multiples of 1/2
  const PostalParams params(24, lambda);
  GenFib fib(lambda);
  const Rational window = fib.f(params.n());
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    RandomFaultOptions opts;
    opts.crashes = 3;
    const FaultPlan plan = random_fault_plan(params, seed, opts);
    EXPECT_NO_THROW(plan.validate(params.n()));
    EXPECT_EQ(plan.seed, seed);
    EXPECT_EQ(plan.crashes.size(), 3u);
    for (const CrashFault& c : plan.crashes) {
      EXPECT_NE(c.proc, 0u) << "origin must never be crashed (seed " << seed << ")";
      EXPECT_LT(c.proc, params.n());
      EXPECT_GE(c.time, Rational(0));
      EXPECT_LE(c.time, window);
      // Times land on the lambda grid: time * den(lambda) is an integer.
      const Rational scaled = c.time * Rational(lambda.den());
      EXPECT_EQ(scaled.den(), 1) << "crash time " << c.time.str()
                                 << " off the 1/" << lambda.den() << " grid";
    }
  }
}

TEST(FaultPlan, RandomPlanClampsCrashCount) {
  const PostalParams params(4, Rational(2));
  RandomFaultOptions opts;
  opts.crashes = 100;  // only 3 non-origin processors exist
  const FaultPlan plan = random_fault_plan(params, 1, opts);
  EXPECT_LE(plan.crashes.size(), 3u);
  // Distinct processors.
  std::vector<ProcId> procs;
  for (const CrashFault& c : plan.crashes) procs.push_back(c.proc);
  std::sort(procs.begin(), procs.end());
  EXPECT_EQ(std::unique(procs.begin(), procs.end()), procs.end());
}

TEST(FaultPlan, RandomPlanLossAndSpikeKnobs) {
  const PostalParams params(16, Rational(2));
  RandomFaultOptions opts;
  opts.crashes = 0;
  opts.loss_p = Rational(1, 4);
  opts.lossy_links = 5;
  opts.max_losses = 2;
  opts.spikes = 3;
  const FaultPlan plan = random_fault_plan(params, 9, opts);
  EXPECT_TRUE(plan.crashes.empty());
  EXPECT_EQ(plan.losses.size(), 5u);
  for (const LinkLoss& l : plan.losses) {
    EXPECT_EQ(l.p, Rational(1, 4));
    EXPECT_EQ(l.max_losses, 2u);
    EXPECT_NE(l.src, l.dst);
  }
  EXPECT_EQ(plan.spikes.size(), 3u);
  EXPECT_NO_THROW(plan.validate(params.n()));
}

}  // namespace
}  // namespace postal
