// The chaos suite (docs/FAULTS.md): sweep >= 100 seeded random fault
// scenarios -- crash counts crossed with seeds and lambdas, plus combined
// crash+loss storms -- and hold the reliability invariants on every one:
//
//   * every processor that never crashes receives the message;
//   * the crash-aware validator (fifo_receive) accepts the run;
//   * the same seed reproduces the identical schedule, trace, and fault
//     timeline (determinism is what makes a chaos failure debuggable);
//   * counters are internally consistent.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

struct Scenario {
  PostalParams params;
  FaultPlan plan;
  std::string tag;
};

/// Check the reliability invariants on one scenario; returns the report so
/// callers can aggregate. A failing scenario dumps its seed and resolved
/// FaultPlan JSON to stderr (and $POSTAL_CHAOS_ARTIFACTS when set) so the
/// exact run can be replayed with `postal_cli faults --plan`.
ReliableBcastReport check_scenario(const Scenario& s) {
  const int failures_before = test::failure_part_count();
  const ReliableBcastReport report = run_reliable_bcast(s.params, &s.plan);

  EXPECT_TRUE(report.covered)
      << s.tag << ": " << report.uncovered_alive.size()
      << " live processors never reached (first: "
      << (report.uncovered_alive.empty() ? 0 : report.uncovered_alive.front())
      << ")";
  EXPECT_TRUE(report.validation.ok)
      << s.tag << ": " << report.validation.summary();
  // Counter consistency.
  EXPECT_LE(report.crashed.size(), s.plan.crashes.size()) << s.tag;
  EXPECT_GE(report.counters.retransmissions, report.counters.dead_declared)
      << s.tag << ": declaring a child dead takes max_attempts transmissions";
  EXPECT_LE(report.counters.acks_received, report.counters.acks_sent) << s.tag;
  EXPECT_GE(report.counters.data_sends + report.counters.retransmissions,
            s.params.n() - 1 - report.crashed.size())
      << s.tag;
  if (test::failure_part_count() != failures_before) {
    test::dump_chaos_artifact(s.tag, s.plan.seed, s.plan);
  }
  return report;
}

TEST(Chaos, HundredPlusSeededScenariosHoldTheInvariants) {
  std::uint64_t scenarios = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t runs_with_repairs = 0;

  // Crash sweep: 2 lambdas x 5 crash counts x 11 seeds = 110 scenarios.
  const Rational lambdas[] = {Rational(1), Rational(5, 2)};
  const std::uint64_t crash_counts[] = {0, 1, 2, 4, 8};
  for (const Rational& lambda : lambdas) {
    const PostalParams params(48, lambda);
    for (const std::uint64_t crashes : crash_counts) {
      for (std::uint64_t seed_ix = 0; seed_ix < 11; ++seed_ix) {
        const std::uint64_t seed = 0xc4a05 + seed_ix * 131 + crashes * 17 +
                                   static_cast<std::uint64_t>(lambda.num());
        RandomFaultOptions opts;
        opts.crashes = crashes;
        Scenario s{params, random_fault_plan(params, seed, opts),
                   "crash sweep lambda=" + lambda.str() +
                       " crashes=" + std::to_string(crashes) +
                       " seed=" + std::to_string(seed)};
        const ReliableBcastReport report = check_scenario(s);
        if (crashes == 0) {
          EXPECT_EQ(report.completion, report.baseline) << s.tag;
          EXPECT_EQ(report.result.faults.total(), 0u) << s.tag;
        }
        total_faults += report.result.faults.total();
        runs_with_repairs += report.counters.repairs > 0 ? 1 : 0;
        ++scenarios;
      }
    }
  }

  // Combined storms: crashes + bounded link loss (max_losses 3 < the
  // default max_attempts 4, the fair-lossy-link boundary), 12 scenarios.
  const PostalParams storm_params(40, Rational(2));
  for (std::uint64_t seed_ix = 0; seed_ix < 12; ++seed_ix) {
    RandomFaultOptions opts;
    opts.crashes = 3;
    opts.loss_p = Rational(1, 4);
    opts.lossy_links = 20;
    opts.spikes = 1;
    Scenario s{storm_params,
               random_fault_plan(storm_params, 0x570a0 + seed_ix, opts),
               "storm seed=" + std::to_string(0x570a0 + seed_ix)};
    total_faults += check_scenario(s).result.faults.total();
    ++scenarios;
  }

  EXPECT_GE(scenarios, 100u);
  // The sweep must actually exercise the machinery, not vacuously pass.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(runs_with_repairs, 0u);
}

TEST(Chaos, IdenticalSeedsReproduceIdenticalRuns) {
  const PostalParams params(48, Rational(5, 2));
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomFaultOptions opts;
    opts.crashes = 4;
    opts.loss_p = Rational(1, 8);
    opts.lossy_links = 12;
    const FaultPlan plan_a = random_fault_plan(params, seed, opts);
    const FaultPlan plan_b = random_fault_plan(params, seed, opts);
    ASSERT_EQ(plan_a, plan_b) << "plan generation diverged at seed " << seed;

    const ReliableBcastReport a = run_reliable_bcast(params, &plan_a);
    const ReliableBcastReport b = run_reliable_bcast(params, &plan_b);
    EXPECT_EQ(a.result.schedule.events(), b.result.schedule.events())
        << "seed " << seed;
    EXPECT_EQ(a.result.trace.deliveries(), b.result.trace.deliveries())
        << "seed " << seed;
    EXPECT_EQ(a.result.faults.events, b.result.faults.events) << "seed " << seed;
  }
}

TEST(Chaos, HeavyCrashStormStillCoversSurvivors) {
  // Kill a third of the machine. Whatever is left must be reached.
  const PostalParams params(36, Rational(2));
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    RandomFaultOptions opts;
    opts.crashes = 12;
    Scenario s{params, random_fault_plan(params, seed, opts),
               "heavy storm seed=" + std::to_string(seed)};
    const ReliableBcastReport report = check_scenario(s);
    EXPECT_EQ(report.crashed.size(), 12u) << s.tag;
  }
}

}  // namespace
}  // namespace postal
