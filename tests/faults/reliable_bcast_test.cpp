// Tests for the reliable broadcast protocol: the fault-free run must BE the
// paper's Algorithm BCAST (same DATA sends, completion exactly f_lambda(n),
// a silent reliability layer), and under crashes/loss every survivor must
// still be reached with the counters accounting for the recovery.
#include "sim/protocols/reliable_bcast.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

PostalParams mps(std::uint64_t n, Rational lambda) { return {n, std::move(lambda)}; }

TEST(ReliableBcast, FaultFreeCompletionIsExactlyFLambda) {
  const struct {
    std::uint64_t n;
    Rational lambda;
  } cases[] = {{2, Rational(1)},   {14, Rational(5, 2)}, {34, Rational(5, 2)},
               {57, Rational(3)},  {96, Rational(1)},    {41, Rational(7, 3)}};
  for (const auto& c : cases) {
    const PostalParams params = mps(c.n, c.lambda);
    GenFib fib(c.lambda);
    const ReliableBcastReport report = run_reliable_bcast(params);
    EXPECT_TRUE(report.covered);
    EXPECT_TRUE(report.validation.ok) << report.validation.summary();
    EXPECT_EQ(report.completion, fib.f(c.n))
        << "n=" << c.n << " lambda=" << c.lambda.str();
    EXPECT_EQ(report.baseline, fib.f(c.n));
    EXPECT_EQ(report.recovery_overhead, Rational(0));
    // The reliability layer must be silent when nothing fails.
    EXPECT_EQ(report.counters.retransmissions, 0u);
    EXPECT_EQ(report.counters.dead_declared, 0u);
    EXPECT_EQ(report.counters.repairs, 0u);
    EXPECT_EQ(report.counters.data_sends, c.n - 1);
    EXPECT_EQ(report.result.faults.total(), 0u);
    EXPECT_TRUE(report.crashed.empty());
  }
}

TEST(ReliableBcast, FaultFreeDataSendsAreAlgorithmBcast) {
  // DATA always flows to higher ids (a parent owns [self, hi) and delegates
  // upper pieces), acks flow back down -- so the dst > src half of the
  // reliable schedule must be event-for-event the analytic BCAST schedule.
  const PostalParams params = mps(34, Rational(5, 2));
  const ReliableBcastReport report = run_reliable_bcast(params);
  Schedule data_only;
  for (const SendEvent& e : report.result.schedule.events())
    if (e.dst > e.src) data_only.add(e);
  const Schedule paper = bcast_schedule(params);
  EXPECT_EQ(data_only.events(), paper.events());
}

TEST(ReliableBcast, TrivialSizes) {
  const ReliableBcastReport one = run_reliable_bcast(mps(1, Rational(2)));
  EXPECT_TRUE(one.covered);
  EXPECT_EQ(one.completion, Rational(0));
  EXPECT_EQ(one.baseline, Rational(0));
  const ReliableBcastReport two = run_reliable_bcast(mps(2, Rational(3)));
  EXPECT_TRUE(two.covered);
  EXPECT_EQ(two.completion, Rational(3));
}

TEST(ReliableBcast, RelayCrashIsRepaired) {
  const Rational lambda(2);
  const PostalParams params = mps(32, lambda);
  GenFib fib(lambda);
  const auto relay = static_cast<ProcId>(fib.bcast_split(params.n()));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{relay, lambda});  // dies as its copy lands

  const ReliableBcastReport report = run_reliable_bcast(params, &plan);
  EXPECT_TRUE(report.covered) << report.uncovered_alive.size()
                              << " live processors missed";
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  ASSERT_EQ(report.crashed.size(), 1u);
  EXPECT_EQ(report.crashed[0], relay);
  EXPECT_GE(report.counters.timeouts, 1u);
  EXPECT_GE(report.counters.retransmissions, 1u);
  EXPECT_EQ(report.counters.dead_declared, 1u);
  EXPECT_GE(report.counters.repairs, 1u);  // [relay+1, n) re-rooted
  EXPECT_GT(report.recovery_overhead, Rational(0));
  // The dead relay is exempt; everyone else got the message.
  EXPECT_TRUE(report.uncovered_alive.empty());
}

TEST(ReliableBcast, LeafCrashNeedsNoRepair) {
  const PostalParams params = mps(8, Rational(2));
  // Processor n-1 is always a leaf of the broadcast tree (it owns [n-1, n)).
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{7, Rational(0)});
  const ReliableBcastReport report = run_reliable_bcast(params, &plan);
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.counters.dead_declared, 1u);
  EXPECT_EQ(report.counters.repairs, 0u);  // a leaf orphans nobody
}

TEST(ReliableBcast, CascadingCrashesAreRepaired) {
  const Rational lambda(2);
  const PostalParams params = mps(48, lambda);
  GenFib fib(lambda);
  const auto relay = static_cast<ProcId>(fib.bcast_split(params.n()));
  FaultPlan plan;
  // The relay AND its repair successor die: the parent must walk on.
  plan.crashes.push_back(CrashFault{relay, Rational(0)});
  plan.crashes.push_back(CrashFault{relay + 1, Rational(0)});
  const ReliableBcastReport report = run_reliable_bcast(params, &plan);
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.counters.dead_declared, 2u);
  EXPECT_GE(report.counters.repairs, 2u);
}

TEST(ReliableBcast, BoundedLossIsAbsorbedByRetransmission) {
  const Rational lambda(2);
  const PostalParams params = mps(16, lambda);
  GenFib fib(lambda);
  const auto relay = static_cast<ProcId>(fib.bcast_split(params.n()));
  FaultPlan plan;
  // Certain loss on the root's first DATA link, burst-capped below the
  // retransmission budget (max_losses 2 < max_attempts 4).
  plan.losses.push_back(LinkLoss{0, relay, Rational(1), 2});
  const ReliableBcastReport report = run_reliable_bcast(params, &plan);
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.result.faults.drops_loss, 2u);
  EXPECT_GE(report.counters.retransmissions, 2u);
  EXPECT_EQ(report.counters.dead_declared, 0u);  // it answered in time
  EXPECT_TRUE(report.crashed.empty());
}

TEST(ReliableBcast, RunsAreDeterministic) {
  const PostalParams params = mps(40, Rational(5, 2));
  RandomFaultOptions opts;
  opts.crashes = 3;
  opts.loss_p = Rational(1, 8);
  opts.lossy_links = 10;
  const FaultPlan plan = random_fault_plan(params, 1234, opts);
  const ReliableBcastReport a = run_reliable_bcast(params, &plan);
  const ReliableBcastReport b = run_reliable_bcast(params, &plan);
  EXPECT_EQ(a.result.schedule.events(), b.result.schedule.events());
  EXPECT_EQ(a.result.trace.deliveries(), b.result.trace.deliveries());
  EXPECT_EQ(a.result.faults.events, b.result.faults.events);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.counters.retransmissions, b.counters.retransmissions);
}

TEST(ReliableBcast, ShardedRunsMatchSequentialByteForByte) {
  // options.threads > 1 swaps the Machine for the sharded ParMachine
  // (docs/SIMULATION.md); the whole report -- schedule, trace, fault
  // timeline, counters folded across shard instances, judgments -- must be
  // identical. Integer lambda keeps the ack timers on the tick grid so the
  // sharded engine actually runs (no sequential fallback).
  const PostalParams params = mps(40, Rational(2));
  RandomFaultOptions opts;
  opts.crashes = 3;
  opts.loss_p = Rational(1, 8);
  opts.lossy_links = 10;
  const FaultPlan plan = random_fault_plan(params, 99, opts);
  const ReliableBcastReport seq = run_reliable_bcast(params, &plan);
  for (const unsigned threads : {2u, 4u}) {
    ReliableBcastOptions options;
    options.threads = threads;
    const ReliableBcastReport par = run_reliable_bcast(params, &plan, options);
    EXPECT_EQ(par.result.schedule.events(), seq.result.schedule.events());
    EXPECT_EQ(par.result.trace.deliveries(), seq.result.trace.deliveries());
    EXPECT_EQ(par.result.faults.events, seq.result.faults.events);
    EXPECT_EQ(par.completion, seq.completion);
    EXPECT_EQ(par.covered, seq.covered);
    EXPECT_EQ(par.validation.ok, seq.validation.ok);
    EXPECT_EQ(par.counters.data_sends, seq.counters.data_sends);
    EXPECT_EQ(par.counters.retransmissions, seq.counters.retransmissions);
    EXPECT_EQ(par.counters.acks_sent, seq.counters.acks_sent);
    EXPECT_EQ(par.counters.acks_received, seq.counters.acks_received);
    EXPECT_EQ(par.counters.timeouts, seq.counters.timeouts);
    EXPECT_EQ(par.counters.dead_declared, seq.counters.dead_declared);
    EXPECT_EQ(par.counters.repairs, seq.counters.repairs);
  }
}

TEST(ReliableBcast, ShardedFaultFreeRunIsStillAlgorithmBcast) {
  const PostalParams params = mps(57, Rational(3));
  GenFib fib(params.lambda());
  ReliableBcastOptions options;
  options.threads = 4;
  const ReliableBcastReport report = run_reliable_bcast(params, nullptr, options);
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.completion, fib.f(57));
  EXPECT_EQ(report.counters.retransmissions, 0u);
  EXPECT_EQ(report.counters.dead_declared, 0u);
}

// ---------------------------------------------------------------------------
// Backoff boundaries: the retransmission machinery at its edges.
// ---------------------------------------------------------------------------

TEST(ReliableBcast, ZeroSlackTiesRetransmitSpuriouslyButHarmlessly) {
  // timeout_slack = 0 puts a leaf child's ack deadline at exactly
  // 3 f(1) + 2 lambda = 2 lambda -- the precise instant the ack lands (one
  // lambda out, one lambda back). The Machine resolves the tie in favour of
  // the timer, so every leaf child costs exactly one spurious
  // retransmission; the boundary contract is that those retransmissions
  // are harmless: nobody is declared dead, no repair fires, and the
  // completion still equals f_lambda(n) to the tick.
  const struct {
    std::uint64_t n;
    Rational lambda;
  } cases[] = {{2, Rational(1)}, {2, Rational(2)}, {14, Rational(5, 2)},
               {34, Rational(2)}};
  for (const auto& c : cases) {
    ReliableBcastOptions options;
    options.timeout_slack = Rational(0);
    const ReliableBcastReport report =
        run_reliable_bcast(mps(c.n, c.lambda), nullptr, options);
    EXPECT_TRUE(report.covered);
    EXPECT_TRUE(report.validation.ok) << report.validation.summary();
    EXPECT_EQ(report.completion, report.baseline)
        << "n=" << c.n << " lambda=" << c.lambda.str();
    EXPECT_GT(report.counters.timeouts, 0u)
        << "n=" << c.n << " lambda=" << c.lambda.str();
    EXPECT_EQ(report.counters.retransmissions, report.counters.timeouts);
    EXPECT_EQ(report.counters.dead_declared, 0u);
    EXPECT_EQ(report.counters.repairs, 0u);
  }
}

TEST(ReliableBcast, SingleAttemptDeclaresDeadWithoutRetransmitting) {
  // max_attempts = 1 is the zero-retry edge: the first timeout gives up
  // immediately, so recovery must come entirely from subtree repair.
  const Rational lambda(2);
  const PostalParams params = mps(12, lambda);
  GenFib fib(lambda);
  const auto relay = static_cast<ProcId>(fib.bcast_split(params.n()));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{relay, Rational(0)});  // never starts
  ReliableBcastOptions options;
  options.max_attempts = 1;
  const ReliableBcastReport report = run_reliable_bcast(params, &plan, options);
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.counters.retransmissions, 0u);  // zero-retry by contract
  EXPECT_GE(report.counters.dead_declared, 1u);
  EXPECT_GE(report.counters.repairs, 1u);
  EXPECT_LT(report.baseline, report.completion);  // repair costs time
}

TEST(ReliableBcast, BackoffSaturatesAtShiftTwenty) {
  // A child that is crashed from t = 0 never acks, so every attempt times
  // out and the patience doubles each round -- but the exponent clamps at
  // 20. With 25 attempts the last retransmission leaves at
  //   base * sum_{k=1}^{24} 2^min(k-1, 20) = base * (5 * 2^20 - 1),
  // while an unclamped backoff would put it at base * (2^24 - 1) -- three
  // times later. The exact send times in the schedule expose the clamp.
  const Rational lambda(1);
  const PostalParams params = mps(2, lambda);
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{1, Rational(0)});
  ReliableBcastOptions options;
  options.max_attempts = 25;
  const ReliableBcastReport report = run_reliable_bcast(params, &plan, options);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.counters.timeouts, 25u);
  EXPECT_EQ(report.counters.retransmissions, 24u);
  EXPECT_EQ(report.counters.dead_declared, 1u);
  EXPECT_EQ(report.counters.repairs, 0u);  // nothing left to salvage at n = 2

  GenFib fib(lambda);
  const Rational base =
      fib.f(1) * Rational(3) + lambda * Rational(2) + options.timeout_slack;
  Rational expected_last;  // sum of the 24 clamped patiences
  for (std::uint32_t attempt = 1; attempt <= 24; ++attempt) {
    const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 20);
    expected_last = expected_last + base * Rational(std::int64_t{1} << shift);
  }
  const auto& events = report.result.schedule.events();
  ASSERT_EQ(events.size(), 25u);
  EXPECT_EQ(events.back().t, expected_last);
  EXPECT_LT(expected_last, base * Rational((std::int64_t{1} << 24) - 1));
}

TEST(ReliableBcast, OptionsAreValidated) {
  const PostalParams params = mps(4, Rational(2));
  ReliableBcastOptions zero_attempts;
  zero_attempts.max_attempts = 0;
  POSTAL_EXPECT_THROW(run_reliable_bcast(params, nullptr, zero_attempts),
                      InvalidArgument);
  ReliableBcastOptions negative_slack;
  negative_slack.timeout_slack = Rational(-1);
  POSTAL_EXPECT_THROW(run_reliable_bcast(params, nullptr, negative_slack),
                      InvalidArgument);
}

}  // namespace
}  // namespace postal
