// Concurrency tests for the src/par subsystem: thread-pool determinism,
// cache coherence under concurrent access, pool reuse and teardown, and
// the threads == 1 sequential-path contract. The whole binary is designed
// to be run under -fsanitize=thread (scripts/check.sh --sanitize), so the
// tests deliberately hammer shared state from many lanes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "model/genfib.hpp"
#include "par/genfib_cache.hpp"
#include "par/schedule_cache.hpp"
#include "par/sweep.hpp"
#include "par/thread_pool.hpp"
#include "sched/bcast.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace postal {
namespace {

TEST(ThreadPoolTest, MapIsDeterministicAcrossThreadCounts) {
  const auto fn = [](std::size_t i) {
    // A pure per-index computation heavy enough to interleave lanes.
    Xoshiro256 rng(static_cast<std::uint64_t>(i) * 0x9E37u + 1);
    std::uint64_t acc = 0;
    for (int k = 0; k < 100; ++k) acc ^= rng();
    return acc;
  };
  const std::vector<std::uint64_t> seq = par::parallel_map(1, 500, fn);
  EXPECT_EQ(par::parallel_map(2, 500, fn), seq);
  EXPECT_EQ(par::parallel_map(8, 500, fn), seq);
}

TEST(ThreadPoolTest, ForEachVisitsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> visits(257);
    par::parallel_for(threads, visits.size(),
                      [&visits](std::size_t i) { visits[i].fetch_add(1); });
    for (const std::atomic<int>& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  par::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  for (int round = 0; round < 20; ++round) {
    const std::vector<std::size_t> out = pool.map(50, [round](std::size_t i) {
      return i * static_cast<std::size_t>(round + 1);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * static_cast<std::size_t>(round + 1));
    }
  }
  // Empty batches are a no-op, not a hang.
  pool.for_each(0, [](std::size_t) { FAIL() << "called on empty batch"; });
}

TEST(ThreadPoolTest, SmallestFailingIndexIsRethrownAndPoolSurvives) {
  par::ThreadPool pool(4);
  try {
    pool.for_each(100, [](std::size_t i) {
      if (i == 17 || i == 63 || i == 99) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 17");
  }
  // The same pool keeps working after an exceptional batch.
  const std::vector<std::size_t> out = pool.map(10, [](std::size_t i) { return i; });
  EXPECT_EQ(out.back(), 9u);
}

TEST(ThreadPoolTest, NestedForEachThrowsLogicError) {
  par::ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(4,
                             [&pool](std::size_t) {
                               pool.for_each(2, [](std::size_t) {});
                             }),
               LogicError);
  EXPECT_THROW(par::ThreadPool(0), InvalidArgument);
}

TEST(ThreadPoolTest, ThreadsFromEnvParsesAndRejects) {
  ::setenv("POSTAL_THREADS", "6", 1);
  EXPECT_EQ(par::threads_from_env(3), 6u);
  ::setenv("POSTAL_THREADS", "0", 1);
  EXPECT_EQ(par::threads_from_env(3), 3u);
  ::setenv("POSTAL_THREADS", "banana", 1);
  EXPECT_EQ(par::threads_from_env(3), 3u);
  ::unsetenv("POSTAL_THREADS");
  EXPECT_EQ(par::threads_from_env(3), 3u);
}

TEST(GenFibCacheTest, ConcurrentHitsAndMissesAgreeWithFreshGenFib) {
  par::GenFibCache cache;
  const std::vector<Rational> lambdas = {Rational(1), Rational(3, 2),
                                         Rational(5, 2), Rational(7, 3)};
  // 8 lanes query overlapping (lambda, n) pairs: every lane's answer must
  // equal a fresh single-threaded GenFib regardless of who built the table.
  constexpr std::size_t kQueries = 256;
  const std::vector<Rational> values =
      par::parallel_map(8, kQueries, [&cache, &lambdas](std::size_t i) {
        const Rational& lambda = lambdas[i % lambdas.size()];
        const std::uint64_t n = 1 + (i * 7) % 120;  // deliberate repeats
        return cache.f(lambda, n);
      });
  for (std::size_t i = 0; i < kQueries; ++i) {
    GenFib fresh(lambdas[i % lambdas.size()]);
    EXPECT_EQ(values[i], fresh.f(1 + (i * 7) % 120)) << "query " << i;
  }
  const par::GenFibCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.f_hits + stats.f_misses, kQueries);
  EXPECT_EQ(stats.tables, lambdas.size());
  EXPECT_GT(stats.f_hits, 0u);  // repeats guarantee hits
  cache.clear();
  EXPECT_EQ(cache.stats().f_misses, 0u);
}

TEST(ScheduleCacheTest, ConcurrentLookupsShareOneSchedulePerKey) {
  par::ScheduleCache cache;
  const PostalParams params(30, Rational(5, 2));
  const std::vector<std::shared_ptr<const Schedule>> copies =
      par::parallel_map(8, 64, [&cache, &params](std::size_t) {
        return cache.bcast(params);
      });
  const Schedule fresh = bcast_schedule(params);
  for (const std::shared_ptr<const Schedule>& s : copies) {
    ASSERT_NE(s, nullptr);
    // Every lane ends up holding the same immutable object (first insert
    // wins; race losers adopt the winner's schedule).
    EXPECT_EQ(s.get(), copies.front().get());
    EXPECT_EQ(s->events(), fresh.events());
  }
  const par::ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 64u);
  // clear() drops the entry but outstanding pointers stay valid.
  cache.clear();
  EXPECT_EQ(copies.front()->events(), fresh.events());
  EXPECT_NE(cache.bcast(params).get(), copies.front().get());
}

TEST(SweepTest, ThreadCountInvariance) {
  const std::vector<std::uint64_t> ns = {1, 2, 9, 40, 150};
  const std::vector<Rational> lambdas = {Rational(1), Rational(3, 2),
                                         Rational(13, 4)};
  std::vector<std::vector<par::SweepPointResult>> runs;
  for (const unsigned threads : {1u, 2u, 8u}) {
    par::GenFibCache genfib_cache;
    par::ScheduleCache schedule_cache;
    par::SweepOptions options;
    options.threads = threads;
    options.genfib_cache = &genfib_cache;
    options.schedule_cache = &schedule_cache;
    runs.push_back(par::sweep_grid(ns, lambdas, options));
  }
  EXPECT_TRUE(par::sweep_results_equal_ignoring_wall(runs[0], runs[1]));
  EXPECT_TRUE(par::sweep_results_equal_ignoring_wall(runs[0], runs[2]));
  for (const par::SweepPointResult& r : runs[0]) {
    EXPECT_TRUE(r.ok) << "n=" << r.n << " lambda=" << r.lambda;
  }
}

TEST(SweepTest, RejectsEmptyGrid) {
  EXPECT_THROW((void)par::sweep_grid({}, {Rational(1)}), InvalidArgument);
  EXPECT_THROW((void)par::sweep_grid({4}, {}), InvalidArgument);
}

}  // namespace
}  // namespace postal
