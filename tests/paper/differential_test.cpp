// Randomized differential testing over every single-message algorithm
// family: for seeded random (n, lambda) pairs with exact rational lambda,
// four independent computations of the optimal broadcast time must agree
// bit-for-bit:
//
//   f_lambda(n)                 the paper's closed form (model/genfib),
//   optimal_broadcast_dp        the exhaustive split recursion (src/brute),
//   optimal_broadcast_greedy    frontier expansion (src/brute),
//   validator makespan          of the generated BCAST schedule (src/sim).
//
// Theorem 6 says all four coincide; the implementations share no code
// beyond Rational, so agreement on hundreds of random points is strong
// evidence against a bug hiding in any one family. The par-layer caches
// (par/genfib_cache, par/schedule_cache) are differentially tested against
// the fresh objects on the same pairs: a cache is only correct if it is
// invisible.
//
// scripts/check.sh --sanitize re-runs this binary under TSan and under
// ASan+UBSan (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include "brute/optimal_search.hpp"
#include "model/genfib.hpp"
#include "par/genfib_cache.hpp"
#include "par/schedule_cache.hpp"
#include "par/sweep.hpp"
#include "sched/bcast.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"

namespace postal {
namespace {

struct RandomPair {
  std::uint64_t n;
  Rational lambda;
};

// ~200 reproducible (n, lambda) pairs: n in [1, 256], lambda = p/q with
// q in [1, 4] and 1 <= lambda <= 8. Exact rationals with small
// denominators keep the DP exact and exercise the non-integer breakpoints
// of F_lambda.
std::vector<RandomPair> random_pairs(std::uint64_t seed, std::size_t count) {
  Xoshiro256 rng(seed);
  std::vector<RandomPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const std::uint64_t n = rng.uniform(1, 256);
    const std::uint64_t q = rng.uniform(1, 4);
    const std::uint64_t p = rng.uniform(q, 8 * q);  // lambda = p/q in [1, 8]
    pairs.push_back({n, Rational(static_cast<std::int64_t>(p),
                                 static_cast<std::int64_t>(q))});
  }
  return pairs;
}

TEST(DifferentialTest, FourWayAgreementOnRandomPairs) {
  const std::vector<RandomPair> pairs = random_pairs(0xD1FFu, 200);
  for (const RandomPair& pair : pairs) {
    GenFib fib(pair.lambda);
    const Rational f = fib.f(pair.n);
    const Rational dp = optimal_broadcast_dp(pair.n, pair.lambda);
    const Rational greedy = optimal_broadcast_greedy(pair.n, pair.lambda);
    EXPECT_EQ(f, dp) << "n=" << pair.n << " lambda=" << pair.lambda;
    EXPECT_EQ(f, greedy) << "n=" << pair.n << " lambda=" << pair.lambda;

    const PostalParams params(pair.n, pair.lambda);
    const SimReport report = validate_schedule(bcast_schedule(params, fib), params);
    EXPECT_TRUE(report.ok) << "n=" << pair.n << " lambda=" << pair.lambda << "\n"
                           << report.summary();
    if (pair.n > 1) {
      EXPECT_EQ(report.makespan, f)
          << "n=" << pair.n << " lambda=" << pair.lambda;
    }
  }
}

TEST(DifferentialTest, GenFibCacheIsInvisible) {
  par::GenFibCache cache;
  const std::vector<RandomPair> pairs = random_pairs(0xCAC4Eu, 200);
  for (const RandomPair& pair : pairs) {
    GenFib fresh(pair.lambda);
    EXPECT_EQ(cache.f(pair.lambda, pair.n), fresh.f(pair.n))
        << "n=" << pair.n << " lambda=" << pair.lambda;
    if (pair.n > 1) {
      EXPECT_EQ(cache.bcast_split(pair.lambda, pair.n), fresh.bcast_split(pair.n))
          << "n=" << pair.n << " lambda=" << pair.lambda;
    }
  }
  // Re-querying the same pairs must hit the memo and still agree.
  const par::GenFibCache::Stats before = cache.stats();
  for (const RandomPair& pair : pairs) {
    GenFib fresh(pair.lambda);
    EXPECT_EQ(cache.f(pair.lambda, pair.n), fresh.f(pair.n));
  }
  const par::GenFibCache::Stats after = cache.stats();
  EXPECT_EQ(after.f_misses, before.f_misses);  // second pass: all hits
  EXPECT_EQ(after.f_hits, before.f_hits + pairs.size());
}

TEST(DifferentialTest, ScheduleCacheIsInvisible) {
  par::ScheduleCache cache;
  const std::vector<RandomPair> pairs = random_pairs(0x5C4EDu, 60);
  for (const RandomPair& pair : pairs) {
    const PostalParams params(pair.n, pair.lambda);
    const std::shared_ptr<const Schedule> cached = cache.bcast(params);
    const Schedule fresh = bcast_schedule(params);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached->events(), fresh.events())
        << "n=" << pair.n << " lambda=" << pair.lambda;
    // The second request must hand back the very same immutable object.
    EXPECT_EQ(cache.bcast(params).get(), cached.get());
  }
}

TEST(DifferentialTest, SweepEngineMatchesPointwiseComputation) {
  const std::vector<std::uint64_t> ns = {1, 2, 7, 33, 100};
  const std::vector<Rational> lambdas = {Rational(1), Rational(7, 3),
                                         Rational(11, 2)};
  par::GenFibCache genfib_cache;
  par::ScheduleCache schedule_cache;
  par::SweepOptions options;
  options.threads = 1;
  options.genfib_cache = &genfib_cache;
  options.schedule_cache = &schedule_cache;
  const std::vector<par::SweepPointResult> results =
      par::sweep_grid(ns, lambdas, options);
  ASSERT_EQ(results.size(), ns.size() * lambdas.size());
  for (std::size_t li = 0; li < lambdas.size(); ++li) {
    GenFib fib(lambdas[li]);
    for (std::size_t ni = 0; ni < ns.size(); ++ni) {
      const par::SweepPointResult& r = results[li * ns.size() + ni];
      EXPECT_EQ(r.n, ns[ni]);
      EXPECT_EQ(r.lambda, lambdas[li]);
      EXPECT_TRUE(r.ok) << "n=" << r.n << " lambda=" << r.lambda;
      EXPECT_EQ(r.f, fib.f(ns[ni]));
      EXPECT_EQ(r.dp, optimal_broadcast_dp(ns[ni], lambdas[li]));
      EXPECT_EQ(r.greedy, optimal_broadcast_greedy(ns[ni], lambdas[li]));
    }
  }
}

}  // namespace
}  // namespace postal
