// Reproduction of the paper's optimality claims (Lemma 5 / Theorem 6),
// cross-checked against machinery that never evaluates the generalized
// Fibonacci function: the exhaustive split-recursion DP and the greedy
// frontier expansion. Also checks Corollary 9's dominance over every
// algorithm in the library.
#include <gtest/gtest.h>

#include <tuple>

#include "brute/optimal_search.hpp"
#include "model/bounds.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"

namespace postal {
namespace {

// Theorem 6 via three independent computations: f_lambda(n) (GenFib), the
// exhaustive split DP, and the greedy frontier -- all must coincide, and
// the simulated BCAST schedule must achieve that value.
class OptimalitySweep : public ::testing::TestWithParam<Rational> {};

TEST_P(OptimalitySweep, Theorem6TripleAgreement) {
  const Rational lambda = GetParam();
  GenFib fib(lambda);
  for (std::uint64_t n = 1; n <= 200; ++n) {
    const Rational via_fib = fib.f(n);
    EXPECT_EQ(via_fib, optimal_broadcast_dp(n, lambda)) << "n=" << n;
    EXPECT_EQ(via_fib, optimal_broadcast_greedy(n, lambda)) << "n=" << n;
  }
  // And the concrete schedule achieves it (spot-check a few sizes).
  for (std::uint64_t n : {2ULL, 14ULL, 59ULL, 200ULL}) {
    const PostalParams params(n, lambda);
    const SimReport report = validate_schedule(bcast_schedule(params), params);
    ASSERT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(report.makespan, fib.f(n)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lambdas, OptimalitySweep,
    ::testing::Values(Rational(1), Rational(5, 4), Rational(3, 2), Rational(2),
                      Rational(5, 2), Rational(3), Rational(10, 3), Rational(4),
                      Rational(11, 2), Rational(8), Rational(16)),
    [](const ::testing::TestParamInfo<Rational>& pinfo) {
      return "lam" + std::to_string(pinfo.param.num()) + "_" +
             std::to_string(pinfo.param.den());
    });

TEST(Optimality, NoLibraryAlgorithmBeatsBcastForOneMessage) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 10ULL, 50ULL, 128ULL}) {
      const PostalParams params(n, lambda);
      const Rational optimal = fib.f(n);
      for (const MultiAlgo algo : all_multi_algos()) {
        EXPECT_GE(predict_multi(algo, params, 1), optimal)
            << algo_name(algo) << " n=" << n << " lambda=" << lambda.str();
      }
    }
  }
}

TEST(Optimality, RepeatPackPipelineReduceToBcastAtMOne) {
  // All three BCAST generalizations collapse to exactly f_lambda(n) at m=1.
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 14ULL, 100ULL}) {
      const PostalParams params(n, lambda);
      EXPECT_EQ(predict_multi(MultiAlgo::kRepeat, params, 1), fib.f(n));
      EXPECT_EQ(predict_multi(MultiAlgo::kPack, params, 1), fib.f(n));
      EXPECT_EQ(predict_multi(MultiAlgo::kPipeline, params, 1), fib.f(n));
    }
  }
}

TEST(Optimality, BinomialTreeIsStrictlySuboptimalForLargeLatency) {
  // The motivating claim: ignoring lambda costs real time. At lambda = 8
  // the Fibonacci tree must strictly beat the binomial tree for nontrivial n.
  const Rational lambda(8);
  GenFib fib(lambda);
  std::uint64_t strict_wins = 0;
  for (std::uint64_t n = 3; n <= 300; ++n) {
    const PostalParams params(n, lambda);
    const BroadcastTree binomial = BroadcastTree::binomial(n);
    const Rational naive = binomial.completion_time(lambda);
    const Rational optimal = fib.f(n);
    EXPECT_LE(optimal, naive) << "n=" << n;
    if (optimal < naive) ++strict_wins;
  }
  EXPECT_GT(strict_wins, 250u);
}

TEST(Optimality, Lemma5LowerBoundRecurrenceSaturates) {
  // N(t) <= F_lambda(t): the frontier count of the greedy expansion at the
  // exact completion time equals F (the counting argument of Lemma 5).
  for (const Rational lambda : {Rational(2), Rational(5, 2)}) {
    GenFib fib(lambda);
    for (std::uint64_t n = 2; n <= 100; ++n) {
      // f(F(t)) <= t with equality pattern: broadcasting to exactly F(t)
      // processors takes exactly t.
      const Rational t = fib.f(n);
      const std::uint64_t capacity = fib.F(t);
      EXPECT_GE(capacity, n);
      EXPECT_EQ(fib.f(capacity), t)
          << "broadcast capacity at t must be tight, n=" << n;
    }
  }
}

}  // namespace
}  // namespace postal
