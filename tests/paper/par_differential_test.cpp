// The shard-count-invariance gate (docs/SIMULATION.md): ParMachine must be
// byte-identical to the sequential Machine -- same schedule events, same
// trace deliveries in the same order, same stats, same fault timeline,
// same validator verdicts -- at every thread count, over the full protocol
// family and fault-injection corpus the tick differential uses. threads=1
// is not a special case here: the windowed engine (with its barrier
// merge-replay) runs at every shard count including one, so a threads=1
// pass already exercises the window/merge machinery, and the higher
// thread counts exercise true cross-shard mailboxes.
//
// scripts/check.sh --sanitize re-runs this binary under TSan (the shard
// loops run on real pool lanes at threads > 1) and under ASan+UBSan.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/protocols/dtree_protocol.hpp"
#include "sim/protocols/multi_protocols.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"

namespace postal {
namespace {

std::vector<unsigned> thread_counts() {
  std::vector<unsigned> counts = {1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

/// Everything a MachineResult exposes must match, including the engine
/// flag: a sharded tick run reports tick_domain exactly like a sequential
/// tick run would.
void expect_identical_runs(const MachineResult& par, const MachineResult& ref,
                           const std::string& tag) {
  EXPECT_EQ(par.schedule.events(), ref.schedule.events()) << tag;
  EXPECT_EQ(par.trace.deliveries(), ref.trace.deliveries()) << tag;
  EXPECT_EQ(par.stats.events_processed, ref.stats.events_processed) << tag;
  EXPECT_EQ(par.stats.sends_enqueued, ref.stats.sends_enqueued) << tag;
  EXPECT_EQ(par.stats.sends_deferred, ref.stats.sends_deferred) << tag;
  EXPECT_EQ(par.stats.timers_set, ref.stats.timers_set) << tag;
  EXPECT_EQ(par.stats.timers_fired, ref.stats.timers_fired) << tag;
  EXPECT_EQ(par.stats.receives_queued, ref.stats.receives_queued) << tag;
  EXPECT_EQ(par.stats.max_fifo_depth, ref.stats.max_fifo_depth) << tag;
  EXPECT_EQ(par.stats.port_busy, ref.stats.port_busy) << tag;
  EXPECT_EQ(par.stats.tick_domain, ref.stats.tick_domain) << tag;
  EXPECT_EQ(par.faults.crashes_applied, ref.faults.crashes_applied) << tag;
  EXPECT_EQ(par.faults.sends_suppressed, ref.faults.sends_suppressed) << tag;
  EXPECT_EQ(par.faults.drops_crash, ref.faults.drops_crash) << tag;
  EXPECT_EQ(par.faults.drops_loss, ref.faults.drops_loss) << tag;
  EXPECT_EQ(par.faults.spikes_applied, ref.faults.spikes_applied) << tag;
  EXPECT_EQ(par.faults.events, ref.faults.events) << tag;
}

/// Validator verdicts over the two schedules+params must agree too (they
/// must, given identical schedules -- this guards the plumbing end).
void expect_identical_verdicts(const MachineResult& par, const MachineResult& ref,
                               const PostalParams& params, const std::string& tag) {
  const SimReport a = validate_schedule(par.schedule, params);
  const SimReport b = validate_schedule(ref.schedule, params);
  EXPECT_EQ(a.ok, b.ok) << tag;
  EXPECT_EQ(a.violations, b.violations) << tag;
  EXPECT_EQ(a.makespan, b.makespan) << tag;
  EXPECT_EQ(a.order_preserving, b.order_preserving) << tag;
}

class ParDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParDifferential, BcastRunsAreByteIdentical) {
  const unsigned threads = GetParam();
  Xoshiro256 rng(0xA55Cu ^ threads);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t n = rng.uniform(1, 160);
    const std::uint64_t q = rng.uniform(1, 4);
    const Rational lambda(static_cast<std::int64_t>(rng.uniform(q, 8 * q)),
                          static_cast<std::int64_t>(q));
    const PostalParams params(n, lambda);
    const std::string tag = "threads=" + std::to_string(threads) +
                            " n=" + std::to_string(n) + " lambda=" + lambda.str();

    Machine machine(params, 1);
    BcastProtocol protocol(params);
    const MachineResult ref = machine.run(protocol);

    ParMachine par(params, 1);
    par.set_threads(threads);
    auto factory = make_protocol_factory<BcastProtocol>(params);
    const MachineResult got = par.run(factory);

    expect_identical_runs(got, ref, tag);
    expect_identical_verdicts(got, ref, params, tag);
    EXPECT_TRUE(par.last_run_info().parallel_engine) << tag;
    EXPECT_EQ(par.last_run_info().shards,
              std::min<std::uint64_t>(threads, n))
        << tag;
  }
}

TEST_P(ParDifferential, MultiMessageProtocolFamiliesAreByteIdentical) {
  const unsigned threads = GetParam();
  const PostalParams params(24, Rational(5, 2));
  const auto check = [&](auto ref_protocol, auto factory, std::uint32_t m,
                         const std::string& name) {
    const std::string tag = name + " threads=" + std::to_string(threads);
    Machine machine(params, m);
    const MachineResult ref = machine.run(ref_protocol);
    ParMachine par(params, m);
    par.set_threads(threads);
    const MachineResult got = par.run(factory);
    expect_identical_runs(got, ref, tag);
    expect_identical_verdicts(got, ref, params, tag);
  };
  check(BcastProtocol(params), make_protocol_factory<BcastProtocol>(params), 1,
        "bcast");
  check(RepeatProtocol(params, 6),
        make_protocol_factory<RepeatProtocol>(params, std::uint32_t{6}), 6,
        "repeat");
  check(PackProtocol(params, 6),
        make_protocol_factory<PackProtocol>(params, std::uint32_t{6}), 6, "pack");
  // PIPELINE-1 requires m <= lambda.
  check(Pipeline1Protocol(params, 2),
        make_protocol_factory<Pipeline1Protocol>(params, std::uint32_t{2}), 2,
        "pipeline1");
  check(Pipeline2Protocol(params, 6),
        make_protocol_factory<Pipeline2Protocol>(params, std::uint32_t{6}), 6,
        "pipeline2");
  check(DTreeProtocol(params, 2, 3),
        make_protocol_factory<DTreeProtocol>(params, std::uint32_t{2},
                                             std::uint64_t{3}),
        2, "dtree");
}

TEST_P(ParDifferential, FaultInjectedRunsAreByteIdentical) {
  const unsigned threads = GetParam();
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const std::uint64_t n = 8 + (seed % 3) * 12;
    const Rational lambda = seed % 2 == 0 ? Rational(2) : Rational(7, 2);
    const PostalParams params(n, lambda);
    RandomFaultOptions fopts;
    fopts.crashes = seed % 4;
    fopts.lossy_links = 4;
    fopts.loss_p = Rational(1, 3);
    fopts.spikes = seed % 3;
    const FaultPlan plan = random_fault_plan(params, seed, fopts);
    const std::string tag =
        "threads=" + std::to_string(threads) + " seed=" + std::to_string(seed);

    Machine machine(params, 1);
    machine.attach_faults(plan);
    BcastProtocol protocol(params);
    const MachineResult ref = machine.run(protocol);

    ParMachine par(params, 1);
    par.set_threads(threads);
    par.attach_faults(plan);
    auto factory = make_protocol_factory<BcastProtocol>(params);
    const MachineResult got = par.run(factory);

    expect_identical_runs(got, ref, tag);
    // The corpus stays on the lambda grid: the sharded engine must have
    // actually run, not fallen back.
    EXPECT_TRUE(par.last_run_info().parallel_engine) << tag;
  }
}

TEST_P(ParDifferential, RationalTimePathFallsBackToTheReferenceEngine) {
  const unsigned threads = GetParam();
  const PostalParams params(40, Rational(3, 2));
  Machine machine(params, 1);
  machine.set_time_path(TimePath::kRational);
  BcastProtocol protocol(params);
  const MachineResult ref = machine.run(protocol);

  ParMachine par(params, 1);
  par.set_threads(threads);
  par.set_time_path(TimePath::kRational);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult got = par.run(factory);

  expect_identical_runs(got, ref, "rational fallback");
  EXPECT_FALSE(par.last_run_info().parallel_engine);
  EXPECT_EQ(par.last_run_info().fallback_reason, "rational time path forced");
}

/// Arms one off-grid timer mid-run (delay 1/3 with q = 2). The sequential
/// Machine transplants to the Rational engine; ParMachine must rerun the
/// whole protocol sequentially and still match byte for byte.
class OffGridTimerProtocol final : public Protocol {
 public:
  explicit OffGridTimerProtocol(std::uint64_t n) : n_(n) {}

  void on_start(MachineContext& ctx) override {
    if (ctx.self() != 0) return;
    for (ProcId p = 1; p < n_; ++p) ctx.send(p, Packet{0, 0, 0});
    ctx.set_timer(Rational(1, 3), /*token=*/7);  // off the 1/2 grid
  }

  void on_receive(MachineContext& ctx, const Packet& packet) override {
    static_cast<void>(packet);
    if (ctx.self() == 1 && !echoed_) {
      echoed_ = true;
      ctx.send(0, Packet{0, 1, 0});
    }
  }

  void on_timer(MachineContext& ctx, std::uint64_t token) override {
    EXPECT_EQ(token, 7u);
    ctx.send(static_cast<ProcId>(n_ - 1), Packet{0, 2, 0});
  }

 private:
  std::uint64_t n_;
  bool echoed_ = false;
};

TEST_P(ParDifferential, OffGridTimerFallsBackToSequentialRerun) {
  const unsigned threads = GetParam();
  const PostalParams params(6, Rational(3, 2));
  Machine machine(params, 1);
  OffGridTimerProtocol protocol(6);
  const MachineResult ref = machine.run(protocol);

  ParMachine par(params, 1);
  par.set_threads(threads);
  auto factory = make_protocol_factory<OffGridTimerProtocol>(std::uint64_t{6});
  const MachineResult got = par.run(factory);

  expect_identical_runs(got, ref, "off-grid fallback");
  EXPECT_FALSE(par.last_run_info().parallel_engine);
  EXPECT_EQ(par.last_run_info().fallback_reason, "off-grid timer armed mid-run");
}

/// A timer-heavy protocol whose timers stay on-grid: every rank forwards a
/// token around a ring after a per-hop timer delay. Exercises in-window
/// live pushes (timers and input-port requeues) across many barriers.
class TimerRelayProtocol final : public Protocol {
 public:
  TimerRelayProtocol(std::uint64_t n, std::int64_t delay_num,
                     std::int64_t delay_den)
      : n_(n), delay_(delay_num, delay_den) {}

  void on_start(MachineContext& ctx) override {
    if (ctx.self() == 0 && n_ > 1) ctx.set_timer(delay_, 0);
  }

  void on_receive(MachineContext& ctx, const Packet& packet) override {
    if (packet.ctl_a < 3 * n_) ctx.set_timer(delay_, packet.ctl_a);
  }

  void on_timer(MachineContext& ctx, std::uint64_t token) override {
    const ProcId next = static_cast<ProcId>((ctx.self() + 1) % n_);
    if (next != ctx.self()) ctx.send(next, Packet{0, token + 1, 0});
  }

 private:
  std::uint64_t n_;
  Rational delay_;
};

TEST_P(ParDifferential, OnGridTimerRelayIsByteIdentical) {
  const unsigned threads = GetParam();
  for (const auto& [num, den] : {std::pair<std::int64_t, std::int64_t>{1, 2},
                                 {3, 1},
                                 {0, 1}}) {
    const PostalParams params(12, Rational(5, 2));
    const std::string tag = "threads=" + std::to_string(threads) + " delay=" +
                            Rational(num, den).str();
    Machine machine(params, 1);
    TimerRelayProtocol protocol(12, num, den);
    const MachineResult ref = machine.run(protocol);

    ParMachine par(params, 1);
    par.set_threads(threads);
    auto factory = make_protocol_factory<TimerRelayProtocol>(
        std::uint64_t{12}, num, den);
    const MachineResult got = par.run(factory);

    expect_identical_runs(got, ref, tag);
    EXPECT_TRUE(par.last_run_info().parallel_engine) << tag;
    EXPECT_GT(got.stats.timers_fired, 0u) << tag;
  }
}

/// TraceMode::kCounters must change exactly one thing: the delivery list
/// is empty. Schedule, stats, fault timeline, first arrivals, delivery
/// count, and makespan all stay byte-equal to the kFull reference --
/// fault-free and fault-injected, at every thread count.
TEST_P(ParDifferential, CountersModeMatchesFullModeSummaries) {
  const unsigned threads = GetParam();
  for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{9}}) {
    const std::uint64_t n = 48 + seed;
    const PostalParams params(n, Rational(5, 2));
    FaultPlan plan;
    if (seed != 0) {
      RandomFaultOptions fopts;
      fopts.crashes = 2;
      fopts.lossy_links = 4;
      fopts.loss_p = Rational(1, 3);
      fopts.spikes = 1;
      plan = random_fault_plan(params, seed, fopts);
    }
    const std::string tag =
        "threads=" + std::to_string(threads) + " seed=" + std::to_string(seed);

    ParMachine full(params, 1);
    full.set_threads(threads);
    if (!plan.empty()) full.attach_faults(plan);
    auto full_factory = make_protocol_factory<BcastProtocol>(params);
    const MachineResult ref = full.run(full_factory);

    ParMachine ctr(params, 1);
    ctr.set_threads(threads);
    ctr.set_trace_mode(TraceMode::kCounters);
    if (!plan.empty()) ctr.attach_faults(plan);
    auto ctr_factory = make_protocol_factory<BcastProtocol>(params);
    const MachineResult got = ctr.run(ctr_factory);

    EXPECT_EQ(got.trace.mode(), TraceMode::kCounters) << tag;
    EXPECT_TRUE(got.trace.deliveries().empty()) << tag;
    EXPECT_EQ(got.trace.delivery_count(), ref.trace.deliveries().size()) << tag;
    EXPECT_EQ(got.trace.makespan(), ref.trace.makespan()) << tag;
    for (ProcId p = 0; p < n; ++p) {
      EXPECT_EQ(got.trace.arrival(p, 0), ref.trace.arrival(p, 0)) << tag;
    }
    EXPECT_EQ(got.schedule.events(), ref.schedule.events()) << tag;
    EXPECT_EQ(got.stats.events_processed, ref.stats.events_processed) << tag;
    EXPECT_EQ(got.stats.sends_enqueued, ref.stats.sends_enqueued) << tag;
    EXPECT_EQ(got.stats.port_busy, ref.stats.port_busy) << tag;
    EXPECT_EQ(got.faults.events, ref.faults.events) << tag;
    EXPECT_EQ(ctr.last_run_info().trace_mode, TraceMode::kCounters) << tag;
    // The sequential Machine agrees on the elided summary too.
    Machine seq(params, 1);
    seq.set_trace_mode(TraceMode::kCounters);
    if (!plan.empty()) seq.attach_faults(plan);
    BcastProtocol protocol(params);
    const MachineResult seq_got = seq.run(protocol);
    EXPECT_TRUE(seq_got.trace.deliveries().empty()) << tag;
    EXPECT_EQ(seq_got.trace.delivery_count(), got.trace.delivery_count()) << tag;
    EXPECT_EQ(seq_got.trace.makespan(), got.trace.makespan()) << tag;
  }
}

/// The arena contract: run() twice on ONE ParMachine (buffers at their
/// high-water mark the second time) and every result must be byte-equal to
/// a fresh engine's -- randomized workloads including faults, plus the
/// zero-growth claim on the warm rerun of the identical workload.
TEST_P(ParDifferential, BufferReuseAcrossRunsIsByteIdentical) {
  const unsigned threads = GetParam();
  Xoshiro256 rng(0xBEEFu + threads);
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t n = rng.uniform(2, 96);
    const Rational lambda(static_cast<std::int64_t>(rng.uniform(2, 8)),
                          static_cast<std::int64_t>(rng.uniform(1, 2)));
    const PostalParams params(n, lambda);
    FaultPlan plan;
    if (i % 2 == 1) {
      RandomFaultOptions fopts;
      fopts.crashes = static_cast<std::uint64_t>(1 + (i % 3));
      fopts.lossy_links = 3;
      fopts.loss_p = Rational(1, 4);
      plan = random_fault_plan(params, 0x5EEDu + static_cast<unsigned>(i), fopts);
    }
    const std::string tag = "threads=" + std::to_string(threads) +
                            " i=" + std::to_string(i) +
                            " n=" + std::to_string(n);

    const auto fresh_run = [&] {
      ParMachine fresh(params, 1);
      fresh.set_threads(threads);
      if (!plan.empty()) fresh.attach_faults(plan);
      auto factory = make_protocol_factory<BcastProtocol>(params);
      return fresh.run(factory);
    };
    const MachineResult ref = fresh_run();

    ParMachine reused(params, 1);
    reused.set_threads(threads);
    if (!plan.empty()) reused.attach_faults(plan);
    auto factory = make_protocol_factory<BcastProtocol>(params);
    const MachineResult first = reused.run(factory);
    expect_identical_runs(first, ref, tag + " cold");
    const MachineResult second = reused.run(factory);
    expect_identical_runs(second, ref, tag + " warm");
    if (reused.last_run_info().parallel_engine) {
      // Same workload, warmed buffers: the steady state allocates nothing.
      EXPECT_EQ(reused.last_run_info().arena_growths, 0u) << tag;
    }
    const MachineResult third = fresh_run();
    expect_identical_runs(third, ref, tag + " fresh-after");
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParDifferential,
                         ::testing::ValuesIn(thread_counts()));

}  // namespace
}  // namespace postal
