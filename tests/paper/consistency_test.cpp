// Cross-component consistency properties: independent implementations in
// different modules must agree wherever their domains overlap.
#include <gtest/gtest.h>

#include "adaptive/hetero.hpp"
#include "adaptive/hierarchical.hpp"
#include "adaptive/time_varying.hpp"
#include "model/genfib.hpp"
#include "net/calibrate.hpp"
#include "sched/bcast.hpp"
#include "sched/kported.hpp"
#include "sched/pipeline.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(Consistency, HeteroSimulatorAgreesWithHomogeneousValidator) {
  // On a uniform matrix, simulate_hetero and validate_schedule must agree
  // on validity and completion for any single-message schedule.
  Xoshiro256 rng(55);
  for (const Rational lambda : {Rational(2), Rational(5, 2)}) {
    const PostalParams params(16, lambda);
    const HeteroLatency lat = HeteroLatency::uniform(16, lambda);
    const Schedule good = bcast_schedule(params);
    const SimReport homo = validate_schedule(good, params);
    const HeteroSimReport hetero = simulate_hetero(good, lat);
    ASSERT_TRUE(homo.ok);
    ASSERT_TRUE(hetero.ok);
    EXPECT_EQ(homo.makespan, hetero.completion);
    // And on random mutants, the accept/reject verdicts coincide.
    for (int trial = 0; trial < 40; ++trial) {
      Schedule mutant;
      const std::size_t victim = rng.uniform(0, good.size() - 1);
      for (std::size_t i = 0; i < good.size(); ++i) {
        SendEvent e = good.events()[i];
        if (i == victim) {
          const auto k = static_cast<std::int64_t>(rng.uniform(0, 6));
          const Rational delta(k - 3, 2);
          if (e.t + delta >= Rational(0)) e.t += delta;
        }
        mutant.add(e);
      }
      EXPECT_EQ(validate_schedule(mutant, params).ok, simulate_hetero(mutant, lat).ok)
          << "trial=" << trial;
    }
  }
}

TEST(Consistency, TwoLevelSimulatorAgreesOnUniformLatency) {
  const TwoLevelParams two{20, 5, Rational(3), Rational(3)};
  const PostalParams params(20, Rational(3));
  const Schedule s = bcast_schedule(params);
  const HeteroReport a = simulate_two_level(s, two);
  const SimReport b = validate_schedule(s, params);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.completion, b.makespan);
}

TEST(Consistency, AdaptiveConstantProfileMatchesScheduleGenerator) {
  // adaptive_broadcast on a constant profile must produce the exact BCAST
  // schedule (not just the same completion).
  for (const Rational lambda : {Rational(2), Rational(5, 2), Rational(4)}) {
    const AdaptiveRunResult run = adaptive_broadcast(
        30, LatencyProfile::constant(lambda), AdaptPolicy::kStatic);
    const Schedule expected = bcast_schedule(PostalParams(30, lambda));
    EXPECT_EQ(run.schedule.events(), expected.events()) << "lambda=" << lambda.str();
  }
}

TEST(Consistency, KPortedValidatorAgreesWithSinglePortValidatorAtKOne) {
  Xoshiro256 rng(66);
  const PostalParams params(14, Rational(5, 2));
  const Schedule good = bcast_schedule(params);
  for (int trial = 0; trial < 40; ++trial) {
    Schedule mutant;
    const std::size_t victim = rng.uniform(0, good.size() - 1);
    for (std::size_t i = 0; i < good.size(); ++i) {
      SendEvent e = good.events()[i];
      if (i == victim) {
        const auto k = static_cast<std::int64_t>(rng.uniform(0, 4));
        const Rational delta(k - 2, 2);
        if (e.t + delta >= Rational(0)) e.t += delta;
      }
      mutant.add(e);
    }
    EXPECT_EQ(validate_schedule(mutant, params).ok,
              validate_kported(mutant, params, 1).ok)
        << "trial=" << trial;
  }
}

TEST(Consistency, PipelineReplaysExactlyOnPostalEquivalentNetwork) {
  // A multi-message PIPELINE schedule must transfer exactly to a complete
  // graph configured to realize the postal model (as E13 shows for BCAST).
  const Rational lambda(4);
  const PostalParams params(12, lambda);
  const std::uint64_t m = 6;
  const Schedule schedule = pipeline_schedule(params, m);
  NetConfig config;  // send = recv = wire = 1; prop = lambda - 3
  PacketNetwork net(Topology::complete(12, lambda - Rational(3)), config);
  const ReplayReport report =
      replay_schedule(net, schedule, predict_pipeline(lambda, 12, m));
  EXPECT_EQ(report.observed, report.predicted);
  EXPECT_EQ(report.deliveries, schedule.size());
}

TEST(Consistency, EveryMultiAlgoReplaysWithinItsPredictionOnTheWire) {
  // On the postal-equivalent network, no algorithm may finish *later* than
  // its postal prediction (earlier is impossible too, but exactness for
  // expanded multi-message receive patterns is the claim).
  const Rational lambda(4);
  const PostalParams params(10, lambda);
  NetConfig config;  // send + wire + prop + recv = 1+1+1+1 = lambda
  for (const MultiAlgo algo : all_multi_algos()) {
    PacketNetwork net(Topology::complete(10, lambda - Rational(3)), config);
    const Schedule schedule = make_multi_schedule(algo, params, 4);
    const ReplayReport report =
        replay_schedule(net, schedule, predict_multi(algo, params, 4));
    EXPECT_EQ(report.observed, report.predicted) << algo_name(algo);
  }
}

}  // namespace
}  // namespace postal
