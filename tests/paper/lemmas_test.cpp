// End-to-end reproduction tests for the paper's numbered results, one test
// (or parameterized sweep) per lemma/theorem, checked through the full
// pipeline: algorithm generator -> postal-model validator -> exact rational
// comparison with the closed form.
//
//   Lemma 3/4 + Theorem 6 ... BCAST correctness, T_B = f_lambda(n)
//   Lemma 8 ................. universal lower bound (m-1) + f_lambda(n)
//   Lemma 10 ................ REPEAT   = m f(n) - (m-1)(lambda-1)
//   Lemma 12 ................ PACK     = m f_{1+(lambda-1)/m}(n)
//   Lemma 14 ................ PIPELINE-1 = m f_{lambda/m}(n) + (m-1)
//   Lemma 16 ................ PIPELINE-2 = lambda f_{m/lambda}(n) + (lambda-1)
//   Lemma 18 ................ DTREE <= d(m-1) + (d-1+lambda) ceil(log_d n)
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "model/bounds.hpp"
#include "sched/dtree.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"

namespace postal {
namespace {

struct GridCase {
  std::uint64_t n;
  std::uint64_t m;
  Rational lambda;
};

std::vector<GridCase> dense_grid() {
  std::vector<GridCase> cases;
  const Rational lambdas[] = {Rational(1),     Rational(3, 2), Rational(2),
                              Rational(5, 2),  Rational(3),    Rational(4),
                              Rational(13, 4), Rational(8)};
  const std::uint64_t ns[] = {2, 3, 5, 8, 14, 27, 64, 120};
  const std::uint64_t ms[] = {1, 2, 3, 5, 8, 13};
  for (const Rational& lambda : lambdas) {
    for (const std::uint64_t n : ns) {
      for (const std::uint64_t m : ms) {
        cases.push_back(GridCase{n, m, lambda});
      }
    }
  }
  return cases;
}

class PaperGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(PaperGrid, EveryAlgorithmValidOrderPreservingExactAndAboveLemma8) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  GenFib fib(lambda);
  const Rational lower = lemma8_lower(fib, n, m);

  for (const MultiAlgo algo : all_multi_algos()) {
    const Schedule s = make_multi_schedule(algo, params, m);
    ValidatorOptions options;
    options.messages = static_cast<std::uint32_t>(m);
    const SimReport report = validate_schedule(s, params, options);
    ASSERT_TRUE(report.ok) << algo_name(algo) << ": " << report.summary();
    EXPECT_TRUE(report.order_preserving) << algo_name(algo);
    // Simulated completion equals the library's closed-form prediction.
    EXPECT_EQ(report.makespan, predict_multi(algo, params, m)) << algo_name(algo);
    // Lemma 8: nothing beats (m-1) + f_lambda(n).
    EXPECT_GE(report.makespan, lower) << algo_name(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(DenseGrid, PaperGrid, ::testing::ValuesIn(dense_grid()),
                         [](const ::testing::TestParamInfo<GridCase>& pinfo) {
                           return "n" + std::to_string(pinfo.param.n) + "_m" +
                                  std::to_string(pinfo.param.m) + "_lam" +
                                  std::to_string(pinfo.param.lambda.num()) + "_" +
                                  std::to_string(pinfo.param.lambda.den());
                         });

TEST(PaperLemmas, Lemma18BoundsEveryDTreeDegree) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    for (const std::uint64_t n : {5ULL, 17ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 4ULL, 9ULL}) {
        for (std::uint64_t d = 1; d <= n - 1; ++d) {
          EXPECT_LE(predict_dtree(params, m, d),
                    lemma18_dtree_upper(lambda, n, m, d))
              << "n=" << n << " m=" << m << " d=" << d
              << " lambda=" << lambda.str();
        }
      }
    }
  }
}

}  // namespace
}  // namespace postal
