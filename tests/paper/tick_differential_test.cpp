// The tick-domain differential gate (docs/PERFORMANCE.md): every hot loop
// that grew an int64 fast path must be *byte-identical* to its Rational
// reference on randomized corpora -- same events, same makespans, same
// validator verdicts and violation strings, same fault timelines. The two
// engines share the TimePath knob; kAuto takes the tick path whenever the
// run is exactly representable, kRational forces the reference, and this
// file asserts the outputs cannot be told apart:
//
//   * dp table / greedy search      (src/brute/optimal_search)
//   * BCAST schedule emission       (src/sched/bcast)
//   * the schedule validator        (src/sim/validator), incl. violation
//                                   strings on deliberately broken input
//   * the event-driven Machine      (src/sim/machine), incl. fault plans
//                                   from random_fault_plan and the
//                                   off-grid-timer mid-run transplant
//   * the reliable broadcast        (sim/protocols/reliable_bcast) under
//                                   chaos-style crash+loss storms
//   * the packet network            (src/net/packet_sim), jitter and all
//   * the sweep engine              (src/par/sweep)
//
// scripts/check.sh --sanitize re-runs this binary under TSan and under
// ASan+UBSan.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "brute/optimal_search.hpp"
#include "faults/fault_plan.hpp"
#include "net/packet_sim.hpp"
#include "par/sweep.hpp"
#include "sched/bcast.hpp"
#include "sim/machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/protocols/multi_protocols.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"

namespace postal {
namespace {

struct RandomPair {
  std::uint64_t n;
  Rational lambda;
};

std::vector<RandomPair> random_pairs(std::uint64_t seed, std::size_t count) {
  Xoshiro256 rng(seed);
  std::vector<RandomPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const std::uint64_t n = rng.uniform(1, 192);
    const std::uint64_t q = rng.uniform(1, 4);
    const std::uint64_t p = rng.uniform(q, 8 * q);  // lambda = p/q in [1, 8]
    pairs.push_back({n, Rational(static_cast<std::int64_t>(p),
                                 static_cast<std::int64_t>(q))});
  }
  return pairs;
}

/// Everything a MachineResult exposes must match except the engine flag.
void expect_identical_runs(const MachineResult& tick, const MachineResult& ref,
                           const std::string& tag) {
  EXPECT_EQ(tick.schedule.events(), ref.schedule.events()) << tag;
  EXPECT_EQ(tick.trace.deliveries(), ref.trace.deliveries()) << tag;
  EXPECT_EQ(tick.stats.events_processed, ref.stats.events_processed) << tag;
  EXPECT_EQ(tick.stats.sends_enqueued, ref.stats.sends_enqueued) << tag;
  EXPECT_EQ(tick.stats.sends_deferred, ref.stats.sends_deferred) << tag;
  EXPECT_EQ(tick.stats.timers_set, ref.stats.timers_set) << tag;
  EXPECT_EQ(tick.stats.timers_fired, ref.stats.timers_fired) << tag;
  EXPECT_EQ(tick.stats.receives_queued, ref.stats.receives_queued) << tag;
  EXPECT_EQ(tick.stats.max_fifo_depth, ref.stats.max_fifo_depth) << tag;
  EXPECT_EQ(tick.stats.port_busy, ref.stats.port_busy) << tag;
  EXPECT_EQ(tick.faults.crashes_applied, ref.faults.crashes_applied) << tag;
  EXPECT_EQ(tick.faults.sends_suppressed, ref.faults.sends_suppressed) << tag;
  EXPECT_EQ(tick.faults.drops_crash, ref.faults.drops_crash) << tag;
  EXPECT_EQ(tick.faults.drops_loss, ref.faults.drops_loss) << tag;
  EXPECT_EQ(tick.faults.spikes_applied, ref.faults.spikes_applied) << tag;
  EXPECT_EQ(tick.faults.events, ref.faults.events) << tag;
}

void expect_identical_reports(const SimReport& tick, const SimReport& ref,
                              const std::string& tag) {
  EXPECT_EQ(tick.ok, ref.ok) << tag;
  EXPECT_EQ(tick.violations, ref.violations) << tag;
  EXPECT_EQ(tick.makespan, ref.makespan) << tag;
  EXPECT_EQ(tick.order_preserving, ref.order_preserving) << tag;
  EXPECT_EQ(tick.trace.deliveries(), ref.trace.deliveries()) << tag;
}

TEST(TickDifferential, DpTableAndGreedyMatchTheRationalReference) {
  for (const RandomPair& pair : random_pairs(0x71C5u, 60)) {
    const std::string tag =
        "n=" + std::to_string(pair.n) + " lambda=" + pair.lambda.str();
    EXPECT_EQ(optimal_broadcast_dp(pair.n, pair.lambda, TimePath::kAuto),
              optimal_broadcast_dp(pair.n, pair.lambda, TimePath::kRational))
        << tag;
    EXPECT_EQ(optimal_broadcast_greedy(pair.n, pair.lambda, TimePath::kAuto),
              optimal_broadcast_greedy(pair.n, pair.lambda, TimePath::kRational))
        << tag;
    EXPECT_EQ(optimal_broadcast_dp_table(pair.n, pair.lambda, TimePath::kAuto),
              optimal_broadcast_dp_table(pair.n, pair.lambda, TimePath::kRational))
        << tag;
  }
}

TEST(TickDifferential, BcastScheduleMatchesTheRationalEmit) {
  for (const RandomPair& pair : random_pairs(0xBCA57u, 60)) {
    const PostalParams params(pair.n, pair.lambda);
    GenFib fib(pair.lambda);
    const Schedule dispatched = bcast_schedule(params, fib);
    Schedule reference;
    bcast_emit(reference, fib, /*base=*/0, pair.n, Rational(0), /*msg=*/0);
    reference.sort();
    EXPECT_EQ(dispatched.events(), reference.events())
        << "n=" << pair.n << " lambda=" << pair.lambda;
  }
}

TEST(TickDifferential, ValidatorReportsAreIdenticalOnValidSchedules) {
  for (const RandomPair& pair : random_pairs(0x7A11Du, 40)) {
    const PostalParams params(pair.n, pair.lambda);
    const Schedule schedule = bcast_schedule(params);
    ValidatorOptions tick_opts;
    ValidatorOptions ref_opts;
    ref_opts.time_path = TimePath::kRational;
    const SimReport tick = validate_schedule(schedule, params, tick_opts);
    const SimReport ref = validate_schedule(schedule, params, ref_opts);
    const std::string tag =
        "n=" + std::to_string(pair.n) + " lambda=" + pair.lambda.str();
    expect_identical_reports(tick, ref, tag);
    EXPECT_TRUE(tick.tick_domain) << tag;  // small grids must take the fast path
    EXPECT_FALSE(ref.tick_domain) << tag;
  }
}

TEST(TickDifferential, ValidatorViolationStringsAreIdenticalOnBrokenSchedules) {
  for (const RandomPair& pair : random_pairs(0xBAD5Du, 30)) {
    if (pair.n < 3) continue;
    const PostalParams params(pair.n, pair.lambda);
    Schedule broken = bcast_schedule(params);
    // Port clash: duplicate the first event (same sender, same start).
    const SendEvent first = broken.events().front();
    broken.add(first.src, first.dst, first.msg, first.t);
    // Causality breach: a processor that holds nothing at t=0 sends at t=0.
    broken.add(static_cast<ProcId>(pair.n - 1), 0, 0, Rational(0));
    broken.sort();
    ValidatorOptions tick_opts;
    ValidatorOptions ref_opts;
    ref_opts.time_path = TimePath::kRational;
    const SimReport tick = validate_schedule(broken, params, tick_opts);
    const SimReport ref = validate_schedule(broken, params, ref_opts);
    const std::string tag =
        "n=" + std::to_string(pair.n) + " lambda=" + pair.lambda.str();
    EXPECT_FALSE(ref.ok) << tag;
    expect_identical_reports(tick, ref, tag);
  }
}

TEST(TickDifferential, MachineBcastRunsAreByteIdentical) {
  for (const RandomPair& pair : random_pairs(0x3AC41u, 30)) {
    const PostalParams params(pair.n, pair.lambda);
    Machine tick_machine(params, 1);
    BcastProtocol tick_protocol(params);
    const MachineResult tick = tick_machine.run(tick_protocol);
    Machine ref_machine(params, 1);
    ref_machine.set_time_path(TimePath::kRational);
    BcastProtocol ref_protocol(params);
    const MachineResult ref = ref_machine.run(ref_protocol);
    const std::string tag =
        "n=" + std::to_string(pair.n) + " lambda=" + pair.lambda.str();
    expect_identical_runs(tick, ref, tag);
    EXPECT_TRUE(tick.stats.tick_domain) << tag;
    EXPECT_FALSE(ref.stats.tick_domain) << tag;
  }
}

TEST(TickDifferential, MachineMultiMessageProtocolsAreByteIdentical) {
  const PostalParams params(24, Rational(5, 2));
  const auto run_both = [&](auto make_protocol, std::uint32_t m,
                            const std::string& tag) {
    Machine tick_machine(params, m);
    auto tick_protocol = make_protocol(m);
    const MachineResult tick = tick_machine.run(tick_protocol);
    Machine ref_machine(params, m);
    ref_machine.set_time_path(TimePath::kRational);
    auto ref_protocol = make_protocol(m);
    const MachineResult ref = ref_machine.run(ref_protocol);
    expect_identical_runs(tick, ref, tag);
    EXPECT_TRUE(tick.stats.tick_domain) << tag;
  };
  run_both([&](std::uint32_t m) { return RepeatProtocol(params, m); }, 6, "repeat");
  run_both([&](std::uint32_t m) { return PackProtocol(params, m); }, 6, "pack");
  // PIPELINE-1 requires m <= lambda.
  run_both([&](std::uint32_t m) { return Pipeline1Protocol(params, m); }, 2,
           "pipeline1");
  run_both([&](std::uint32_t m) { return Pipeline2Protocol(params, m); }, 6,
           "pipeline2");
}

TEST(TickDifferential, FaultInjectedMachineRunsAreByteIdentical) {
  // Crash + loss + spike storms from random_fault_plan: the tick engine
  // must reproduce the Rational fault timeline event for event (loss draws
  // consume per-link PRNG state, so even the *order* of checks matters).
  std::uint64_t tick_runs = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const std::uint64_t n = 8 + (seed % 3) * 12;
    const Rational lambda = seed % 2 == 0 ? Rational(2) : Rational(7, 2);
    const PostalParams params(n, lambda);
    RandomFaultOptions fopts;
    fopts.crashes = seed % 4;
    fopts.lossy_links = 4;
    fopts.loss_p = Rational(1, 3);
    fopts.spikes = seed % 3;
    const FaultPlan plan = random_fault_plan(params, seed, fopts);

    Machine tick_machine(params, 1);
    tick_machine.attach_faults(plan);
    BcastProtocol tick_protocol(params);
    const MachineResult tick = tick_machine.run(tick_protocol);

    Machine ref_machine(params, 1);
    ref_machine.set_time_path(TimePath::kRational);
    ref_machine.attach_faults(plan);
    BcastProtocol ref_protocol(params);
    const MachineResult ref = ref_machine.run(ref_protocol);

    expect_identical_runs(tick, ref, "seed " + std::to_string(seed));
    if (tick.stats.tick_domain) ++tick_runs;
  }
  // random_fault_plan keeps crash times on the lambda grid, so the fast
  // path must actually engage on these runs -- no silent fallback.
  EXPECT_EQ(tick_runs, 24u);
}

/// Arms one off-grid timer (delay 1/3 with q = 2) mid-run, forcing the
/// tick engine to transplant its pending events into the Rational queue.
class OffGridTimerProtocol final : public Protocol {
 public:
  explicit OffGridTimerProtocol(std::uint64_t n) : n_(n) {}

  void on_start(MachineContext& ctx) override {
    if (ctx.self() != 0) return;
    for (ProcId p = 1; p < n_; ++p) ctx.send(p, Packet{0, 0, 0});
    ctx.set_timer(Rational(1, 3), /*token=*/7);  // off the 1/2 grid
  }

  void on_receive(MachineContext& ctx, const Packet& packet) override {
    static_cast<void>(packet);
    if (ctx.self() == 1 && !echoed_) {
      echoed_ = true;
      ctx.send(0, Packet{0, 1, 0});
    }
  }

  void on_timer(MachineContext& ctx, std::uint64_t token) override {
    EXPECT_EQ(token, 7u);
    EXPECT_EQ(ctx.now(), Rational(1, 3));
    // Post-transplant traffic: must interleave exactly as in the pure
    // Rational run.
    ctx.send(static_cast<ProcId>(n_ - 1), Packet{0, 2, 0});
  }

 private:
  std::uint64_t n_;
  bool echoed_ = false;
};

TEST(TickDifferential, OffGridTimerTransplantsExactlyMidRun) {
  const PostalParams params(6, Rational(3, 2));
  Machine tick_machine(params, 1);
  OffGridTimerProtocol tick_protocol(6);
  const MachineResult tick = tick_machine.run(tick_protocol);
  Machine ref_machine(params, 1);
  ref_machine.set_time_path(TimePath::kRational);
  OffGridTimerProtocol ref_protocol(6);
  const MachineResult ref = ref_machine.run(ref_protocol);
  expect_identical_runs(tick, ref, "off-grid transplant");
  // The run *started* on ticks but cannot have finished there.
  EXPECT_FALSE(tick.stats.tick_domain);
  EXPECT_GT(tick.stats.timers_fired, 0u);
}

TEST(TickDifferential, ReliableBcastChaosRunsAreIdentical) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const std::uint64_t n = 6 + (seed % 4) * 7;
    const Rational lambda = seed % 2 == 0 ? Rational(1) : Rational(5, 2);
    const PostalParams params(n, lambda);
    RandomFaultOptions fopts;
    fopts.crashes = seed % 3;
    fopts.lossy_links = 3;
    fopts.loss_p = Rational(1, 2);
    fopts.max_losses = 3;
    const FaultPlan plan = random_fault_plan(params, seed, fopts);

    ReliableBcastOptions tick_opts;
    ReliableBcastOptions ref_opts;
    ref_opts.time_path = TimePath::kRational;
    const ReliableBcastReport tick = run_reliable_bcast(params, &plan, tick_opts);
    const ReliableBcastReport ref = run_reliable_bcast(params, &plan, ref_opts);

    const std::string tag = "seed " + std::to_string(seed);
    expect_identical_runs(tick.result, ref.result, tag);
    EXPECT_EQ(tick.completion, ref.completion) << tag;
    EXPECT_EQ(tick.covered, ref.covered) << tag;
    EXPECT_EQ(tick.uncovered_alive, ref.uncovered_alive) << tag;
    EXPECT_EQ(tick.counters.data_sends, ref.counters.data_sends) << tag;
    EXPECT_EQ(tick.counters.retransmissions, ref.counters.retransmissions) << tag;
    EXPECT_EQ(tick.counters.acks_sent, ref.counters.acks_sent) << tag;
    EXPECT_EQ(tick.counters.acks_received, ref.counters.acks_received) << tag;
    EXPECT_EQ(tick.counters.timeouts, ref.counters.timeouts) << tag;
    EXPECT_EQ(tick.counters.dead_declared, ref.counters.dead_declared) << tag;
    EXPECT_EQ(tick.counters.repairs, ref.counters.repairs) << tag;
    expect_identical_reports(tick.validation, ref.validation, tag);
  }
}

void expect_identical_net_runs(const std::vector<NetDelivery>& tick,
                               const NetRunStats& tick_stats,
                               const std::vector<NetDelivery>& ref,
                               const NetRunStats& ref_stats,
                               const std::string& tag) {
  ASSERT_EQ(tick.size(), ref.size()) << tag;
  for (std::size_t i = 0; i < tick.size(); ++i) {
    EXPECT_EQ(tick[i].src, ref[i].src) << tag << " #" << i;
    EXPECT_EQ(tick[i].dst, ref[i].dst) << tag << " #" << i;
    EXPECT_EQ(tick[i].msg, ref[i].msg) << tag << " #" << i;
    EXPECT_EQ(tick[i].requested, ref[i].requested) << tag << " #" << i;
    EXPECT_EQ(tick[i].delivered, ref[i].delivered) << tag << " #" << i;
  }
  EXPECT_EQ(tick_stats.packets_delivered, ref_stats.packets_delivered) << tag;
  EXPECT_EQ(tick_stats.hops_total, ref_stats.hops_total) << tag;
  EXPECT_EQ(tick_stats.jitter_draws, ref_stats.jitter_draws) << tag;
  EXPECT_EQ(tick_stats.egress_busy_total, ref_stats.egress_busy_total) << tag;
  EXPECT_EQ(tick_stats.ingress_busy_total, ref_stats.ingress_busy_total) << tag;
  EXPECT_EQ(tick_stats.makespan, ref_stats.makespan) << tag;
  ASSERT_EQ(tick_stats.wires.size(), ref_stats.wires.size()) << tag;
  for (std::size_t i = 0; i < tick_stats.wires.size(); ++i) {
    EXPECT_EQ(tick_stats.wires[i].from, ref_stats.wires[i].from) << tag;
    EXPECT_EQ(tick_stats.wires[i].to, ref_stats.wires[i].to) << tag;
    EXPECT_EQ(tick_stats.wires[i].packets, ref_stats.wires[i].packets) << tag;
    EXPECT_EQ(tick_stats.wires[i].busy, ref_stats.wires[i].busy) << tag;
  }
  EXPECT_EQ(tick_stats.faults.events, ref_stats.faults.events) << tag;
}

TEST(TickDifferential, PacketNetworkRunsAreByteIdentical) {
  const PostalParams params(16, Rational(2));
  const Schedule traffic = bcast_schedule(params);
  const struct {
    Switching switching;
    Rational jitter;
    const char* tag;
  } cases[] = {
      {Switching::kStoreAndForward, Rational(0), "saf"},
      {Switching::kStoreAndForward, Rational(1, 2), "saf+jitter"},
      {Switching::kCutThrough, Rational(1, 4), "cut+jitter"},
  };
  for (const auto& c : cases) {
    for (int topo = 0; topo < 2; ++topo) {
      NetConfig config;
      config.send_overhead = Rational(1);
      config.recv_overhead = Rational(1, 2);
      config.wire_time = Rational(3, 4);
      config.header_time = Rational(1, 4);
      config.jitter_max = c.jitter;
      config.switching = c.switching;
      const Topology topology = topo == 0
                                    ? Topology::complete(16, Rational(1, 4))
                                    : Topology::mesh2d(4, 4, Rational(1, 4));
      const std::string tag = std::string(c.tag) + (topo == 0 ? "/complete" : "/mesh");

      PacketNetwork tick_net(topology, config);
      tick_net.submit_schedule(traffic);
      const std::vector<NetDelivery> tick = tick_net.run();
      EXPECT_TRUE(tick_net.last_run_stats().tick_domain) << tag;

      config.time_path = TimePath::kRational;
      PacketNetwork ref_net(topology, config);
      ref_net.submit_schedule(traffic);
      const std::vector<NetDelivery> ref = ref_net.run();
      EXPECT_FALSE(ref_net.last_run_stats().tick_domain) << tag;

      expect_identical_net_runs(tick, tick_net.last_run_stats(), ref,
                                ref_net.last_run_stats(), tag);
    }
  }
}

TEST(TickDifferential, FaultedPacketNetworkRunsAreByteIdentical) {
  const PostalParams params(12, Rational(3, 2));
  const Schedule traffic = bcast_schedule(params);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomFaultOptions fopts;
    fopts.crashes = seed % 3;
    fopts.lossy_links = 3;
    fopts.loss_p = Rational(1, 4);
    fopts.spikes = seed % 2;
    const FaultPlan plan = random_fault_plan(params, seed, fopts);
    NetConfig config;
    config.recv_overhead = Rational(1, 2);

    PacketNetwork tick_net(Topology::mesh2d(3, 4, Rational(1, 2)), config);
    tick_net.attach_faults(plan);
    tick_net.submit_schedule(traffic);
    const std::vector<NetDelivery> tick = tick_net.run();

    config.time_path = TimePath::kRational;
    PacketNetwork ref_net(Topology::mesh2d(3, 4, Rational(1, 2)), config);
    ref_net.attach_faults(plan);
    ref_net.submit_schedule(traffic);
    const std::vector<NetDelivery> ref = ref_net.run();

    expect_identical_net_runs(tick, tick_net.last_run_stats(), ref,
                              ref_net.last_run_stats(),
                              "seed " + std::to_string(seed));
  }
}

TEST(TickDifferential, SweepResultsAreTimePathInvariant) {
  const std::vector<std::uint64_t> ns = {1, 2, 7, 16, 33, 64};
  const std::vector<Rational> lambdas = {Rational(1), Rational(3, 2),
                                         Rational(5, 2), Rational(4)};
  par::SweepOptions tick_opts;
  tick_opts.threads = 1;
  par::SweepOptions ref_opts;
  ref_opts.threads = 1;
  ref_opts.time_path = TimePath::kRational;
  const auto tick = par::sweep_grid(ns, lambdas, tick_opts);
  const auto ref = par::sweep_grid(ns, lambdas, ref_opts);
  EXPECT_TRUE(par::sweep_results_equal_ignoring_wall(tick, ref));
  for (const par::SweepPointResult& r : tick) {
    EXPECT_TRUE(r.ok) << "n=" << r.n << " lambda=" << r.lambda;
  }
}

}  // namespace
}  // namespace postal
