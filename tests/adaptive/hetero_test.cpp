// Tests for the fully heterogeneous latency extension: matrix builders,
// the per-pair simulator, and the earliest-arrival greedy planner.
#include "adaptive/hetero.hpp"

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(HeteroLatency, ValidatesMatrix) {
  EXPECT_NO_THROW(HeteroLatency::uniform(4, Rational(2)));
  // off-diagonal < 1 rejected
  std::vector<Rational> bad(4, Rational(1));
  bad[1] = Rational(1, 2);
  EXPECT_THROW(HeteroLatency(2, bad), InvalidArgument);
  // wrong size rejected
  EXPECT_THROW(HeteroLatency(3, std::vector<Rational>(4, Rational(1))),
               InvalidArgument);
}

TEST(HeteroLatency, TwoLevelBuilder) {
  const HeteroLatency lat = HeteroLatency::two_level(8, 4, Rational(1), Rational(5));
  EXPECT_EQ(lat.lambda(0, 3), Rational(1));
  EXPECT_EQ(lat.lambda(0, 4), Rational(5));
  EXPECT_EQ(lat.lambda(7, 4), Rational(1));
  EXPECT_EQ(lat.max_lambda(), Rational(5));
}

TEST(HeteroLatency, RandomIsSymmetricBoundedDeterministic) {
  const HeteroLatency a = HeteroLatency::random(10, Rational(1), Rational(4), 7);
  const HeteroLatency b = HeteroLatency::random(10, Rational(1), Rational(4), 7);
  for (ProcId x = 0; x < 10; ++x) {
    for (ProcId y = 0; y < 10; ++y) {
      if (x == y) continue;
      EXPECT_EQ(a.lambda(x, y), a.lambda(y, x));
      EXPECT_EQ(a.lambda(x, y), b.lambda(x, y));
      EXPECT_GE(a.lambda(x, y), Rational(1));
      EXPECT_LE(a.lambda(x, y), Rational(4));
    }
  }
}

TEST(HeteroLatency, SelfLatencyRejected) {
  const HeteroLatency lat = HeteroLatency::uniform(4, Rational(2));
  POSTAL_EXPECT_THROW(lat.lambda(1, 1), InvalidArgument);
}

TEST(HeteroSim, RejectsUninformedSender) {
  const HeteroLatency lat = HeteroLatency::uniform(3, Rational(2));
  Schedule s;
  s.add(1, 2, 0, Rational(0));
  s.add(0, 1, 0, Rational(0));
  const HeteroSimReport report = simulate_hetero(s, lat);
  EXPECT_FALSE(report.ok);
}

TEST(HeteroGreedy, UniformMatrixRecoversOptimalTime) {
  // On a uniform matrix the greedy planner must hit f_lambda(n) exactly
  // (it reproduces the "everyone sends every unit" frontier).
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 14ULL, 40ULL}) {
      const HeteroLatency lat = HeteroLatency::uniform(n, lambda);
      const Schedule s = hetero_greedy_broadcast(lat);
      const HeteroSimReport report = simulate_hetero(s, lat);
      ASSERT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
      EXPECT_EQ(report.completion, fib.f(n))
          << "n=" << n << " lambda=" << lambda.str();
    }
  }
}

TEST(HeteroGreedy, BeatsConservativeOnTwoLevel) {
  const HeteroLatency lat = HeteroLatency::two_level(32, 8, Rational(1), Rational(8));
  const HeteroSimReport greedy = simulate_hetero(hetero_greedy_broadcast(lat), lat);
  const HeteroSimReport conservative =
      simulate_hetero(hetero_conservative_broadcast(lat), lat);
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(conservative.ok);
  EXPECT_LT(greedy.completion, conservative.completion);
}

TEST(HeteroGreedy, ValidOnRandomMatrices) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const HeteroLatency lat = HeteroLatency::random(24, Rational(1), Rational(6), seed);
    const Schedule s = hetero_greedy_broadcast(lat);
    const HeteroSimReport report = simulate_hetero(s, lat);
    ASSERT_TRUE(report.ok) << "seed=" << seed << ": "
                           << (report.violations.empty() ? "" : report.violations[0]);
    // Everyone informed exactly once.
    EXPECT_EQ(s.size(), 23u);
    // Never slower than the conservative uniform plan.
    const HeteroSimReport conservative =
        simulate_hetero(hetero_conservative_broadcast(lat), lat);
    ASSERT_TRUE(conservative.ok);
    EXPECT_LE(report.completion, conservative.completion) << "seed=" << seed;
  }
}

TEST(HeteroGreedy, SingleProcessorDegenerate) {
  const HeteroLatency lat = HeteroLatency::uniform(1, Rational(2));
  EXPECT_TRUE(hetero_greedy_broadcast(lat).empty());
}

TEST(HeteroGreedy, NeverBelowUniformLowerBoundOfMinLatency) {
  // Sanity: completion can't beat f_{lambda_min}(n) (relaxing every edge
  // to the cheapest latency only helps).
  const HeteroLatency lat = HeteroLatency::random(20, Rational(2), Rational(5), 3);
  const HeteroSimReport report = simulate_hetero(hetero_greedy_broadcast(lat), lat);
  ASSERT_TRUE(report.ok);
  GenFib fib(Rational(2));
  EXPECT_GE(report.completion, fib.f(20));
}

}  // namespace
}  // namespace postal
