// Tests for the Section 5 extensions: the EWMA latency estimator,
// broadcasting under time-varying lambda, and the two-level hierarchical
// latency model.
#include <gtest/gtest.h>

#include "adaptive/estimator.hpp"
#include "adaptive/hierarchical.hpp"
#include "adaptive/time_varying.hpp"
#include "model/genfib.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

// ---------------------------------------------------------------------------
// Estimator
// ---------------------------------------------------------------------------

TEST(Quantize, RoundsToGrid) {
  // 7/3 = 2.333...: nearest quarter is 9/4, and it is exact on a 1/3 grid.
  EXPECT_EQ(quantize(Rational(7, 3), 4), Rational(9, 4));
  EXPECT_EQ(quantize(Rational(7, 3), 3), Rational(7, 3));
  // 1/3 = 0.333...: nearest half is 1/2 (0.666 half-steps rounds up).
  EXPECT_EQ(quantize(Rational(1, 3), 2), Rational(1, 2));
  EXPECT_EQ(quantize(Rational(2, 3), 2), Rational(1, 2));
}

TEST(Quantize, HalfUpTies) {
  EXPECT_EQ(quantize(Rational(1, 2), 1), Rational(1));
  EXPECT_EQ(quantize(Rational(3, 2), 1), Rational(2));
  EXPECT_EQ(quantize(Rational(5, 4), 2), Rational(3, 2));
}

TEST(Quantize, RejectsBadGrid) {
  POSTAL_EXPECT_THROW(quantize(Rational(1), 0), InvalidArgument);
}

TEST(Estimator, StartsAtInitial) {
  const LatencyEstimator est(Rational(1, 4), Rational(3));
  EXPECT_EQ(est.estimate(), Rational(3));
  EXPECT_EQ(est.samples(), 0u);
}

TEST(Estimator, ConvergesToConstantSignal) {
  LatencyEstimator est(Rational(1, 2), Rational(1), /*grid=*/1024);
  for (int i = 0; i < 50; ++i) est.observe(Rational(5));
  EXPECT_EQ(est.samples(), 50u);
  // Within one grid step of 5.
  EXPECT_LE((est.estimate() - Rational(5)).to_double(), 1.0 / 1024 + 1e-12);
  EXPECT_GE(est.estimate(), Rational(5) - Rational(1, 512));
}

TEST(Estimator, NeverDropsBelowOne) {
  LatencyEstimator est(Rational(1), Rational(4));
  est.observe(Rational(0));
  EXPECT_GE(est.estimate(), Rational(1));
}

TEST(Estimator, DenominatorsStayBounded) {
  LatencyEstimator est(Rational(1, 3), Rational(2), /*grid=*/64);
  for (int i = 0; i < 10000; ++i) {
    est.observe(Rational(i % 7 + 1, (i % 3) + 1));
  }
  EXPECT_LE(est.estimate().den(), 64);
}

TEST(Estimator, RejectsBadParameters) {
  EXPECT_THROW(LatencyEstimator(Rational(0)), InvalidArgument);
  EXPECT_THROW(LatencyEstimator(Rational(3, 2)), InvalidArgument);
  EXPECT_THROW(LatencyEstimator(Rational(1, 2), Rational(1, 2)), InvalidArgument);
  LatencyEstimator est;
  EXPECT_THROW(est.observe(Rational(-1)), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Time-varying profiles
// ---------------------------------------------------------------------------

TEST(LatencyProfile, PiecewiseLookup) {
  const LatencyProfile p({{Rational(0), Rational(2)},
                          {Rational(5), Rational(4)},
                          {Rational(10), Rational(3, 2)}});
  EXPECT_EQ(p.at(Rational(0)), Rational(2));
  EXPECT_EQ(p.at(Rational(9, 2)), Rational(2));
  EXPECT_EQ(p.at(Rational(5)), Rational(4));
  EXPECT_EQ(p.at(Rational(100)), Rational(3, 2));
}

TEST(LatencyProfile, Validation) {
  EXPECT_THROW(LatencyProfile({}), InvalidArgument);
  // must start at 0
  EXPECT_THROW(LatencyProfile({{Rational(1), Rational(2)}}), InvalidArgument);
  // lambda >= 1 everywhere
  EXPECT_THROW(LatencyProfile({{Rational(0), Rational(1, 2)}}), InvalidArgument);
  // strictly increasing starts
  EXPECT_THROW(LatencyProfile({{Rational(0), Rational(2)}, {Rational(0), Rational(3)}}),
               InvalidArgument);
}

TEST(AdaptiveBroadcast, ConstantProfileMatchesBcastExactly) {
  // With a constant profile every policy must reproduce Theorem 6.
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    const LatencyProfile profile = LatencyProfile::constant(lambda);
    GenFib fib(lambda);
    for (const AdaptPolicy policy :
         {AdaptPolicy::kStatic, AdaptPolicy::kAdaptive, AdaptPolicy::kEstimated}) {
      const AdaptiveRunResult run = adaptive_broadcast(40, profile, policy);
      EXPECT_EQ(run.completion, fib.f(40)) << "lambda=" << lambda.str();
    }
  }
}

TEST(AdaptiveBroadcast, SchedulesAreValidUnderConstantProfile) {
  const Rational lambda(5, 2);
  const AdaptiveRunResult run =
      adaptive_broadcast(25, LatencyProfile::constant(lambda), AdaptPolicy::kStatic);
  const SimReport report = validate_schedule(run.schedule, PostalParams(25, lambda));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, run.completion);
}

TEST(AdaptiveBroadcast, AdaptiveNoWorseThanStaticOnStep) {
  // Latency degrades mid-broadcast; the adaptive planner must not lose.
  const LatencyProfile profile =
      LatencyProfile::step(Rational(2), Rational(8), Rational(3));
  const Rational t_static =
      adaptive_broadcast(200, profile, AdaptPolicy::kStatic).completion;
  const Rational t_adaptive =
      adaptive_broadcast(200, profile, AdaptPolicy::kAdaptive).completion;
  EXPECT_LE(t_adaptive, t_static);
}

TEST(AdaptiveBroadcast, EverybodyInformedOnce) {
  const LatencyProfile profile =
      LatencyProfile::step(Rational(3), Rational(3, 2), Rational(4));
  const AdaptiveRunResult run =
      adaptive_broadcast(64, profile, AdaptPolicy::kAdaptive);
  std::vector<bool> informed(64, false);
  informed[0] = true;
  for (const SendEvent& e : run.schedule.events()) {
    EXPECT_FALSE(informed[e.dst]) << "p" << e.dst << " informed twice";
    informed[e.dst] = true;
  }
  for (std::uint64_t p = 0; p < 64; ++p) EXPECT_TRUE(informed[p]) << "p" << p;
}

TEST(AdaptiveBroadcast, SingleProcessorDegenerate) {
  const AdaptiveRunResult run = adaptive_broadcast(
      1, LatencyProfile::constant(Rational(2)), AdaptPolicy::kAdaptive);
  EXPECT_TRUE(run.schedule.empty());
  EXPECT_EQ(run.completion, Rational(0));
}

// ---------------------------------------------------------------------------
// Hierarchical (two-level) latency
// ---------------------------------------------------------------------------

TEST(TwoLevel, ParamsValidate) {
  TwoLevelParams p{16, 4, Rational(3, 2), Rational(6)};
  EXPECT_NO_THROW(p.validate());
  p.lambda_inter = Rational(1);
  EXPECT_THROW(p.validate(), InvalidArgument);  // inter < intra
  p = TwoLevelParams{0, 4, Rational(1), Rational(2)};
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(TwoLevel, LatencyFunctionRespectsClusters) {
  const TwoLevelParams p{8, 4, Rational(3, 2), Rational(6)};
  EXPECT_EQ(p.lambda(0, 3), Rational(3, 2));
  EXPECT_EQ(p.lambda(0, 4), Rational(6));
  EXPECT_EQ(p.lambda(5, 7), Rational(3, 2));
  EXPECT_EQ(p.clusters(), 2u);
}

TEST(TwoLevel, FlatScheduleIsValidUnderHeteroLatency) {
  const TwoLevelParams p{24, 6, Rational(3, 2), Rational(5)};
  const HeteroReport report = simulate_two_level(hierarchical_flat_schedule(p), p);
  ASSERT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  // The flat plan was built for lambda_inter, so it cannot beat f_inter(n)
  // but early intra arrivals may not help it either.
  GenFib inter(p.lambda_inter);
  EXPECT_LE(report.completion, inter.f(p.n));
}

TEST(TwoLevel, TwoLevelScheduleIsValidAndBeatsFlat) {
  const TwoLevelParams p{64, 8, Rational(1), Rational(8)};
  const HeteroReport flat = simulate_two_level(hierarchical_flat_schedule(p), p);
  const HeteroReport two = simulate_two_level(hierarchical_two_level_schedule(p), p);
  ASSERT_TRUE(flat.ok);
  ASSERT_TRUE(two.ok) << (two.violations.empty() ? "" : two.violations[0]);
  EXPECT_LT(two.completion, flat.completion);
}

TEST(TwoLevel, DegeneratesToFlatWhenUniform) {
  // lambda_intra == lambda_inter: the hierarchy buys nothing; both are
  // valid and flat is at least as good.
  const TwoLevelParams p{30, 5, Rational(3), Rational(3)};
  const HeteroReport flat = simulate_two_level(hierarchical_flat_schedule(p), p);
  const HeteroReport two = simulate_two_level(hierarchical_two_level_schedule(p), p);
  ASSERT_TRUE(flat.ok);
  ASSERT_TRUE(two.ok);
  GenFib fib(Rational(3));
  EXPECT_EQ(flat.completion, fib.f(30));
  EXPECT_GE(two.completion, flat.completion);
}

TEST(TwoLevel, SimulatorRejectsUninformedSender) {
  const TwoLevelParams p{4, 2, Rational(1), Rational(2)};
  Schedule s;
  s.add(1, 2, 0, Rational(0));  // p1 was never informed
  s.add(0, 1, 0, Rational(0));
  s.add(0, 3, 0, Rational(1));
  const HeteroReport report = simulate_two_level(s, p);
  EXPECT_FALSE(report.ok);
}

TEST(TwoLevel, SingleClusterIsJustBcast) {
  const TwoLevelParams p{10, 10, Rational(2), Rational(2)};
  const HeteroReport report =
      simulate_two_level(hierarchical_two_level_schedule(p), p);
  ASSERT_TRUE(report.ok);
  GenFib fib(Rational(2));
  EXPECT_EQ(report.completion, fib.f(10));
}

}  // namespace
}  // namespace postal
