// Tests for the randomized epidemic broadcast baseline.
#include "adaptive/epidemic.hpp"

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(Epidemic, SingleProcessorInstant) {
  const EpidemicResult run = run_epidemic(PostalParams(1, Rational(2)), 1);
  EXPECT_TRUE(run.finished);
  EXPECT_EQ(run.completion, Rational(0));
  EXPECT_EQ(run.total_sends, 0u);
}

TEST(Epidemic, TwoProcessorsOneLatency) {
  // The only possible target is the other processor: completion = lambda.
  const EpidemicResult run = run_epidemic(PostalParams(2, Rational(5, 2)), 7);
  EXPECT_TRUE(run.finished);
  EXPECT_EQ(run.completion, Rational(5, 2));
}

TEST(Epidemic, DeterministicInSeed) {
  const PostalParams params(50, Rational(2));
  const EpidemicResult a = run_epidemic(params, 123);
  const EpidemicResult b = run_epidemic(params, 123);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.total_sends, b.total_sends);
  EXPECT_EQ(a.duplicate_deliveries, b.duplicate_deliveries);
}

TEST(Epidemic, AlwaysFinishesAndNeverBeatsTheorem6) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {2ULL, 16ULL, 100ULL}) {
      const PostalParams params(n, lambda);
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const EpidemicResult run = run_epidemic(params, seed);
        ASSERT_TRUE(run.finished) << "n=" << n << " seed=" << seed;
        EXPECT_GE(run.completion, fib.f(n))
            << "n=" << n << " lambda=" << lambda.str() << " seed=" << seed;
      }
    }
  }
}

TEST(Epidemic, DuplicatesGrowWithCrowding) {
  // Toward the end of an epidemic most targets are already informed.
  const PostalParams params(200, Rational(2));
  const EpidemicResult run = run_epidemic(params, 9);
  ASSERT_TRUE(run.finished);
  EXPECT_GT(run.duplicate_deliveries, 100u);
}

TEST(Epidemic, StatsAggregateSanely) {
  const PostalParams params(64, Rational(2));
  const EpidemicStats stats = epidemic_stats(params, 10, 42);
  EXPECT_EQ(stats.trials, 10u);
  EXPECT_GE(stats.worst_completion, stats.mean_completion);
  GenFib fib(params.lambda());
  EXPECT_GE(stats.mean_completion, fib.f(64));
  EXPECT_GT(stats.mean_duplicates_per_proc, 0.0);
  POSTAL_EXPECT_THROW(epidemic_stats(params, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace postal
