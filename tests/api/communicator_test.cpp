// Tests for the Communicator facade: every collective it plans is
// pre-verified, carries the right closed-form completion, and respects its
// lower bound.
#include "api/communicator.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "collectives/barrier.hpp"
#include "collectives/scan.hpp"
#include "sched/pack.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

class CommSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(CommSweep, AllCollectivesVerifiedWithExactTimes) {
  const auto& [n, lambda] = GetParam();
  Communicator comm(n, lambda);
  GenFib fib(lambda);
  const Rational f = fib.f(n);

  const CollectivePlan bcast = comm.broadcast();
  EXPECT_TRUE(bcast.verified);
  EXPECT_EQ(bcast.completion, f);
  EXPECT_EQ(bcast.algorithm, "BCAST");
  EXPECT_EQ(comm.broadcast_time(), f);

  const CollectivePlan reduce = comm.reduce();
  EXPECT_TRUE(reduce.verified);
  EXPECT_EQ(reduce.completion, f);

  const CollectivePlan scatter = comm.scatter();
  EXPECT_TRUE(scatter.verified);
  const CollectivePlan gather = comm.gather();
  EXPECT_EQ(scatter.completion, gather.completion);

  const CollectivePlan allgather = comm.allgather();
  EXPECT_TRUE(allgather.verified);
  EXPECT_EQ(allgather.completion, allgather.lower_bound);

  const CollectivePlan alltoall = comm.alltoall();
  EXPECT_TRUE(alltoall.verified);
  EXPECT_EQ(alltoall.completion, alltoall.lower_bound);

  const CollectivePlan barrier = comm.barrier();
  EXPECT_TRUE(barrier.verified);
  EXPECT_EQ(barrier.completion, Rational(2) * f);

  const CollectivePlan scan = comm.scan();
  EXPECT_TRUE(scan.verified);
  EXPECT_EQ(scan.completion, Rational(2) * f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CommSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{2, Rational(2)},
                      std::pair<std::uint64_t, Rational>{14, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{33, Rational(1)},
                      std::pair<std::uint64_t, Rational>{64, Rational(4)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(Communicator, MultiMessageBroadcastPicksTheBest) {
  Communicator comm(64, Rational(5, 2));
  const PostalParams params(64, Rational(5, 2));
  const CollectivePlan plan = comm.broadcast(12);
  EXPECT_TRUE(plan.verified);
  // The chosen plan must match the registry minimum.
  Rational best;
  bool first = true;
  for (const MultiAlgo algo : all_multi_algos()) {
    const Rational t = predict_multi(algo, params, 12);
    if (first || t < best) best = t;
    first = false;
  }
  EXPECT_EQ(plan.completion, best);
  EXPECT_GE(plan.completion, plan.lower_bound);
}

TEST(Communicator, BroadcastWithSpecificAlgorithm) {
  Communicator comm(32, Rational(2));
  const CollectivePlan plan = comm.broadcast_with(MultiAlgo::kPack, 4);
  EXPECT_TRUE(plan.verified);
  EXPECT_EQ(plan.algorithm, "PACK");
  EXPECT_EQ(plan.completion, predict_pack(Rational(2), 32, 4));
}

TEST(Communicator, RejectsBadParameters) {
  EXPECT_THROW(Communicator(0, Rational(2)), InvalidArgument);
  EXPECT_THROW(Communicator(4, Rational(1, 2)), InvalidArgument);
  Communicator comm(4, Rational(2));
  POSTAL_EXPECT_THROW(comm.broadcast(0), InvalidArgument);
}

TEST(Communicator, SingleProcessorPlansAreEmpty) {
  Communicator comm(1, Rational(3));
  for (const CollectivePlan& plan :
       {comm.broadcast(), comm.reduce(), comm.scatter(), comm.gather(),
        comm.allgather(), comm.alltoall(), comm.barrier(), comm.scan()}) {
    EXPECT_TRUE(plan.verified);
    EXPECT_TRUE(plan.schedule.empty());
    EXPECT_EQ(plan.completion, Rational(0));
  }
}

TEST(Communicator, MultiSourcePlanVerified) {
  Communicator comm(16, Rational(5, 2));
  const CollectivePlan plan = comm.multi_source({3, 7, 11});
  EXPECT_TRUE(plan.verified);
  EXPECT_GE(plan.completion, plan.lower_bound);
  EXPECT_NE(plan.algorithm.find("MULTI-SOURCE"), std::string::npos);
}

TEST(Communicator, ReliableBroadcastFaultFreeMatchesBaseline) {
  Communicator comm(24, Rational(5, 2));
  const ReliableBcastReport report = comm.broadcast_reliable();
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  EXPECT_EQ(report.completion, comm.broadcast_time());
  EXPECT_EQ(report.counters.retransmissions, 0u);
}

TEST(Communicator, ReliableBroadcastSurvivesACrashPlan) {
  Communicator comm(24, Rational(2));
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{5, Rational(2)});
  const ReliableBcastReport report = comm.broadcast_reliable(&plan);
  EXPECT_TRUE(report.covered);
  EXPECT_TRUE(report.validation.ok) << report.validation.summary();
  ASSERT_EQ(report.crashed.size(), 1u);
  EXPECT_EQ(report.crashed[0], 5u);
}

TEST(Communicator, SetThreadsIsInheritedByReliableBroadcast) {
  // threads plumbing: options.threads == 0 inherits set_threads(), and the
  // sharded run's report is identical to the sequential default.
  Communicator seq(48, Rational(2));
  Communicator par(48, Rational(2));
  par.set_threads(4);
  EXPECT_EQ(par.threads(), 4u);
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{7, Rational(3)});
  const ReliableBcastReport a = seq.broadcast_reliable(&plan);
  const ReliableBcastReport b = par.broadcast_reliable(&plan);
  EXPECT_EQ(a.result.schedule.events(), b.result.schedule.events());
  EXPECT_EQ(a.result.trace.deliveries(), b.result.trace.deliveries());
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.counters.retransmissions, b.counters.retransmissions);
  EXPECT_EQ(a.counters.repairs, b.counters.repairs);
  EXPECT_TRUE(b.covered);

  // An explicit options.threads wins over the communicator setting.
  ReliableBcastOptions options;
  options.threads = 1;
  const ReliableBcastReport c = par.broadcast_reliable(&plan, options);
  EXPECT_EQ(a.completion, c.completion);
}

TEST(Communicator, SetThreadsZeroClampsToOne) {
  Communicator comm(8, Rational(2));
  comm.set_threads(0);
  EXPECT_EQ(comm.threads(), 1u);
}

TEST(Communicator, PlansAreDeterministic) {
  Communicator a(20, Rational(5, 2));
  Communicator b(20, Rational(5, 2));
  EXPECT_EQ(a.broadcast(5).schedule.events(), b.broadcast(5).schedule.events());
  EXPECT_EQ(a.alltoall().schedule.events(), b.alltoall().schedule.events());
}

}  // namespace
}  // namespace postal
