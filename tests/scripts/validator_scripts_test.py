#!/usr/bin/env python3
"""Tests for the bench-record tooling in scripts/ (docs/OBSERVABILITY.md).

Covers validate_bench_records.py (the CI gate on BENCH_postal.json),
compare_sweep_records.py (the sweep determinism contract), and
compare_trajectory.py's guarded-metric floors (the threads_hw-keyed
ParMachine speedup gate): happy paths,
malformed JSON lines, missing stable keys, zero-record files, MISMATCH
verdicts, unmet --expect names, the --svc percentile-key contract on
service records (docs/SERVICE.md), thread-count and wall-time
normalization, and record-count mismatches. Standard-library unittest on purpose -- the
suite runs from ctest with the same python3 the build already requires.

Usage: python3 validator_scripts_test.py [--scripts-dir DIR]
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "scripts"))


def run_script(name, *args):
    """Run scripts/<name> with args; returns (exit code, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, os.path.join(SCRIPTS_DIR, name), *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def good_record(**overrides):
    rec = {"bench": "bench_demo", "n": 14, "lambda": "5/2",
           "makespan": "15/2", "wall_ms": 1.25, "verdict": "CONSISTENT",
           "threads_hw": 4,
           "extra": {"threads": "4", "point_ms": "0.5", "sends": "13"}}
    rec.update(overrides)
    return rec


class TempRecordFile:
    """Write JSONL records (or raw text) to a NamedTemporaryFile."""

    def __init__(self, records=None, raw=None):
        self.file = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False, encoding="utf-8")
        if raw is not None:
            self.file.write(raw)
        else:
            for rec in records:
                self.file.write(json.dumps(rec) + "\n")
        self.file.close()
        self.path = self.file.name

    def __enter__(self):
        return self.path

    def __exit__(self, *exc):
        os.unlink(self.path)


class ValidateBenchRecordsTest(unittest.TestCase):
    def test_accepts_valid_records(self):
        with TempRecordFile([good_record(), good_record(bench="other")]) as path:
            code, out, err = run_script("validate_bench_records.py", path)
        self.assertEqual(code, 0, err)
        self.assertIn("2 valid record(s)", out)

    def test_rejects_missing_file(self):
        code, _, err = run_script("validate_bench_records.py",
                                  "/nonexistent/BENCH.json")
        self.assertEqual(code, 1)
        self.assertIn("cannot read", err)

    def test_rejects_zero_records(self):
        with TempRecordFile(raw="\n  \n") as path:
            code, _, err = run_script("validate_bench_records.py", path)
        self.assertEqual(code, 1)
        self.assertIn("zero bench records", err)

    def test_rejects_malformed_line(self):
        raw = json.dumps(good_record()) + "\n{not json}\n"
        with TempRecordFile(raw=raw) as path:
            code, _, err = run_script("validate_bench_records.py", path)
        self.assertEqual(code, 1)
        self.assertIn("unparseable record line", err)

    def test_rejects_missing_stable_key(self):
        for key in ("bench", "n", "lambda", "makespan", "wall_ms", "verdict",
                    "threads_hw"):
            rec = good_record()
            del rec[key]
            with TempRecordFile([rec]) as path:
                code, _, err = run_script("validate_bench_records.py", path)
            self.assertEqual(code, 1, f"missing {key} must be rejected")
            self.assertIn(f"missing key {key!r}", err)

    def test_rejects_mismatch_verdict(self):
        with TempRecordFile([good_record(verdict="MISMATCH")]) as path:
            code, _, err = run_script("validate_bench_records.py", path)
        self.assertEqual(code, 1)
        self.assertIn("MISMATCH", err)

    def test_expect_satisfied_and_unmet(self):
        with TempRecordFile([good_record(bench="bench_oracle")]) as path:
            code, _, err = run_script("validate_bench_records.py", path,
                                      "--expect", "bench_oracle")
            self.assertEqual(code, 0, err)
            code, _, err = run_script("validate_bench_records.py", path,
                                      "--expect", "bench_oracle",
                                      "--expect", "bench_absent")
        self.assertEqual(code, 1)
        self.assertIn("bench_absent", err)

    def svc_record(self, bench="bench_service", **extra_overrides):
        extra = {"p50": "309/16", "p99": "1231/16", "p999": "1567/16",
                 "throughput": "320000/5039263", "threads": "1"}
        extra.update(extra_overrides)
        extra = {k: v for k, v in extra.items() if v is not None}
        return good_record(bench=bench, verdict="CERTIFIED", extra=extra)

    def test_svc_accepts_records_with_percentile_keys(self):
        for bench in ("bench_service", "postal_cli_serve"):
            with TempRecordFile([self.svc_record(bench=bench)]) as path:
                code, _, err = run_script("validate_bench_records.py", path,
                                          "--svc")
            self.assertEqual(code, 0, f"{bench}: {err}")

    def test_svc_rejects_missing_percentile_keys(self):
        for key in ("p50", "p99", "p999", "throughput"):
            rec = self.svc_record(**{key: None})
            with TempRecordFile([rec]) as path:
                code, _, err = run_script("validate_bench_records.py", path,
                                          "--svc")
            self.assertEqual(code, 1, f"missing {key} must be rejected")
            self.assertIn(key, err)

    def test_svc_rejects_non_object_extra(self):
        rec = good_record(bench="postal_cli_serve", extra="p50=1")
        with TempRecordFile([rec]) as path:
            code, _, err = run_script("validate_bench_records.py", path,
                                      "--svc")
        self.assertEqual(code, 1)
        self.assertIn("extra object", err)

    def test_svc_requires_a_service_record(self):
        with TempRecordFile([good_record()]) as path:
            code, _, err = run_script("validate_bench_records.py", path,
                                      "--svc")
            self.assertEqual(code, 1)
            self.assertIn("no service record", err)
            # Without --svc the same file is fine: the contract is opt-in.
            code, _, err = run_script("validate_bench_records.py", path)
        self.assertEqual(code, 0, err)

    def test_svc_ignores_non_service_records(self):
        # A non-service record may omit the percentile keys even under --svc.
        with TempRecordFile([good_record(), self.svc_record()]) as path:
            code, _, err = run_script("validate_bench_records.py", path,
                                      "--svc")
        self.assertEqual(code, 0, err)

    @staticmethod
    def log_record(**overrides):
        # The E27 replicated-log record shape (bench/bench_log.cpp): one
        # slugged extra block per grid point, exact Rational strings.
        extra = {}
        for slug in ("n8_l5/2", "n24_l2"):
            extra[f"{slug}_commit_latency"] = "153/2"
            extra[f"{slug}_commit_over_lambda"] = "153/5"
            extra[f"{slug}_recovery"] = "264"
            extra[f"{slug}_recovery_over_lambda"] = "528/5"
            extra[f"{slug}_reconfig_overhead"] = "349"
            extra[f"{slug}_reconfig_over_lambda"] = "698/5"
            extra[f"{slug}_wall_ms"] = "2.32"
        rec = good_record(bench="bench_log", n=24, makespan="159",
                          verdict="CERTIFIED", extra=extra)
        rec["lambda"] = "2"
        rec.update(overrides)
        return rec

    def test_accepts_e27_log_record(self):
        # The E27 record must satisfy both the stable-key contract and the
        # --svc contract when it rides in the same file as a service record
        # (exactly how scripts/check.sh validates BENCH_postal.json).
        with TempRecordFile([self.log_record(), self.svc_record()]) as path:
            code, out, err = run_script("validate_bench_records.py", path,
                                        "--svc", "--expect", "bench_log",
                                        "--expect", "bench_service")
        self.assertEqual(code, 0, err)
        self.assertIn("2 valid record(s)", out)

    def test_e27_mismatch_verdict_fails(self):
        with TempRecordFile([self.log_record(verdict="MISMATCH")]) as path:
            code, _, err = run_script("validate_bench_records.py", path,
                                      "--expect", "bench_log")
        self.assertEqual(code, 1)
        self.assertIn("MISMATCH", err)


class CompareSweepRecordsTest(unittest.TestCase):
    def test_identical_modulo_walltime_and_threads(self):
        a = [good_record(), good_record(n=64)]
        b = [good_record(wall_ms=99.0,
                         extra={"threads": "1", "point_ms": "7.0",
                                "sends": "13"}),
             good_record(n=64, wall_ms=0.001,
                         extra={"threads": "8", "point_ms": "0.1",
                                "sends": "13"})]
        with TempRecordFile(a) as pa, TempRecordFile(b) as pb:
            code, out, err = run_script("compare_sweep_records.py", pa, pb)
        self.assertEqual(code, 0, err)
        self.assertIn("identical ignoring wall-time", out)

    def test_semantic_difference_fails(self):
        a = [good_record(makespan="15/2")]
        b = [good_record(makespan="8")]
        with TempRecordFile(a) as pa, TempRecordFile(b) as pb:
            code, _, err = run_script("compare_sweep_records.py", pa, pb)
        self.assertEqual(code, 1)
        self.assertIn("records differ at point 0", err)

    def test_extra_difference_fails(self):
        a = [good_record()]
        b = [good_record(extra={"threads": "4", "point_ms": "0.5",
                                "sends": "14"})]
        with TempRecordFile(a) as pa, TempRecordFile(b) as pb:
            code, _, err = run_script("compare_sweep_records.py", pa, pb)
        self.assertEqual(code, 1)

    def test_count_mismatch_fails(self):
        a = [good_record(), good_record(n=64)]
        b = [good_record()]
        with TempRecordFile(a) as pa, TempRecordFile(b) as pb:
            code, _, err = run_script("compare_sweep_records.py", pa, pb)
        self.assertEqual(code, 1)
        self.assertIn("record counts differ", err)

    def test_empty_file_fails(self):
        with TempRecordFile(raw="") as pa, TempRecordFile([good_record()]) as pb:
            code, _, err = run_script("compare_sweep_records.py", pa, pb)
        self.assertEqual(code, 1)
        self.assertIn("empty record file", err)

    def test_usage_error(self):
        code, _, err = run_script("compare_sweep_records.py")
        self.assertEqual(code, 2)
        self.assertIn("Usage", err)


class CompareTrajectoryGuardedMetricsTest(unittest.TestCase):
    """The ParMachine speedup floor: hard only on multi-core runners."""

    @staticmethod
    def run_compare(fresh_records, baseline_records):
        with tempfile.TemporaryDirectory() as base_dir:
            base_path = os.path.join(base_dir, "E24_par_machine.json")
            with open(base_path, "w", encoding="utf-8") as fh:
                for rec in baseline_records:
                    fh.write(json.dumps(rec) + "\n")
            with TempRecordFile(fresh_records) as fresh_path:
                return run_script("compare_trajectory.py", fresh_path,
                                  "--baseline-dir", base_dir)

    @staticmethod
    def par_record(speedup, threads_hw):
        return good_record(bench="bench_par_machine", threads_hw=threads_hw,
                           extra={"bcast_1m_t4_speedup": speedup})

    def test_speedup_below_floor_fails_on_multicore_runner(self):
        code, _, err = self.run_compare(
            [self.par_record("0.7", threads_hw=8)],
            [self.par_record("1.4", threads_hw=8)])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", err)
        self.assertIn("bcast_1m_t4_speedup", err)

    def test_speedup_below_floor_warns_on_small_runner(self):
        code, _, err = self.run_compare(
            [self.par_record("0.7", threads_hw=1)],
            [self.par_record("1.4", threads_hw=8)])
        self.assertEqual(code, 0, err)
        self.assertIn("bcast_1m_t4_speedup", err)
        self.assertNotIn("REGRESSION", err)

    def test_speedup_at_floor_passes(self):
        code, _, err = self.run_compare(
            [self.par_record("1.3", threads_hw=8)],
            [self.par_record("1.4", threads_hw=8)])
        self.assertEqual(code, 0, err)
        self.assertNotIn("bcast_1m_t4_speedup", err)


class CompareTrajectoryMissingBaselineTest(unittest.TestCase):
    """A fresh bench with no committed baseline warns -- never crashes.

    First landing of a new bench (the E27 drift, the reason this test
    exists): its record rides in BENCH_postal.json before its trajectory
    file is committed. The guard must flag the coverage gap as a warning
    and still exit 0 so CI stays green on the landing itself.
    """

    @staticmethod
    def log_record():
        return good_record(bench="bench_log", verdict="CERTIFIED",
                           extra={"n24_l2_commit_latency": "159",
                                  "n24_l2_wall_ms": "3.72"})

    def test_missing_baseline_warns_but_passes(self):
        # Baseline dir covers bench_demo only; the fresh file also carries
        # the E27 record with no baseline anywhere.
        with tempfile.TemporaryDirectory() as base_dir:
            with open(os.path.join(base_dir, "E1_demo.json"), "w",
                      encoding="utf-8") as fh:
                fh.write(json.dumps(good_record()) + "\n")
            with TempRecordFile([good_record(), self.log_record()]) as fresh:
                code, out, err = run_script("compare_trajectory.py", fresh,
                                            "--baseline-dir", base_dir)
        self.assertEqual(code, 0, err)
        self.assertIn("bench_log", err)
        self.assertIn("no committed baseline", err)
        self.assertNotIn("REGRESSION", err)
        self.assertIn("compared 1 bench(es)", out)

    def test_missing_baseline_fails_only_under_strict(self):
        with tempfile.TemporaryDirectory() as base_dir:
            with open(os.path.join(base_dir, "E1_demo.json"), "w",
                      encoding="utf-8") as fh:
                fh.write(json.dumps(good_record()) + "\n")
            with TempRecordFile([self.log_record()]) as fresh:
                code, _, err = run_script("compare_trajectory.py", fresh,
                                          "--baseline-dir", base_dir,
                                          "--strict")
        self.assertEqual(code, 1)
        self.assertIn("no committed baseline", err)

    def test_committed_baseline_silences_the_warning(self):
        with tempfile.TemporaryDirectory() as base_dir:
            with open(os.path.join(base_dir, "E27_log.json"), "w",
                      encoding="utf-8") as fh:
                fh.write(json.dumps(self.log_record()) + "\n")
            with TempRecordFile([self.log_record()]) as fresh:
                code, out, err = run_script("compare_trajectory.py", fresh,
                                            "--baseline-dir", base_dir)
        self.assertEqual(code, 0, err)
        self.assertNotIn("no committed baseline", err)
        self.assertIn("compared 1 bench(es)", out)


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--scripts-dir":
        SCRIPTS_DIR = os.path.abspath(sys.argv[2])
        sys.argv = sys.argv[:1] + sys.argv[3:]
    unittest.main(verbosity=2)
