// Property tests for Claims 1 and 2 of the paper -- the index-function
// calculus for *general* right-continuous, nondecreasing, unbounded step
// functions, not just F_lambda. Random step functions are generated on a
// rational grid and every clause of the claims is checked against a direct
// implementation of I_G(n) = min{ t : G(t) >= n }.
#include <gtest/gtest.h>

#include <vector>

#include "support/prng.hpp"
#include "support/rational.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

/// A right-continuous, nondecreasing, unbounded step function: value
/// values_[k] on [k/q, (k+1)/q), continuing with slope `tail` per grid
/// step beyond the stored prefix (which keeps it unbounded).
class StepFn {
 public:
  StepFn(std::vector<std::uint64_t> values, std::int64_t q, std::uint64_t tail)
      : values_(std::move(values)), q_(q), tail_(tail) {
    POSTAL_REQUIRE(!values_.empty() && values_[0] >= 1, "StepFn: starts >= 1");
    for (std::size_t i = 1; i < values_.size(); ++i) {
      POSTAL_REQUIRE(values_[i] >= values_[i - 1], "StepFn: nondecreasing");
    }
    POSTAL_REQUIRE(tail_ >= 1, "StepFn: must be unbounded");
  }

  [[nodiscard]] std::uint64_t at(const Rational& t) const {
    POSTAL_REQUIRE(t >= Rational(0), "StepFn: t >= 0");
    const std::int64_t k = (t * Rational(q_)).floor();
    const auto idx = static_cast<std::uint64_t>(k);
    if (idx < values_.size()) return values_[idx];
    return values_.back() + (idx - values_.size() + 1) * tail_;
  }

  /// I_G(n) = min{ t : G(t) >= n }, by direct grid scan.
  [[nodiscard]] Rational index(std::uint64_t n) const {
    std::int64_t k = 0;
    while (at(Rational(k, q_)) < n) ++k;
    return Rational(k, q_);
  }

  [[nodiscard]] std::int64_t q() const noexcept { return q_; }

 private:
  std::vector<std::uint64_t> values_;
  std::int64_t q_;
  std::uint64_t tail_;
};

StepFn random_step_fn(Xoshiro256& rng) {
  const std::int64_t q = static_cast<std::int64_t>(rng.uniform(1, 4));
  const std::size_t len = rng.uniform(3, 30);
  std::vector<std::uint64_t> values;
  std::uint64_t v = rng.uniform(1, 3);
  for (std::size_t i = 0; i < len; ++i) {
    values.push_back(v);
    v += rng.uniform(0, 4);  // flat spots are likely and important
  }
  return StepFn(std::move(values), q, rng.uniform(1, 3));
}

TEST(Claim1, IndexFunctionIsNondecreasingAndUnbounded) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const StepFn G = random_step_fn(rng);
    Rational prev(0);
    for (std::uint64_t n = 1; n <= 60; ++n) {
      const Rational idx = G.index(n);
      EXPECT_GE(idx, prev) << "trial=" << trial << " n=" << n;
      prev = idx;
    }
    // Unbounded: a large n needs a strictly positive index.
    EXPECT_GT(G.index(1000), Rational(0));
  }
}

TEST(Claim1, Part2_IndexOfValueAtMostT) {
  // I_G(G(t)) <= t for all t >= 0.
  Xoshiro256 rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    const StepFn G = random_step_fn(rng);
    for (std::int64_t k = 0; k <= 80; ++k) {
      const Rational t(k, G.q());
      EXPECT_LE(G.index(G.at(t)), t) << "trial=" << trial << " t=" << t.str();
    }
  }
}

TEST(Claim1, Part3_ValueAtIndexAtLeastN) {
  // G(I_G(n)) >= n for all n >= 1.
  Xoshiro256 rng(303);
  for (int trial = 0; trial < 50; ++trial) {
    const StepFn G = random_step_fn(rng);
    for (std::uint64_t n = 1; n <= 80; ++n) {
      EXPECT_GE(G.at(G.index(n)), n) << "trial=" << trial << " n=" << n;
    }
  }
}

TEST(Claim1, Part4_JustBeforeIndexIsBelowN) {
  // G(I_G(n) - eps) < n whenever I_G(n) - eps >= 0.
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    const StepFn G = random_step_fn(rng);
    const Rational eps(1, 2 * G.q());
    for (std::uint64_t n = 2; n <= 80; ++n) {
      const Rational idx = G.index(n);
      if (idx < eps) continue;
      EXPECT_LT(G.at(idx - eps), n) << "trial=" << trial << " n=" << n;
    }
  }
}

TEST(Claim2, DominanceReversesIndexOrder) {
  // If G(t) <= H(t) for all t, then I_G(n) >= I_H(n) for all n.
  Xoshiro256 rng(505);
  for (int trial = 0; trial < 50; ++trial) {
    const StepFn G = random_step_fn(rng);
    // H = G shifted up by a random constant dominates G on a shared grid.
    const std::uint64_t lift = rng.uniform(0, 5);
    std::vector<std::uint64_t> hv;
    for (std::int64_t k = 0; k <= 200; ++k) {
      hv.push_back(G.at(Rational(k, G.q())) + lift);
    }
    const StepFn H(std::move(hv), G.q(), 3);
    for (std::uint64_t n = 1; n <= 60; ++n) {
      EXPECT_GE(G.index(n), H.index(n)) << "trial=" << trial << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace postal
