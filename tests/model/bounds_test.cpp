// Tests for the paper's closed-form bounds (Theorem 7, Lemma 8,
// Corollaries 9/11/13/15/17, Lemma 18).
#include "model/bounds.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace postal {
namespace {

// Theorem 7 part (1): (ceil(l)+1)^floor(t/2l) <= F_l(t) <= (ceil(l)+1)^floor(t/l).
TEST(Theorem7, Part1BracketsF) {
  for (const Rational lambda :
       {Rational(1), Rational(3, 2), Rational(2), Rational(5, 2), Rational(4),
        Rational(7), Rational(19, 3)}) {
    GenFib fib(lambda);
    for (std::int64_t k = 0; k <= 120; ++k) {
      const Rational t(k, 4);
      const std::uint64_t value = fib.F(t);
      EXPECT_LE(thm7_F_lower(lambda, t), value)
          << "lambda=" << lambda.str() << " t=" << t.str();
      if (value < kSaturated) {
        EXPECT_GE(thm7_F_upper(lambda, t), value)
            << "lambda=" << lambda.str() << " t=" << t.str();
      }
    }
  }
}

// Theorem 7 part (2):
// lambda*log n/log(ceil(l)+1) <= f_l(n) <= 2l + 2l*log n/log(ceil(l)+1).
TEST(Theorem7, Part2BracketsIndexFunction) {
  for (const Rational lambda :
       {Rational(1), Rational(3, 2), Rational(5, 2), Rational(4), Rational(9)}) {
    GenFib fib(lambda);
    for (std::uint64_t n = 1; n <= 3000; n = n * 3 / 2 + 1) {
      const double f = fib.f(n).to_double();
      EXPECT_LE(thm7_f_lower(lambda, n), f + 1e-9)
          << "lambda=" << lambda.str() << " n=" << n;
      EXPECT_GE(thm7_f_upper(lambda, n) + 1e-9, f)
          << "lambda=" << lambda.str() << " n=" << n;
    }
  }
}

TEST(Theorem7, AlphaApproachesOne) {
  // alpha(lambda) -> 1 as lambda -> infinity, but only at a
  // ln ln / ln rate -- the convergence is extremely slow (appendix).
  const double a1 = thm7_alpha(Rational(100));
  const double a2 = thm7_alpha(Rational(10'000));
  const double a3 = thm7_alpha(Rational(1'000'000));
  EXPECT_GT(a1, 1.0);
  EXPECT_GT(a1, a2);
  EXPECT_GT(a2, a3);
  EXPECT_LT(a3, 1.4);
}

TEST(Theorem7, AlphaIsAtLeastOneOnItsDomain) {
  // The denominator ln(lambda+1) - (ln ln(lambda+1) + 1) is x - ln x - 1
  // at x = ln(lambda+1): nonnegative everywhere, zero only at x = 1
  // (lambda = e - 1 ~ 1.718), where alpha blows up. Away from that point
  // alpha is finite and >= 1.
  for (const Rational lambda :
       {Rational(1), Rational(3, 2), Rational(2), Rational(5, 2), Rational(10),
        Rational(1000)}) {
    EXPECT_GE(thm7_alpha(lambda), 1.0) << "lambda=" << lambda.str();
  }
}

// Theorem 7 part (3): F_l(t) >= (l+1)^(t/(alpha*l) - 1) for large lambda.
TEST(Theorem7, Part3AsymptoticLowerBound) {
  const Rational lambda(64);
  GenFib fib(lambda);
  for (std::int64_t t = 0; t <= 600; t += 16) {
    const std::uint64_t value = fib.F(Rational(t));
    const double bound = thm7_part3_F_lower(lambda, Rational(t));
    if (value < kSaturated) {
      EXPECT_GE(static_cast<double>(value) * (1.0 + 1e-12), bound) << "t=" << t;
    }
  }
}

// Theorem 7 part (4): f_l(n) <= alpha*l*(log n/log(l+1) + 1) for large l, n.
TEST(Theorem7, Part4AsymptoticUpperBound) {
  const Rational lambda(64);
  GenFib fib(lambda);
  for (std::uint64_t n : {1000ULL, 100'000ULL, 10'000'000ULL}) {
    EXPECT_LE(fib.f(n).to_double(), thm7_part4_f_upper(lambda, n) + 1e-9)
        << "n=" << n;
  }
}

TEST(Lemma8, LowerBoundIsExactFormula) {
  GenFib fib(Rational(5, 2));
  EXPECT_EQ(lemma8_lower(fib, 14, 1), Rational(15, 2));
  EXPECT_EQ(lemma8_lower(fib, 14, 5), Rational(4) + Rational(15, 2));
  POSTAL_EXPECT_THROW(lemma8_lower(fib, 14, 0), InvalidArgument);
}

TEST(Corollary9, BothFormsHold) {
  GenFib fib(Rational(3));
  for (std::uint64_t n = 2; n <= 256; n *= 2) {
    for (std::uint64_t m = 1; m <= 16; m *= 2) {
      const Rational exact = lemma8_lower(fib, n, m);
      EXPECT_GE(exact.to_double() + 1e-9, cor9_lower_log(Rational(3), n, m));
      // Corollary 9(2); equality is attained at n = 2 where f_lambda(2) =
      // lambda, so the workable form is >=.
      EXPECT_GE(exact, cor9_lower_latency(Rational(3), m));
    }
  }
}

TEST(Lemma18, LineCaseUsesPathLength) {
  // d = 1: (m-1) + lambda*(n-1).
  EXPECT_EQ(lemma18_dtree_upper(Rational(2), 5, 3, 1), Rational(2) + Rational(8));
}

TEST(Lemma18, StarCaseHasHeightOne) {
  // d = n-1: ceil(log_{n-1} n) = 2 for n >= 3 ... careful: (n-1)^1 < n.
  // For n = 8, d = 7: height ceil(log_7 8) = 2.
  const Rational bound = lemma18_dtree_upper(Rational(3), 8, 2, 7);
  EXPECT_EQ(bound, Rational(7) + (Rational(6) + Rational(3)) * Rational(2));
}

TEST(Lemma18, BinaryTreeFormula) {
  // d = 2, n = 8, m = 4, lambda = 5/2: 2*3 + (1 + 5/2)*3 = 6 + 21/2.
  EXPECT_EQ(lemma18_dtree_upper(Rational(5, 2), 8, 4, 2),
            Rational(6) + Rational(21, 2));
}

TEST(Lemma18, RejectsBadDegree) {
  POSTAL_EXPECT_THROW(lemma18_dtree_upper(Rational(2), 8, 1, 0), InvalidArgument);
  POSTAL_EXPECT_THROW(lemma18_dtree_upper(Rational(2), 8, 1, 8), InvalidArgument);
}

TEST(UpperBoundCorollaries, AreFiniteAndPositive) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8)}) {
    for (std::uint64_t n : {2ULL, 64ULL, 4096ULL}) {
      for (std::uint64_t m : {1ULL, 4ULL, 64ULL}) {
        EXPECT_GT(cor11_repeat_upper(lambda, n, m), 0.0);
        EXPECT_GT(cor13_pack_upper(lambda, n, m), 0.0);
        EXPECT_GT(cor15_pipeline1_upper(lambda, n, m), 0.0);
        EXPECT_GT(cor17_pipeline2_upper(lambda, n, m), 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace postal
