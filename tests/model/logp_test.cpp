// Tests for the LogP model bridge: parameter validation, the postal-lambda
// mapping, and agreement between the GenFib route and the independent
// greedy dynamic program.
#include "model/logp.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace postal {
namespace {

TEST(LogP, ValidatesDomain) {
  LogPParams bad{Rational(-1), Rational(0), Rational(1), 4};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = LogPParams{Rational(1), Rational(0), Rational(0), 4};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = LogPParams{Rational(1), Rational(0), Rational(1), 0};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  // Outside the postal regime: L + 2o < max(o, g).
  bad = LogPParams{Rational(0), Rational(0), Rational(1), 4};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  const LogPParams ok{Rational(4), Rational(1), Rational(2), 16};
  EXPECT_NO_THROW(ok.validate());
}

TEST(LogP, PostalLambdaMapping) {
  // lambda = (L + 2o) / max(o, g).
  const LogPParams p{Rational(4), Rational(1), Rational(2), 16};
  EXPECT_EQ(p.postal_lambda(), Rational(3));  // (4 + 2)/2
  const LogPParams q{Rational(0), Rational(1, 2), Rational(1), 16};
  EXPECT_EQ(q.postal_lambda(), Rational(1));  // telephone: half-overhead call
  const LogPParams r{Rational(3), Rational(1, 2), Rational(1), 16};
  EXPECT_EQ(r.postal_lambda(), Rational(4));  // (3 + 1)/1
  // CPU-bound interface: o > g makes the effective gap o.
  const LogPParams cpu{Rational(4), Rational(2), Rational(1), 16};
  EXPECT_EQ(cpu.effective_gap(), Rational(2));
  EXPECT_EQ(cpu.postal_lambda(), Rational(4));  // (4 + 4)/2
}

TEST(LogP, TelephoneDegenerationIsLogTwo) {
  // L = 0, o = 1/2, g = 1: each call ties both parties for one unit and
  // the callee knows the message at its end -> lambda = 1 -> ceil(log2 P).
  const LogPParams p{Rational(0), Rational(1, 2), Rational(1), 1024};
  EXPECT_EQ(logp_broadcast_time(p), Rational(10));
}

TEST(LogP, SingleProcessorIsFree) {
  const LogPParams p{Rational(4), Rational(1), Rational(2), 1};
  EXPECT_EQ(logp_broadcast_time(p), Rational(0));
  EXPECT_EQ(logp_broadcast_time_dp(p), Rational(0));
}

TEST(LogP, GenFibAndGreedyDpAgree) {
  // The postal-equivalence route and the direct frontier DP must give the
  // same optimal broadcast time for every parameter combination.
  const Rational Ls[] = {Rational(0), Rational(1), Rational(4), Rational(15, 2)};
  const Rational os[] = {Rational(0), Rational(1, 2), Rational(1), Rational(3)};
  const Rational gs[] = {Rational(1), Rational(2), Rational(5, 2)};
  for (const Rational& L : Ls) {
    for (const Rational& o : os) {
      for (const Rational& g : gs) {
        if (L + Rational(2) * o < rmax(o, g)) continue;  // outside the regime
        for (std::uint64_t P : {2ULL, 3ULL, 7ULL, 16ULL, 33ULL, 100ULL}) {
          const LogPParams p{L, o, g, P};
          EXPECT_EQ(logp_broadcast_time(p), logp_broadcast_time_dp(p))
              << "L=" << L.str() << " o=" << o.str() << " g=" << g.str()
              << " P=" << P;
        }
      }
    }
  }
}

TEST(LogP, BroadcastTimeGrowsWithP) {
  const LogPParams base{Rational(4), Rational(1), Rational(2), 2};
  Rational prev(0);
  for (std::uint64_t P = 2; P <= 512; P *= 2) {
    LogPParams p = base;
    p.P = P;
    const Rational t = logp_broadcast_time(p);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LogP, LatencyOnlyLengthensBroadcast) {
  Rational prev(0);
  for (std::int64_t L = 0; L <= 16; L += 2) {
    const LogPParams p{Rational(L), Rational(1), Rational(2), 64};
    const Rational t = logp_broadcast_time(p);
    EXPECT_GE(t, prev) << "L=" << L;
    prev = t;
  }
}

}  // namespace
}  // namespace postal
