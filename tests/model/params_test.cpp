// Tests for PostalParams and the Section 4 latency normalizations.
#include "model/params.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace postal {
namespace {

TEST(PostalParams, AcceptsValidDomain) {
  const PostalParams p(14, Rational(5, 2));
  EXPECT_EQ(p.n(), 14u);
  EXPECT_EQ(p.lambda(), Rational(5, 2));
}

TEST(PostalParams, RejectsZeroProcessors) {
  EXPECT_THROW(PostalParams(0, Rational(1)), InvalidArgument);
}

TEST(PostalParams, RejectsSubUnitLatency) {
  EXPECT_THROW(PostalParams(4, Rational(1, 2)), InvalidArgument);
  EXPECT_THROW(PostalParams(4, Rational(0)), InvalidArgument);
  EXPECT_THROW(PostalParams(4, Rational(-2)), InvalidArgument);
}

TEST(PostalParams, LambdaOneIsTelephoneModel) {
  EXPECT_NO_THROW(PostalParams(4, Rational(1)));
}

// Lemma 12: lambda' = 1 + (lambda-1)/m.
TEST(PackLambda, MatchesLemma12) {
  EXPECT_EQ(pack_lambda(Rational(5, 2), 1), Rational(5, 2));
  EXPECT_EQ(pack_lambda(Rational(5, 2), 3), Rational(3, 2));
  EXPECT_EQ(pack_lambda(Rational(7), 4), Rational(5, 2));
  EXPECT_EQ(pack_lambda(Rational(1), 10), Rational(1));
}

TEST(PackLambda, AlwaysAtLeastOne) {
  for (std::uint64_t m = 1; m <= 100; ++m) {
    EXPECT_GE(pack_lambda(Rational(13, 4), m), Rational(1));
  }
}

TEST(PackLambda, RejectsBadArguments) {
  POSTAL_EXPECT_THROW(pack_lambda(Rational(2), 0), InvalidArgument);
  POSTAL_EXPECT_THROW(pack_lambda(Rational(1, 2), 3), InvalidArgument);
}

// Lemma 14: lambda' = lambda/m, requires m <= lambda.
TEST(Pipeline1Lambda, MatchesLemma14) {
  EXPECT_EQ(pipeline1_lambda(Rational(6), 2), Rational(3));
  EXPECT_EQ(pipeline1_lambda(Rational(5, 2), 2), Rational(5, 4));
  EXPECT_EQ(pipeline1_lambda(Rational(4), 4), Rational(1));
}

TEST(Pipeline1Lambda, RejectsRegimeViolation) {
  POSTAL_EXPECT_THROW(pipeline1_lambda(Rational(2), 3), InvalidArgument);
  POSTAL_EXPECT_THROW(pipeline1_lambda(Rational(5, 2), 3), InvalidArgument);
  POSTAL_EXPECT_THROW(pipeline1_lambda(Rational(2), 0), InvalidArgument);
}

// Lemma 16: lambda' = m/lambda, requires m >= lambda.
TEST(Pipeline2Lambda, MatchesLemma16) {
  EXPECT_EQ(pipeline2_lambda(Rational(2), 6), Rational(3));
  EXPECT_EQ(pipeline2_lambda(Rational(5, 2), 5), Rational(2));
  EXPECT_EQ(pipeline2_lambda(Rational(4), 4), Rational(1));
}

TEST(Pipeline2Lambda, RejectsRegimeViolation) {
  POSTAL_EXPECT_THROW(pipeline2_lambda(Rational(4), 3), InvalidArgument);
  POSTAL_EXPECT_THROW(pipeline2_lambda(Rational(4), 0), InvalidArgument);
  POSTAL_EXPECT_THROW(pipeline2_lambda(Rational(1, 2), 3), InvalidArgument);
}

TEST(PipelineRegimes, AgreeAtTheBoundary) {
  // m == lambda: both normalizations give lambda' = 1 (telephone model).
  EXPECT_EQ(pipeline1_lambda(Rational(4), 4), pipeline2_lambda(Rational(4), 4));
}

}  // namespace
}  // namespace postal
