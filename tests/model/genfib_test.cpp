// Tests for the generalized Fibonacci function F_lambda and its index
// function f_lambda (Section 3 of the paper), including the paper's own
// worked example (Figure 1: n = 14, lambda = 5/2).
#include "model/genfib.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cstdint>
#include <vector>

namespace postal {
namespace {

TEST(GenFib, RejectsLambdaBelowOne) {
  EXPECT_THROW(GenFib(Rational(1, 2)), InvalidArgument);
  EXPECT_THROW(GenFib(Rational(0)), InvalidArgument);
  EXPECT_NO_THROW(GenFib(Rational(1)));
}

TEST(GenFib, RejectsNegativeTime) {
  GenFib fib(Rational(2));
  POSTAL_EXPECT_THROW(fib.F(Rational(-1)), InvalidArgument);
}

TEST(GenFib, RejectsZeroN) {
  GenFib fib(Rational(2));
  POSTAL_EXPECT_THROW(fib.f(0), InvalidArgument);
}

TEST(GenFib, IsOneBeforeLambda) {
  GenFib fib(Rational(5, 2));
  EXPECT_EQ(fib.F(Rational(0)), 1u);
  EXPECT_EQ(fib.F(Rational(1)), 1u);
  EXPECT_EQ(fib.F(Rational(2)), 1u);
  EXPECT_EQ(fib.F(Rational(9, 4)), 1u);  // still < 5/2
  EXPECT_EQ(fib.F(Rational(5, 2)), 2u);  // first jump exactly at lambda
}

// lambda = 1: F_1(t) = 2^floor(t), f_1(n) = ceil(log2 n) (binomial tree).
TEST(GenFib, LambdaOneIsPowersOfTwo) {
  GenFib fib(Rational(1));
  for (std::int64_t t = 0; t <= 40; ++t) {
    EXPECT_EQ(fib.F(Rational(t)), 1ULL << t) << "t=" << t;
  }
  EXPECT_EQ(fib.F(Rational(7, 2)), 8u);  // floor(3.5) = 3
}

TEST(GenFib, LambdaOneIndexIsCeilLog2) {
  GenFib fib(Rational(1));
  EXPECT_EQ(fib.f(1), Rational(0));
  EXPECT_EQ(fib.f(2), Rational(1));
  EXPECT_EQ(fib.f(3), Rational(2));
  EXPECT_EQ(fib.f(4), Rational(2));
  EXPECT_EQ(fib.f(5), Rational(3));
  EXPECT_EQ(fib.f(1024), Rational(10));
  EXPECT_EQ(fib.f(1025), Rational(11));
}

// lambda = 2: F_2(t) = Fib(floor(t) + 1) with Fib(1) = 1, Fib(2) = 1, ...
TEST(GenFib, LambdaTwoIsClassicFibonacci) {
  GenFib fib(Rational(2));
  std::vector<std::uint64_t> classic{1, 1};
  while (classic.size() < 40) {
    classic.push_back(classic[classic.size() - 1] + classic[classic.size() - 2]);
  }
  // classic[i] = Fib(i+1) with Fib(1) = Fib(2) = 1, so
  // F_2(t) = Fib(floor(t) + 1) = classic[floor(t)].
  for (std::int64_t t = 0; t < 39; ++t) {
    EXPECT_EQ(fib.F(Rational(t)), classic[static_cast<std::size_t>(t)]) << "t=" << t;
  }
}

// The paper's Figure 1 example: MPS(14, 5/2).
TEST(GenFib, PaperFigure1Anchors) {
  GenFib fib(Rational(5, 2));
  // "the height of the tree is t = 7.5 units of time"
  EXPECT_EQ(fib.f(14), Rational(15, 2));
  // "processor p0 computes j = F(f(14) - 1) = 9"
  EXPECT_EQ(fib.bcast_split(14), 9u);
  // the recipient handles n - j = 5 processors; F(f - lambda) = F(5) = 5
  EXPECT_EQ(fib.F(Rational(5)), 5u);
  // spot values on the half-integer grid
  EXPECT_EQ(fib.F(Rational(13, 2)), 9u);
  EXPECT_EQ(fib.F(Rational(15, 2)), 14u);
  EXPECT_EQ(fib.F(Rational(7)), 12u);
}

TEST(GenFib, RecurrenceHoldsOnTheGrid) {
  for (const Rational lambda : {Rational(1), Rational(3, 2), Rational(5, 2),
                                Rational(3), Rational(7, 3)}) {
    GenFib fib(lambda);
    const std::int64_t q = fib.grid_denominator();
    for (std::int64_t k = 0; k < lambda.num() * (3 / lambda.den() + 1) + 60; ++k) {
      const Rational t(k, q);
      if (t < lambda) continue;
      EXPECT_EQ(fib.F(t), fib.F(t - Rational(1)) + fib.F(t - lambda))
          << "lambda=" << lambda.str() << " t=" << t.str();
    }
  }
}

TEST(GenFib, FIsNondecreasingAndUnbounded) {
  GenFib fib(Rational(7, 2));
  std::uint64_t prev = 0;
  for (std::int64_t k = 0; k <= 200; ++k) {
    const std::uint64_t v = fib.F(Rational(k, 2));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GT(prev, 1'000'000u);
}

// Claim 1(3): F(f(n)) >= n.
TEST(GenFib, IndexInverseUpper) {
  for (const Rational lambda : {Rational(1), Rational(2), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n = 1; n <= 500; ++n) {
      EXPECT_GE(fib.F(fib.f(n)), n) << "lambda=" << lambda.str() << " n=" << n;
    }
  }
}

// Claim 1(4): F(f(n) - eps) < n for any eps > 0 (tested at one grid step).
TEST(GenFib, IndexIsMinimal) {
  for (const Rational lambda : {Rational(1), Rational(2), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    const Rational eps(1, fib.grid_denominator());
    for (std::uint64_t n = 2; n <= 500; ++n) {
      const Rational idx = fib.f(n);
      ASSERT_GE(idx, eps);
      EXPECT_LT(fib.F(idx - eps), n) << "lambda=" << lambda.str() << " n=" << n;
    }
  }
}

// Claim 1(2): f(F(t)) <= t.
TEST(GenFib, IndexOfValueAtMostTime) {
  for (const Rational lambda : {Rational(1), Rational(3, 2), Rational(3)}) {
    GenFib fib(lambda);
    const std::int64_t q = fib.grid_denominator();
    for (std::int64_t k = 0; k <= 100; ++k) {
      const Rational t(k, q);
      const std::uint64_t value = fib.F(t);
      if (value >= kSaturated) break;  // index queries need exact values
      EXPECT_LE(fib.f(value), t) << "lambda=" << lambda.str() << " t=" << t.str();
    }
  }
}

TEST(GenFib, IndexFunctionIsNondecreasing) {
  GenFib fib(Rational(5, 2));
  Rational prev(0);
  for (std::uint64_t n = 1; n <= 2000; ++n) {
    const Rational v = fib.f(n);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// Lemma 3's precondition: 1 <= j <= n-1 for the BCAST split.
TEST(GenFib, BcastSplitIsAlwaysInRange) {
  for (const Rational lambda :
       {Rational(1), Rational(3, 2), Rational(2), Rational(5, 2), Rational(10),
        Rational(17, 5)}) {
    GenFib fib(lambda);
    for (std::uint64_t n = 2; n <= 1000; ++n) {
      const std::uint64_t j = fib.bcast_split(n);
      EXPECT_GE(j, 1u) << "lambda=" << lambda.str() << " n=" << n;
      EXPECT_LE(j, n - 1) << "lambda=" << lambda.str() << " n=" << n;
    }
  }
}

TEST(GenFib, BcastSplitRequiresAtLeastTwo) {
  GenFib fib(Rational(2));
  POSTAL_EXPECT_THROW(fib.bcast_split(0), InvalidArgument);
  POSTAL_EXPECT_THROW(fib.bcast_split(1), InvalidArgument);
}

TEST(GenFib, SplitPlusRemainderCoversN) {
  // n <= F(f(n)) = j + F(f(n) - lambda): the two recursive halves can
  // always cover the whole range (heart of Lemma 4).
  for (const Rational lambda : {Rational(3, 2), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::uint64_t n = 2; n <= 800; ++n) {
      const std::uint64_t j = fib.bcast_split(n);
      const Rational idx = fib.f(n);
      ASSERT_GE(idx, lambda);
      EXPECT_LE(n - j, fib.F(idx - lambda)) << "lambda=" << lambda.str() << " n=" << n;
    }
  }
}

TEST(GenFib, BreakpointsAreExactlyTheJumps) {
  GenFib fib(Rational(5, 2));
  const auto points = fib.breakpoints(Rational(15, 2));
  // From the worked grid: first jump at 5/2, then 7/2, 9/2, 5, 11/2, ...
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.front(), Rational(5, 2));
  std::uint64_t prev = fib.F(Rational(0));
  const Rational half_step(1, 2 * fib.grid_denominator());
  for (const Rational& t : points) {
    EXPECT_GT(fib.F(t), prev) << "breakpoint must jump: t=" << t.str();
    // right-continuity: just before the jump the old value still holds
    EXPECT_EQ(fib.F(t - half_step), prev) << "t=" << t.str();
    prev = fib.F(t);
  }
}

TEST(GenFib, LargeLambdaStepsAreCeilLambdaPlusOneIsh) {
  // For integer lambda, the first lambda+1 distinct values are 1, 2, 3, ...
  GenFib fib(Rational(4));
  EXPECT_EQ(fib.F(Rational(3)), 1u);
  EXPECT_EQ(fib.F(Rational(4)), 2u);
  EXPECT_EQ(fib.F(Rational(5)), 3u);
  EXPECT_EQ(fib.F(Rational(6)), 4u);
  EXPECT_EQ(fib.F(Rational(7)), 5u);
  EXPECT_EQ(fib.F(Rational(8)), 7u);  // F(8) = F(7) + F(4) = 5 + 2
}

TEST(GenFib, SaturationStillAnswersIndexQueries) {
  GenFib fib(Rational(1));
  // 2^63 saturates quickly but f(n) for large n must still be right.
  EXPECT_EQ(fib.f(1ULL << 62), Rational(62));
  EXPECT_EQ(fib.F(Rational(100)), kSaturated);
}

TEST(GenFib, DenseDenominatorGrid) {
  GenFib fib(Rational(13, 7));
  EXPECT_EQ(fib.grid_denominator(), 7);
  EXPECT_EQ(fib.F(Rational(12, 7)), 1u);
  EXPECT_EQ(fib.F(Rational(13, 7)), 2u);
  // f lands on the 1/7 grid (denominator divides 7 after reduction).
  const Rational idx = fib.f(1000);
  EXPECT_TRUE(idx.den() == 1 || idx.den() == 7) << idx.str();
  EXPECT_GE(fib.F(idx), 1000u);
}

}  // namespace
}  // namespace postal
