// Unit coverage for the sharded runtime's mechanics: shard partitioning,
// run introspection (ParRunInfo), fallback plumbing, and the guard rails.
// Byte-identity against the sequential Machine across the full corpus
// lives in tests/paper/par_differential_test.cpp.
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "support/error.hpp"

namespace postal {
namespace {

TEST(ParMachine, SingleRankRunCompletesWithNoEvents) {
  const PostalParams params(1, Rational(2));
  ParMachine par(params, 1);
  par.set_threads(4);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult result = par.run(factory);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_TRUE(result.trace.deliveries().empty());
  EXPECT_TRUE(par.last_run_info().parallel_engine);
  EXPECT_EQ(par.last_run_info().shards, 1u);  // capped at n
}

TEST(ParMachine, RunInfoDescribesTheShardedRun) {
  const PostalParams params(64, Rational(3));
  ParMachine par(params, 1);
  par.set_threads(4);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult result = par.run(factory);
  EXPECT_TRUE(result.trace.covers_all(0));

  const ParRunInfo& info = par.last_run_info();
  EXPECT_TRUE(info.parallel_engine);
  EXPECT_TRUE(info.fallback_reason.empty());
  EXPECT_EQ(info.shards, 4u);
  ASSERT_EQ(info.shard.size(), 4u);
  EXPECT_GT(info.windows, 0u);
  // BCAST floods rank 0's subtree outward: events must cross shards, and
  // every event reaches its destination through a barrier mailbox.
  EXPECT_GT(info.cross_shard_events, 0u);
  EXPECT_GE(info.barrier_events, info.cross_shard_events);
  EXPECT_GT(info.replayed_pops, 0u);
  std::uint64_t pops = 0;
  std::uint64_t mailbox_in = 0;
  for (const ParShardInfo& s : info.shard) {
    pops += s.pops;
    mailbox_in += s.mailbox_in;
  }
  EXPECT_GT(pops, 0u);
  EXPECT_EQ(mailbox_in, info.barrier_events);
}

TEST(ParMachine, ThreadCountIsCappedAtTheRankCount) {
  const PostalParams params(3, Rational(2));
  ParMachine par(params, 1);
  par.set_threads(16);
  EXPECT_EQ(par.threads(), 16u);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult result = par.run(factory);
  EXPECT_EQ(par.last_run_info().shards, 3u);
  EXPECT_TRUE(result.trace.covers_all(0));
}

TEST(ParMachine, SetThreadsZeroMeansOne) {
  ParMachine par(PostalParams(8, Rational(2)), 1);
  par.set_threads(0);
  EXPECT_EQ(par.threads(), 1u);
}

TEST(ParMachine, WindowedEngineRunsAtOneShardToo) {
  // threads == 1 is not a sequential special case: the windowed engine and
  // its merge-replay must run (and agree) at a single shard as well.
  const PostalParams params(32, Rational(5, 2));
  ParMachine par(params, 1);
  par.set_threads(1);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult result = par.run(factory);
  EXPECT_TRUE(par.last_run_info().parallel_engine);
  EXPECT_EQ(par.last_run_info().shards, 1u);
  EXPECT_GT(par.last_run_info().windows, 0u);
  EXPECT_TRUE(result.trace.covers_all(0));
}

TEST(ParMachine, MaxEventsGuardThrowsLikeTheSequentialEngine) {
  const PostalParams params(64, Rational(2));
  Machine machine(params, 1);
  BcastProtocol protocol(params);
  EXPECT_THROW(static_cast<void>(machine.run(protocol, /*max_events=*/8)),
               LogicError);

  ParMachine par(params, 1);
  par.set_threads(4);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  EXPECT_THROW(static_cast<void>(par.run(factory, /*max_events=*/8)), LogicError);
}

TEST(ParMachine, FaultPlanAttachDetachMirrorsMachine) {
  const PostalParams params(12, Rational(2));
  ParMachine par(params, 1);
  EXPECT_FALSE(par.has_faults());
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{3, Rational(1)});
  par.attach_faults(plan);
  EXPECT_TRUE(par.has_faults());
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult faulted = par.run(factory);
  EXPECT_EQ(faulted.faults.crashes_applied, 1u);
  par.detach_faults();
  EXPECT_FALSE(par.has_faults());
  const MachineResult clean = par.run(factory);
  EXPECT_EQ(clean.faults.crashes_applied, 0u);
  EXPECT_TRUE(clean.trace.covers_all(0));
}

TEST(ParMachine, AttachingAnEmptyPlanIsANoOp) {
  ParMachine par(PostalParams(4, Rational(1)), 1);
  par.attach_faults(FaultPlan{});
  EXPECT_FALSE(par.has_faults());
}

TEST(ProtocolFactory, MakesOneInstancePerShard) {
  const PostalParams params(8, Rational(2));
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const std::unique_ptr<Protocol> a = factory.make(0, 2);
  const std::unique_ptr<Protocol> b = factory.make(1, 2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace postal
