// The (time, seq) tie-break contract of both event queues.
//
// EventQueue documents that pops are ordered by (time, seq): strictly
// earliest time first, FIFO among same-time events. These tests pin that
// contract directly, pin the push_at_seq transplant hook, and then verify
// the tick-keyed twin (sim/tick_queue.hpp) against the *same* contract --
// including randomized differential workloads where both queues, fed
// identical pushes, must pop identical payload sequences.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/tick_queue.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(EventQueue, PopsEarliestTimeFirst) {
  EventQueue<int> q;
  q.push(Rational(5, 2), 1);
  q.push(Rational(1), 2);
  q.push(Rational(7, 3), 3);
  EXPECT_EQ(q.next_time(), Rational(1));
  EXPECT_EQ(q.pop().second, 2);
  EXPECT_EQ(q.pop().second, 3);  // 7/3 < 5/2
  EXPECT_EQ(q.pop().second, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimes) {
  // std::priority_queue guarantees nothing for equal keys; the seq stamp
  // must force first-pushed-first.
  EventQueue<int> q;
  for (int i = 0; i < 64; ++i) q.push(Rational(3, 2), i);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(q.pop().second, i) << "FIFO order broken at " << i;
  }
}

TEST(EventQueue, InterleavedPushPopKeepsGlobalOrder) {
  EventQueue<int> q;
  q.push(Rational(1), 10);
  q.push(Rational(2), 20);
  EXPECT_EQ(q.pop().second, 10);
  q.push(Rational(2), 21);  // same time as 20, pushed later
  q.push(Rational(3, 2), 15);
  EXPECT_EQ(q.pop().second, 15);
  EXPECT_EQ(q.pop().second, 20);
  EXPECT_EQ(q.pop().second, 21);
}

TEST(EventQueue, PushAtSeqMergesIntoGlobalOrder) {
  // The transplant hook: explicit seqs must interleave with same-time
  // events exactly as the original stamps dictate, and later push() stamps
  // must stay strictly larger.
  EventQueue<int> q;
  q.push_at_seq(Rational(1), 7, 70);
  q.push_at_seq(Rational(1), 3, 30);
  q.push_at_seq(Rational(1, 2), 9, 90);
  q.push(Rational(1), 100);  // must stamp seq >= 10, i.e. after 30 and 70
  EXPECT_EQ(q.pop().second, 90);
  EXPECT_EQ(q.pop().second, 30);
  EXPECT_EQ(q.pop().second, 70);
  EXPECT_EQ(q.pop().second, 100);
}

TEST(TickEventQueue, PopsEarliestTickFirst) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(50, seq++, 1);
  q.push(10, seq++, 2);
  q.push(23, seq++, 3);
  EXPECT_EQ(q.next_time(), 10);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{10, 2}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{23, 3}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{50, 1}));
  EXPECT_TRUE(q.empty());
}

TEST(TickEventQueue, FifoAmongEqualTicks) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) q.push(17, seq++, i);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(q.pop().second, i) << "FIFO order broken at " << i;
  }
}

TEST(TickEventQueue, FarHorizonEventsReturnInOrder) {
  // Events beyond the ring window overflow into the far heap and must
  // come back in (tick, seq) order when the window jumps to them.
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(0, seq++, 0);
  q.push(5'000, seq++, 1);
  q.push(2'000, seq++, 2);
  q.push(1'000'000'000'000, seq++, 3);
  q.push(5'000, seq++, 4);  // same far tick, later seq
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{0, 0}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{2'000, 2}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{5'000, 1}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{5'000, 4}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{1'000'000'000'000, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(TickEventQueue, RejectsNonMonotonePushes) {
  TickEventQueue<int> q;
  q.push(10, 0, 1);
  EXPECT_EQ(q.pop().first, 10);
  POSTAL_EXPECT_THROW(q.push(5, 1, 2), LogicError);  // before the cursor
  q.push(10, 1, 3);  // at the cursor is fine
  EXPECT_EQ(q.pop().second, 3);
}

TEST(TickEventQueue, ClearKeepsCapacityAndWorks) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  for (Tick t = 0; t < 100; ++t) q.push(t * 7, seq++, static_cast<int>(t));
  for (int i = 0; i < 40; ++i) static_cast<void>(q.pop());
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // Time restarts at zero after clear (it is a per-run structure).
  q.push(0, 0, 123);
  q.push(2'000'000, 1, 456);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{0, 123}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{2'000'000, 456}));
}

TEST(TickEventQueue, DrainHandsBackEverythingInPopOrder) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(30, seq++, 3);
  q.push(10, seq++, 1);
  q.push(10, seq++, 2);
  q.push(99'999, seq++, 4);
  std::vector<Tick> ticks;
  std::vector<std::uint64_t> seqs;
  std::vector<int> payloads;
  q.drain([&](Tick t, std::uint64_t s, int&& v) {
    ticks.push_back(t);
    seqs.push_back(s);
    payloads.push_back(v);
  });
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(ticks, (std::vector<Tick>{10, 10, 30, 99'999}));
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 0, 3}));
  EXPECT_EQ(payloads, (std::vector<int>{1, 2, 3, 4}));
}

// The differential contract check: identical monotone workloads through
// both queues must pop identical payload sequences. Times are carried as
// ticks on one side and as t/3 Rationals on the other (same total order).
TEST(QueueDifferential, RandomizedWorkloadsPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL);
    EventQueue<std::uint64_t> ref;
    TickEventQueue<std::uint64_t> tick;
    std::uint64_t seq = 0;
    Tick now = 0;
    std::uint64_t next_payload = 0;
    std::vector<std::uint64_t> ref_order;
    std::vector<std::uint64_t> tick_order;
    for (int step = 0; step < 4000; ++step) {
      const bool do_push = ref.empty() || rng.uniform(0, 99) < 55;
      if (do_push) {
        // Mostly near-future, occasionally far beyond the ring window.
        const std::uint64_t r = rng.uniform(0, 99);
        const Tick delta = r < 90 ? static_cast<Tick>(rng.uniform(0, 2000))
                                  : static_cast<Tick>(rng.uniform(0, 5'000'000));
        const Tick t = now + delta;
        const std::uint64_t payload = next_payload++;
        ref.push(Rational(t, 3), payload);
        tick.push(t, seq++, payload);
      } else {
        const auto [rt, rv] = ref.pop();
        const auto [tt, tv] = tick.pop();
        EXPECT_EQ(rt, Rational(tt, 3)) << "seed " << seed << " step " << step;
        ref_order.push_back(rv);
        tick_order.push_back(tv);
        now = tt;
      }
    }
    while (!ref.empty()) {
      ref_order.push_back(ref.pop().second);
      ASSERT_FALSE(tick.empty());
      tick_order.push_back(tick.pop().second);
    }
    EXPECT_TRUE(tick.empty());
    EXPECT_EQ(ref_order, tick_order) << "seed " << seed;
  }
}

}  // namespace
}  // namespace postal
