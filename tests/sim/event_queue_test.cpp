// The (time, seq) tie-break contract of both event queues.
//
// EventQueue documents that pops are ordered by (time, seq): strictly
// earliest time first, FIFO among same-time events. These tests pin that
// contract directly, pin the push_at_seq transplant hook, and then verify
// the tick-keyed twin (sim/tick_queue.hpp) against the *same* contract --
// including randomized differential workloads where both queues, fed
// identical pushes, must pop identical payload sequences.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/tick_queue.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(EventQueue, PopsEarliestTimeFirst) {
  EventQueue<int> q;
  q.push(Rational(5, 2), 1);
  q.push(Rational(1), 2);
  q.push(Rational(7, 3), 3);
  EXPECT_EQ(q.next_time(), Rational(1));
  EXPECT_EQ(q.pop().second, 2);
  EXPECT_EQ(q.pop().second, 3);  // 7/3 < 5/2
  EXPECT_EQ(q.pop().second, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimes) {
  // std::priority_queue guarantees nothing for equal keys; the seq stamp
  // must force first-pushed-first.
  EventQueue<int> q;
  for (int i = 0; i < 64; ++i) q.push(Rational(3, 2), i);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(q.pop().second, i) << "FIFO order broken at " << i;
  }
}

TEST(EventQueue, InterleavedPushPopKeepsGlobalOrder) {
  EventQueue<int> q;
  q.push(Rational(1), 10);
  q.push(Rational(2), 20);
  EXPECT_EQ(q.pop().second, 10);
  q.push(Rational(2), 21);  // same time as 20, pushed later
  q.push(Rational(3, 2), 15);
  EXPECT_EQ(q.pop().second, 15);
  EXPECT_EQ(q.pop().second, 20);
  EXPECT_EQ(q.pop().second, 21);
}

TEST(EventQueue, PushAtSeqMergesIntoGlobalOrder) {
  // The transplant hook: explicit seqs must interleave with same-time
  // events exactly as the original stamps dictate, and later push() stamps
  // must stay strictly larger.
  EventQueue<int> q;
  q.push_at_seq(Rational(1), 7, 70);
  q.push_at_seq(Rational(1), 3, 30);
  q.push_at_seq(Rational(1, 2), 9, 90);
  q.push(Rational(1), 100);  // must stamp seq >= 10, i.e. after 30 and 70
  EXPECT_EQ(q.pop().second, 90);
  EXPECT_EQ(q.pop().second, 30);
  EXPECT_EQ(q.pop().second, 70);
  EXPECT_EQ(q.pop().second, 100);
}

TEST(TickEventQueue, PopsEarliestTickFirst) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(50, seq++, 1);
  q.push(10, seq++, 2);
  q.push(23, seq++, 3);
  EXPECT_EQ(q.next_time(), 10);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{10, 2}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{23, 3}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{50, 1}));
  EXPECT_TRUE(q.empty());
}

TEST(TickEventQueue, FifoAmongEqualTicks) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) q.push(17, seq++, i);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(q.pop().second, i) << "FIFO order broken at " << i;
  }
}

TEST(TickEventQueue, FarHorizonEventsReturnInOrder) {
  // Events beyond the ring window overflow into the far heap and must
  // come back in (tick, seq) order when the window jumps to them.
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(0, seq++, 0);
  q.push(5'000, seq++, 1);
  q.push(2'000, seq++, 2);
  q.push(1'000'000'000'000, seq++, 3);
  q.push(5'000, seq++, 4);  // same far tick, later seq
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{0, 0}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{2'000, 2}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{5'000, 1}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{5'000, 4}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{1'000'000'000'000, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(TickEventQueue, RejectsNonMonotonePushes) {
  TickEventQueue<int> q;
  q.push(10, 0, 1);
  EXPECT_EQ(q.pop().first, 10);
  POSTAL_EXPECT_THROW(q.push(5, 1, 2), LogicError);  // before the cursor
  q.push(10, 1, 3);  // at the cursor is fine
  EXPECT_EQ(q.pop().second, 3);
}

TEST(TickEventQueue, ClearKeepsCapacityAndWorks) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  for (Tick t = 0; t < 100; ++t) q.push(t * 7, seq++, static_cast<int>(t));
  for (int i = 0; i < 40; ++i) static_cast<void>(q.pop());
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // Time restarts at zero after clear (it is a per-run structure).
  q.push(0, 0, 123);
  q.push(2'000'000, 1, 456);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{0, 123}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{2'000'000, 456}));
}

TEST(TickEventQueue, DrainHandsBackEverythingInPopOrder) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(30, seq++, 3);
  q.push(10, seq++, 1);
  q.push(10, seq++, 2);
  q.push(99'999, seq++, 4);
  std::vector<Tick> ticks;
  std::vector<std::uint64_t> seqs;
  std::vector<int> payloads;
  q.drain([&](Tick t, std::uint64_t s, int&& v) {
    ticks.push_back(t);
    seqs.push_back(s);
    payloads.push_back(v);
  });
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(ticks, (std::vector<Tick>{10, 10, 30, 99'999}));
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 0, 3}));
  EXPECT_EQ(payloads, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TickEventQueue, PeekTimeDoesNotCommitTheCursor) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(5, seq++, 1);
  q.push(2'000, seq++, 2);
  EXPECT_EQ(q.peek_time(), 5);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{5, 1}));
  // peek sees 2000 but must not move the cursor there: a later push at 100
  // (>= the popped tick, < the peeked one) stays legal. This is exactly
  // ParMachine's barrier pattern -- peek to stop at the window horizon,
  // then push mailbox traffic below the peeked tick.
  EXPECT_EQ(q.peek_time(), 2'000);
  q.push(100, seq++, 3);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{100, 3}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{2'000, 2}));
  // next_time() commits: after it, the same kind of push throws.
  q.push(9'000, seq++, 4);
  EXPECT_EQ(q.next_time(), 9'000);
  POSTAL_EXPECT_THROW(q.push(8'000, seq++, 5), LogicError);
}

TEST(TickEventQueue, PeekTimeReadsTheFarHeapWhenTheRingIsEmpty) {
  TickEventQueue<int> q;
  q.push(3'000'000, 0, 7);  // far beyond the 1024-tick ring window
  EXPECT_EQ(q.peek_time(), 3'000'000);
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{3'000'000, 7}));
}

TEST(TickEventQueue, DrainCurrentTickHandsOutOneTickInFifoOrder) {
  TickEventQueue<int> q;
  std::uint64_t seq = 0;
  q.push(40, seq++, 4);
  q.push(7, seq++, 1);
  q.push(7, seq++, 2);
  std::vector<std::pair<std::uint64_t, int>> got;
  const Tick t = q.drain_current_tick([&](std::uint64_t s, int&& v) {
    got.emplace_back(s, v);
    // A same-tick push from inside the drain joins the tail of the batch,
    // exactly as repeated pop() calls would order it.
    if (v == 1) q.push(7, seq++, 3);
  });
  EXPECT_EQ(t, 7);
  EXPECT_EQ(got, (std::vector<std::pair<std::uint64_t, int>>{
                     {1, 1}, {2, 2}, {3, 3}}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, int>{40, 4}));
  EXPECT_TRUE(q.empty());
}

TEST(TickEventQueue, WindowLoopStraddlesTheRingBoundaryAtABarrierTick) {
  // ParMachine's window loop (peek_time + drain_current_tick until the
  // horizon, then barrier pushes) run across the 1024-bucket ring boundary
  // with the lambda-barrier tick falling just past the wrap: in-window
  // events sit on both sides of tick 1024 (the far side starts in the far
  // heap and is ring-refilled mid-window), and the barrier then pushes at
  // ticks a committed cursor would have rejected.
  constexpr Tick kRing = 1024;  // mirrors TickEventQueue's ring size
  constexpr Tick kLambda = 40;
  const Tick window_start = kRing - kLambda / 2;
  const Tick window_end = window_start + kLambda;  // 1044: past the wrap
  TickEventQueue<Tick> q;
  std::uint64_t seq = 0;
  std::vector<Tick> in_window = {window_start, kRing - 1, kRing, kRing + 1,
                                 window_end - 1};
  for (const Tick t : in_window) q.push(t, seq++, t);
  q.push(window_end, seq++, window_end);  // first at-the-barrier tick
  q.push(kRing * 3, seq++, kRing * 3);    // stays in the far heap

  std::vector<Tick> popped;
  while (!q.empty()) {
    if (q.peek_time() >= window_end) break;
    q.drain_current_tick(
        [&](std::uint64_t, Tick&& v) { popped.push_back(v); });
  }
  std::sort(in_window.begin(), in_window.end());
  EXPECT_EQ(popped, in_window);

  // Barrier traffic: same-tick FIFO behind the pre-existing entry, plus a
  // tick between the horizon and the far-heap resident.
  q.push(window_end, seq++, window_end + 1);
  q.push(window_end + 3, seq++, window_end + 3);
  EXPECT_EQ(q.pop(), (std::pair<Tick, Tick>{window_end, window_end}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, Tick>{window_end, window_end + 1}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, Tick>{window_end + 3, window_end + 3}));
  EXPECT_EQ(q.pop(), (std::pair<Tick, Tick>{kRing * 3, kRing * 3}));
  EXPECT_TRUE(q.empty());
}

// The differential contract check: identical monotone workloads through
// both queues must pop identical payload sequences. Times are carried as
// ticks on one side and as t/3 Rationals on the other (same total order).
TEST(QueueDifferential, RandomizedWorkloadsPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL);
    EventQueue<std::uint64_t> ref;
    TickEventQueue<std::uint64_t> tick;
    std::uint64_t seq = 0;
    Tick now = 0;
    std::uint64_t next_payload = 0;
    std::vector<std::uint64_t> ref_order;
    std::vector<std::uint64_t> tick_order;
    for (int step = 0; step < 4000; ++step) {
      const bool do_push = ref.empty() || rng.uniform(0, 99) < 55;
      if (do_push) {
        // Mostly near-future, occasionally far beyond the ring window.
        const std::uint64_t r = rng.uniform(0, 99);
        const Tick delta = r < 90 ? static_cast<Tick>(rng.uniform(0, 2000))
                                  : static_cast<Tick>(rng.uniform(0, 5'000'000));
        const Tick t = now + delta;
        const std::uint64_t payload = next_payload++;
        ref.push(Rational(t, 3), payload);
        tick.push(t, seq++, payload);
      } else {
        const auto [rt, rv] = ref.pop();
        const auto [tt, tv] = tick.pop();
        EXPECT_EQ(rt, Rational(tt, 3)) << "seed " << seed << " step " << step;
        ref_order.push_back(rv);
        tick_order.push_back(tv);
        now = tt;
      }
    }
    while (!ref.empty()) {
      ref_order.push_back(ref.pop().second);
      ASSERT_FALSE(tick.empty());
      tick_order.push_back(tick.pop().second);
    }
    EXPECT_TRUE(tick.empty());
    EXPECT_EQ(ref_order, tick_order) << "seed " << seed;
  }
}

}  // namespace
}  // namespace postal
