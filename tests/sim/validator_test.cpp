// Tests for the postal-model schedule validator -- including *negative*
// tests: hand-built illegal schedules must be rejected with the right
// violation class, and legal ones accepted.
#include "sim/validator.hpp"

#include <gtest/gtest.h>

#include "sched/bcast.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

PostalParams mps(std::uint64_t n, Rational lambda) { return {n, std::move(lambda)}; }

TEST(Validator, AcceptsMinimalBroadcast) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  const SimReport report = validate_schedule(s, mps(2, Rational(5, 2)));
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, Rational(5, 2));
  EXPECT_TRUE(report.order_preserving);
}

TEST(Validator, EmptyScheduleWithOneProcessorIsOk) {
  const SimReport report = validate_schedule(Schedule(), mps(1, Rational(2)));
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.makespan, Rational(0));
}

TEST(Validator, EmptyScheduleWithManyProcessorsFailsCoverage) {
  const SimReport report = validate_schedule(Schedule(), mps(3, Rational(2)));
  EXPECT_FALSE(report.ok);
}

TEST(Validator, DetectsSendPortConflict) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(1, 2));  // overlaps [0, 1)
  const SimReport report = validate_schedule(s, mps(3, Rational(2)));
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("send port"), std::string::npos);
}

TEST(Validator, BackToBackSendsAreLegal) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(1));
  const SimReport report = validate_schedule(s, mps(3, Rational(2)));
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(Validator, DetectsReceivePortConflict) {
  Schedule s;
  s.add(0, 2, 0, Rational(0));
  s.add(1, 2, 1, Rational(1, 2));  // arrival windows overlap at p2
  ValidatorOptions options;
  options.messages = 2;
  options.require_coverage = false;
  // Give p1 message 1 by origin trickery: use per-message origins.
  options.origins = {0, 1};
  const SimReport report = validate_schedule(s, mps(3, Rational(2)), options);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("receive port"), std::string::npos);
}

TEST(Validator, SimultaneousSendAndReceiveAreLegal) {
  // p1 receives message 0 on [1, 2) while sending message 1 on [3/2, 5/2):
  // distinct ports, explicitly allowed by Definition 1.
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 1, Rational(3, 2));
  ValidatorOptions options;
  options.messages = 2;
  options.require_coverage = false;
  options.origins = {0, 1};
  const SimReport report = validate_schedule(s, mps(3, Rational(2)), options);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(Validator, DetectsCausalityViolation) {
  // p1 forwards the message before it has fully received it.
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 0, Rational(3, 2));  // p1 holds it only from t = 2
  const SimReport report = validate_schedule(s, mps(3, Rational(2)));
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("does not hold"), std::string::npos);
}

TEST(Validator, ForwardingAtExactArrivalIsLegal) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 0, Rational(2));  // exactly at arrival
  const SimReport report = validate_schedule(s, mps(3, Rational(2)));
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(Validator, DetectsMissingCoverage) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  const SimReport report = validate_schedule(s, mps(3, Rational(2)));
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("never received"), std::string::npos);
}

TEST(Validator, CoverageCanBeDisabled) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  ValidatorOptions options;
  options.require_coverage = false;
  const SimReport report = validate_schedule(s, mps(3, Rational(2)), options);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(Validator, DetectsOutOfRangeProcessor) {
  Schedule s;
  s.add(0, 7, 0, Rational(0));
  const SimReport report = validate_schedule(s, mps(3, Rational(2)));
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("out of range"), std::string::npos);
}

TEST(Validator, DetectsOutOfRangeMessage) {
  Schedule s;
  s.add(0, 1, 5, Rational(0));
  ValidatorOptions options;
  options.messages = 2;
  options.require_coverage = false;
  const SimReport report = validate_schedule(s, mps(2, Rational(2)), options);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("message id out of range"), std::string::npos);
}

TEST(Validator, ReportsOrderViolationWithoutFailing) {
  // Delivering M2 before M1 is legal in the model; the report just flags
  // that the schedule is not order-preserving.
  Schedule s;
  s.add(0, 1, 1, Rational(0));
  s.add(0, 1, 0, Rational(1));
  ValidatorOptions options;
  options.messages = 2;
  const SimReport report = validate_schedule(s, mps(2, Rational(2)), options);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_FALSE(report.order_preserving);
}

TEST(Validator, PerMessageOriginsEnableAllToAll) {
  // p0 and p1 exchange their own messages simultaneously.
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 0, 1, Rational(0));
  ValidatorOptions options;
  options.messages = 2;
  options.origins = {0, 1};
  const SimReport report = validate_schedule(s, mps(2, Rational(3)), options);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(Validator, OriginsSizeMismatchThrows) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  ValidatorOptions options;
  options.messages = 2;
  options.origins = {0};  // must be one per message
  POSTAL_EXPECT_THROW(validate_schedule(s, mps(2, Rational(2)), options),
                      InvalidArgument);
}

TEST(Validator, RequiredDeliveriesChecked) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  ValidatorOptions options;
  options.messages = 2;
  options.required = {{1, 0}, {1, 1}};
  const SimReport report = validate_schedule(s, mps(3, Rational(2)), options);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("required M2"), std::string::npos);
}

TEST(Validator, MutatedOptimalSchedulesAreRejected) {
  // Property test: take a known-good BCAST schedule and mutate one event's
  // time to an earlier instant; the validator must catch the (send-port or
  // causality) breach in the overwhelming majority of mutations -- and must
  // never report a *smaller* makespan than the original.
  const PostalParams params = mps(34, Rational(5, 2));
  const Schedule good = bcast_schedule(params);
  const SimReport good_report = validate_schedule(good, params);
  ASSERT_TRUE(good_report.ok);

  Xoshiro256 rng(2024);
  std::uint64_t rejected = 0;
  const std::uint64_t trials = 60;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    Schedule mutated;
    const std::size_t victim = rng.uniform(0, good.size() - 1);
    for (std::size_t i = 0; i < good.size(); ++i) {
      SendEvent e = good.events()[i];
      if (i == victim) {
        // Pull the send earlier by half a unit (or to 0).
        e.t = e.t < Rational(1, 2) ? Rational(0) : e.t - Rational(1, 2);
        if (e.t == good.events()[i].t) continue;
      }
      mutated.add(e);
    }
    const SimReport report = validate_schedule(mutated, params);
    if (!report.ok) ++rejected;
  }
  // Moving a send earlier must essentially always break either causality
  // (it precedes the arrival that enabled it) or a port window.
  EXPECT_GE(rejected, trials * 9 / 10);
}

TEST(Validator, CrashedProcessorIsExemptFromCoverage) {
  // A truncated schedule (nobody ever sends to p2) is legal ONLY when the
  // validator is told p2 crashed; without the crash set the same schedule
  // must fail coverage -- callers cannot silently excuse missing processors.
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  const PostalParams params = mps(3, Rational(2));

  ValidatorOptions with_crash;
  with_crash.crashes = {CrashFault{2, Rational(0)}};
  const SimReport accepted = validate_schedule(s, params, with_crash);
  EXPECT_TRUE(accepted.ok) << accepted.summary();

  const SimReport rejected = validate_schedule(s, params);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.summary().find("p2"), std::string::npos);
}

TEST(Validator, TruncatedBcastScheduleNeedsTheCrashSet) {
  // Crash the root's first relay and truncate exactly what the crash
  // forbids: every send of the relay starting at or after the crash, and
  // (coverage-wise) everything its subtree would have received.
  const Rational lambda(2);
  const PostalParams params = mps(16, lambda);
  const Schedule full = bcast_schedule(params);
  GenFib fib(lambda);
  const auto relay = static_cast<ProcId>(fib.bcast_split(params.n()));
  const Rational crash_at = lambda;  // its copy arrives exactly then: void

  Schedule truncated;
  for (const SendEvent& e : full.events()) {
    if (e.src >= relay && e.t >= crash_at) continue;  // the orphaned subtree
    truncated.add(e);
  }
  // With the whole subtree declared crashed, the truncation is legal.
  ValidatorOptions subtree_dead;
  for (ProcId p = relay; p < params.n(); ++p)
    subtree_dead.crashes.push_back(CrashFault{p, crash_at});
  const SimReport accepted = validate_schedule(truncated, params, subtree_dead);
  EXPECT_TRUE(accepted.ok) << accepted.summary();

  // Without any crash set, the truncated schedule fails coverage.
  EXPECT_FALSE(validate_schedule(truncated, params).ok);

  // Knowing only about the relay still leaves its orphans uncovered.
  ValidatorOptions relay_only;
  relay_only.crashes = {CrashFault{relay, crash_at}};
  EXPECT_FALSE(validate_schedule(truncated, params, relay_only).ok);
}

TEST(Validator, DeliveryAtOrAfterReceiverCrashIsVoid) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));  // arrives at lambda = 2
  const PostalParams params = mps(2, Rational(2));

  ValidatorOptions crashed_on_arrival;
  crashed_on_arrival.crashes = {CrashFault{1, Rational(2)}};
  const SimReport voided = validate_schedule(s, params, crashed_on_arrival);
  EXPECT_TRUE(voided.ok) << voided.summary();  // p1 dead => exempt
  EXPECT_TRUE(voided.trace.deliveries().empty());
  EXPECT_EQ(voided.makespan, Rational(0));

  ValidatorOptions crashed_after;
  crashed_after.crashes = {CrashFault{1, Rational(5, 2)}};
  const SimReport landed = validate_schedule(s, params, crashed_after);
  EXPECT_TRUE(landed.ok) << landed.summary();
  ASSERT_EQ(landed.trace.deliveries().size(), 1u);
  EXPECT_EQ(landed.makespan, Rational(2));
}

TEST(Validator, SendAtOrAfterSenderCrashIsAViolation) {
  const PostalParams params = mps(2, Rational(2));
  Schedule s;
  s.add(0, 1, 0, Rational(1));
  ValidatorOptions options;
  options.crashes = {CrashFault{0, Rational(1)}};
  const SimReport report = validate_schedule(s, params, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("crashed"), std::string::npos);

  // Starting strictly before the crash is fine (the message still leaves).
  Schedule before;
  before.add(0, 1, 0, Rational(1, 2));
  options.crashes = {CrashFault{0, Rational(1)}};
  const SimReport ok_report = validate_schedule(before, params, options);
  EXPECT_TRUE(ok_report.ok) << ok_report.summary();
}

TEST(Validator, FifoReceiveSerializesWhatStrictModeRejects) {
  // Two senders hit p2 with overlapping receive windows: [4, 5) from the
  // t=3 send and [9/2, 11/2) from the t=7/2 send.
  const PostalParams params = mps(3, Rational(2));
  Schedule s;
  s.add(0, 1, 0, Rational(0));      // p1 holds the message at t=2
  s.add(1, 2, 0, Rational(3));      // arrives 5
  s.add(0, 2, 0, Rational(7, 2));   // nominal arrival 11/2 -- collides

  const SimReport strict = validate_schedule(s, params);
  EXPECT_FALSE(strict.ok);
  EXPECT_NE(strict.summary().find("receive port"), std::string::npos);

  ValidatorOptions fifo;
  fifo.fifo_receive = true;
  const SimReport relaxed = validate_schedule(s, params, fifo);
  EXPECT_TRUE(relaxed.ok) << relaxed.summary();
  // The collided delivery is pushed behind the busy port: [5, 6).
  EXPECT_EQ(relaxed.makespan, Rational(6));
}

TEST(Validator, SummaryListsEachViolation) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(0));  // port conflict AND p2's double use
  const SimReport report = validate_schedule(s, mps(4, Rational(2)));
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("violation"), std::string::npos);
  EXPECT_GE(report.violations.size(), 2u);  // port + missing coverage for p3
}

}  // namespace
}  // namespace postal
