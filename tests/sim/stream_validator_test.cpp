// Tests for the streaming schedule validator (sim/stream_validator.hpp):
// oracle-emitted streams must be accepted at every chunking, and every
// corruption class -- wrong time, wrong sender, wrong receiver, duplicate,
// gap, truncation, events past the certified range -- must be flagged.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/oracle.hpp"
#include "sim/stream_validator.hpp"
#include "support/error.hpp"

namespace postal {
namespace {

std::vector<StreamEvent> full_stream(const oracle::ScheduleOracle& oracle) {
  return oracle.events(0, oracle.n());
}

StreamReport run_stream(const oracle::ScheduleOracle& oracle,
                        const std::vector<StreamEvent>& events) {
  StreamingValidator validator(oracle);
  validator.feed(events);
  return validator.finish();
}

TEST(StreamValidatorTest, AcceptsOracleStreamAtEveryChunking) {
  const oracle::ScheduleOracle oracle(64, Rational(5, 2));
  const std::vector<StreamEvent> events = full_stream(oracle);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, events.size()}) {
    StreamingValidator validator(oracle);
    for (std::size_t i = 0; i < events.size(); i += chunk) {
      const std::size_t count = std::min(chunk, events.size() - i);
      validator.feed(events.data() + i, count);
    }
    const StreamReport report = validator.finish();
    EXPECT_TRUE(report.ok) << "chunk=" << chunk << ": " << report.summary();
    EXPECT_EQ(report.events_checked, events.size());
    EXPECT_EQ(report.last_arrival, oracle.makespan());
  }
}

TEST(StreamValidatorTest, AcceptsEmptyChunksAndSubRanges) {
  const oracle::ScheduleOracle oracle(64, Rational(5, 2));
  StreamingValidator validator(oracle, 10, 20);
  validator.feed(nullptr, 0);
  validator.feed(oracle.events(10, 20));
  validator.feed({});
  const StreamReport report = validator.finish();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.events_checked, 10u);
}

TEST(StreamValidatorTest, FlagsWrongSendTime) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  events[5].t = events[5].t + Rational(1, 7);  // off the slot grid
  const StreamReport report = run_stream(oracle, events);
  EXPECT_FALSE(report.ok);
}

TEST(StreamValidatorTest, FlagsSendBeforeSenderInformed) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  // Find an event whose sender is informed strictly after t = 0 and pull
  // its send to before that inform time (staying on the unit grid).
  bool mutated = false;
  for (StreamEvent& e : events) {
    const Rational inform = oracle.inform_time(e.src);
    if (inform >= Rational(1)) {
      e.t = inform - Rational(1);
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(run_stream(oracle, events).ok);
}

TEST(StreamValidatorTest, FlagsWrongSender) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  events[8].src = events[8].src == 0 ? 1 : 0;
  EXPECT_FALSE(run_stream(oracle, events).ok);
}

TEST(StreamValidatorTest, FlagsDuplicateReceiver) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  events.insert(events.begin() + 4, events[3]);
  EXPECT_FALSE(run_stream(oracle, events).ok);
}

TEST(StreamValidatorTest, FlagsGapInCoverage) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  events.erase(events.begin() + 10);
  EXPECT_FALSE(run_stream(oracle, events).ok);
}

TEST(StreamValidatorTest, FlagsTruncatedStream) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  events.pop_back();
  const StreamReport report = run_stream(oracle, events);
  EXPECT_FALSE(report.ok);  // finish() notices the run stopped early
}

TEST(StreamValidatorTest, FlagsEventPastCertifiedRange) {
  const oracle::ScheduleOracle oracle(32, Rational(2));
  std::vector<StreamEvent> events = oracle.events(1, 5);
  events.push_back(oracle.events(5, 6).front());  // rank 5 is out of range
  StreamingValidator validator(oracle, 1, 5);
  validator.feed(events);
  EXPECT_FALSE(validator.finish().ok);
}

TEST(StreamValidatorTest, FlagsBadEndpoints) {
  const oracle::ScheduleOracle oracle(8, Rational(2));
  std::vector<StreamEvent> events = full_stream(oracle);
  events[2].dst = 99;  // receiver outside [0, n)
  EXPECT_FALSE(run_stream(oracle, events).ok);

  events = full_stream(oracle);
  events[2].src = events[2].dst;  // self-send
  EXPECT_FALSE(run_stream(oracle, events).ok);
}

TEST(StreamValidatorTest, ViolationCapSetsTruncatedFlag) {
  const oracle::ScheduleOracle oracle(256, Rational(1));
  std::vector<StreamEvent> events = full_stream(oracle);
  for (StreamEvent& e : events) e.t = e.t + Rational(1, 3);  // corrupt all
  const StreamReport report = run_stream(oracle, events);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.violations.size(), StreamingValidator::kMaxViolations);
}

TEST(StreamValidatorTest, LifecycleErrors) {
  const oracle::ScheduleOracle oracle(8, Rational(2));
  EXPECT_THROW(StreamingValidator(oracle, 5, 3), InvalidArgument);
  EXPECT_THROW(StreamingValidator(oracle, 0, 9), InvalidArgument);
  StreamingValidator validator(oracle);
  validator.feed(full_stream(oracle));
  (void)validator.finish();
  EXPECT_THROW((void)validator.finish(), LogicError);
  EXPECT_THROW(validator.feed(nullptr, 0), LogicError);
}

}  // namespace
}  // namespace postal
