// Mutation fuzzing of the schedule validator: start from a known-legal
// BCAST schedule for a seeded random MPS(n, lambda), corrupt exactly one
// send, and demand the validator (a) never crashes, (b) flags exactly the
// violation class the mutation injects, and (c) nothing else.
//
// The mutations lean on BCAST's structure (each non-root processor
// receives exactly once; a recipient's first send starts exactly at its
// arrival time; a sender's sends occupy one contiguous block of unit
// intervals), which lets each recipe break one clause of Definitions 1-2
// in isolation:
//
//   shift-start      a non-root sender's first send moved one unit before
//                    its own arrival -> causality, and only causality (the
//                    shifted interval clears the sender's other sends);
//   duplicate-port   a sender's second send moved onto its first send's
//                    interval -> send-port exclusivity, and only that (the
//                    start still postdates the sender's arrival);
//   retarget-receive a send whose target is a leaf redirected at a
//                    processor whose receive window overlaps -> receive-
//                    port exclusivity (coverage checking is disabled for
//                    this recipe: the abandoned leaf would otherwise add a
//                    second, unrelated violation).
//
// scripts/check.sh --sanitize re-runs this binary under ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sched/bcast.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"

namespace postal {
namespace {

struct Instance {
  PostalParams params;
  Schedule schedule;
  std::map<ProcId, Rational> arrival;  // when each non-root proc receives
};

Instance random_instance(Xoshiro256& rng) {
  const std::uint64_t n = rng.uniform(3, 48);
  const std::uint64_t q = rng.uniform(1, 3);
  const std::uint64_t p = rng.uniform(q, 4 * q);  // lambda in [1, 4]
  const PostalParams params(
      n, Rational(static_cast<std::int64_t>(p), static_cast<std::int64_t>(q)));
  Instance inst{params, bcast_schedule(params), {}};
  for (const SendEvent& e : inst.schedule.events()) {
    inst.arrival.emplace(e.dst, e.t + params.lambda());
  }
  return inst;
}

// Index of processor `who`'s k-th earliest send, or npos.
std::size_t nth_send_of(const Schedule& s, ProcId who, std::size_t k) {
  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < s.events().size(); ++i) {
    if (s.events()[i].src == who) mine.push_back(i);
  }
  std::sort(mine.begin(), mine.end(), [&s](std::size_t a, std::size_t b) {
    return s.events()[a].t < s.events()[b].t;
  });
  return k < mine.size() ? mine[k] : static_cast<std::size_t>(-1);
}

Schedule with_event(const Schedule& base, std::size_t index, SendEvent patched) {
  Schedule out;
  for (std::size_t i = 0; i < base.events().size(); ++i) {
    out.add(i == index ? patched : base.events()[i]);
  }
  return out;
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(ValidatorFuzzTest, UnmutatedSchedulesAlwaysValidate) {
  Xoshiro256 rng(0xBA5Eu);
  for (int iter = 0; iter < 60; ++iter) {
    const Instance inst = random_instance(rng);
    const SimReport report = validate_schedule(inst.schedule, inst.params);
    ASSERT_TRUE(report.ok) << "n=" << inst.params.n()
                           << " lambda=" << inst.params.lambda() << "\n"
                           << report.summary();
  }
}

TEST(ValidatorFuzzTest, ShiftedStartFlagsExactlyCausality) {
  Xoshiro256 rng(0xCA05Eu);
  int mutated = 0;
  for (int iter = 0; iter < 200 && mutated < 80; ++iter) {
    const Instance inst = random_instance(rng);
    // Non-root senders, i.e. processors that both receive and send.
    std::vector<ProcId> senders;
    for (const auto& [p, t] : inst.arrival) {
      if (nth_send_of(inst.schedule, p, 0) != static_cast<std::size_t>(-1)) {
        senders.push_back(p);
      }
    }
    if (senders.empty()) continue;
    const ProcId s = senders[rng.uniform(0, senders.size() - 1)];
    const std::size_t index = nth_send_of(inst.schedule, s, 0);
    SendEvent e = inst.schedule.events()[index];
    ASSERT_EQ(e.t, inst.arrival.at(s));  // BCAST: first send at arrival
    e.t = e.t - Rational(1);  // one full unit: clears s's own send block
    const Schedule bad = with_event(inst.schedule, index, e);

    SimReport report;
    ASSERT_NO_THROW(report = validate_schedule(bad, inst.params));
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.violations.size(), 1u) << report.summary();
    EXPECT_TRUE(contains(report.violations[0], "sender does not hold the message yet"))
        << report.violations[0];
    ++mutated;
  }
  EXPECT_GE(mutated, 30);
}

TEST(ValidatorFuzzTest, DuplicatePortUseFlagsExactlySendPort) {
  Xoshiro256 rng(0xD0B1Eu);
  int mutated = 0;
  for (int iter = 0; iter < 200 && mutated < 80; ++iter) {
    const Instance inst = random_instance(rng);
    // Any processor with at least two sends (the root always qualifies for
    // n >= 3).
    std::vector<ProcId> senders;
    for (ProcId p = 0; p < inst.params.n(); ++p) {
      if (nth_send_of(inst.schedule, p, 1) != static_cast<std::size_t>(-1)) {
        senders.push_back(p);
      }
    }
    ASSERT_FALSE(senders.empty());
    const ProcId s = senders[rng.uniform(0, senders.size() - 1)];
    const std::size_t first = nth_send_of(inst.schedule, s, 0);
    const std::size_t second = nth_send_of(inst.schedule, s, 1);
    SendEvent e = inst.schedule.events()[second];
    e.t = inst.schedule.events()[first].t;  // exact duplicate port use
    const Schedule bad = with_event(inst.schedule, second, e);

    SimReport report;
    ASSERT_NO_THROW(report = validate_schedule(bad, inst.params));
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.violations.size(), 1u) << report.summary();
    EXPECT_TRUE(contains(report.violations[0],
                         "send port of p" + std::to_string(s) + " already busy"))
        << report.violations[0];
    ++mutated;
  }
  EXPECT_GE(mutated, 30);
}

TEST(ValidatorFuzzTest, RetargetedSendFlagsExactlyReceivePort) {
  Xoshiro256 rng(0x4EC41Fu);
  int mutated = 0;
  for (int iter = 0; iter < 400 && mutated < 80; ++iter) {
    const Instance inst = random_instance(rng);
    const auto& events = inst.schedule.events();
    // A send aimed at a *leaf* (no follow-on sends, so retargeting it
    // cannot secondarily break causality) whose receive window overlaps
    // another processor's: |t_i - t_j| < 1.
    std::size_t victim = static_cast<std::size_t>(-1);
    ProcId new_dst = 0;
    for (std::size_t j = 0; j < events.size() && victim == static_cast<std::size_t>(-1);
         ++j) {
      if (nth_send_of(inst.schedule, events[j].dst, 0) != static_cast<std::size_t>(-1)) {
        continue;  // dst sends later: not a leaf
      }
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i == j || events[i].dst == events[j].dst) continue;
        const Rational gap = events[i].t < events[j].t ? events[j].t - events[i].t
                                                       : events[i].t - events[j].t;
        if (gap < Rational(1)) {
          victim = j;
          new_dst = events[i].dst;
          break;
        }
      }
    }
    if (victim == static_cast<std::size_t>(-1)) continue;
    SendEvent e = events[victim];
    e.dst = new_dst;
    const Schedule bad = with_event(inst.schedule, victim, e);

    // Coverage checking off: the abandoned leaf would add an unrelated
    // "never received" violation on top of the port clash under test.
    ValidatorOptions options;
    options.require_coverage = false;
    SimReport report;
    ASSERT_NO_THROW(report = validate_schedule(bad, inst.params, options));
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.violations.size(), 1u) << report.summary();
    EXPECT_TRUE(contains(report.violations[0], "receive port of p" +
                                                   std::to_string(new_dst) +
                                                   " already busy"))
        << report.violations[0];
    ++mutated;
  }
  EXPECT_GE(mutated, 30);
}

TEST(ValidatorFuzzTest, DroppedSendFlagsCoverage) {
  Xoshiro256 rng(0xC0FEu);
  for (int iter = 0; iter < 60; ++iter) {
    const Instance inst = random_instance(rng);
    const auto& events = inst.schedule.events();
    // Remove a send aimed at a leaf: exactly that processor goes uncovered.
    std::size_t victim = static_cast<std::size_t>(-1);
    for (std::size_t j = 0; j < events.size(); ++j) {
      if (nth_send_of(inst.schedule, events[j].dst, 0) == static_cast<std::size_t>(-1)) {
        victim = j;
        break;
      }
    }
    ASSERT_NE(victim, static_cast<std::size_t>(-1));
    Schedule bad;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i != victim) bad.add(events[i]);
    }
    SimReport report;
    ASSERT_NO_THROW(report = validate_schedule(bad, inst.params));
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.violations.size(), 1u) << report.summary();
    EXPECT_TRUE(contains(report.violations[0],
                         "p" + std::to_string(events[victim].dst) + " never received"))
        << report.violations[0];
  }
}

}  // namespace
}  // namespace postal
