// Tests for the event-driven Machine runtime and the event-driven protocol
// implementations of BCAST and DTREE. The key cross-validation: the
// event-driven runs must produce exactly the schedules the analytic
// generators produce, and those runs must validate under the postal model.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "sched/bcast.hpp"
#include "sched/dtree.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/protocols/dtree_protocol.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

/// A protocol that does nothing; the machine must terminate immediately.
class IdleProtocol final : public Protocol {
 public:
  void on_receive(MachineContext&, const Packet&) override {}
};

/// Origin sends one packet to each other processor, round robin.
class FloodOnceProtocol final : public Protocol {
 public:
  void on_start(MachineContext& ctx) override {
    if (ctx.self() != 0) return;
    for (ProcId p = 1; p < ctx.params().n(); ++p) ctx.send(p, Packet{0, 0, 0});
  }
  void on_receive(MachineContext&, const Packet&) override {}
};

/// Two processors bounce a packet forever -- must hit the runaway guard.
class PingPongProtocol final : public Protocol {
 public:
  void on_start(MachineContext& ctx) override {
    if (ctx.self() == 0) ctx.send(1, Packet{0, 0, 0});
  }
  void on_receive(MachineContext& ctx, const Packet& packet) override {
    ctx.send(ctx.self() == 0 ? 1 : 0, packet);
  }
};

TEST(Machine, IdleProtocolTerminatesEmpty) {
  Machine machine(PostalParams(4, Rational(2)), 1);
  IdleProtocol protocol;
  const MachineResult result = machine.run(protocol);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.trace.makespan(), Rational(0));
}

TEST(Machine, OutputPortSerializesQueuedSends) {
  Machine machine(PostalParams(5, Rational(7, 2)), 1);
  FloodOnceProtocol protocol;
  const MachineResult result = machine.run(protocol);
  ASSERT_EQ(result.schedule.size(), 4u);
  // Sends requested simultaneously leave at 0, 1, 2, 3.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.schedule.events()[i].t, Rational(static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(result.trace.makespan(), Rational(3) + Rational(7, 2));
}

TEST(Machine, RunawayProtocolHitsGuard) {
  Machine machine(PostalParams(2, Rational(1)), 1);
  PingPongProtocol protocol;
  POSTAL_EXPECT_THROW(machine.run(protocol, /*max_events=*/100), LogicError);
}

TEST(Machine, RejectsBadDestination) {
  class BadDst final : public Protocol {
   public:
    void on_start(MachineContext& ctx) override {
      if (ctx.self() == 0) ctx.send(99, Packet{0, 0, 0});
    }
    void on_receive(MachineContext&, const Packet&) override {}
  };
  Machine machine(PostalParams(2, Rational(1)), 1);
  BadDst protocol;
  POSTAL_EXPECT_THROW(machine.run(protocol), InvalidArgument);
}

TEST(Machine, RejectsSelfSend) {
  class SelfSend final : public Protocol {
   public:
    void on_start(MachineContext& ctx) override {
      if (ctx.self() == 0) ctx.send(0, Packet{0, 0, 0});
    }
    void on_receive(MachineContext&, const Packet&) override {}
  };
  Machine machine(PostalParams(2, Rational(1)), 1);
  SelfSend protocol;
  POSTAL_EXPECT_THROW(machine.run(protocol), InvalidArgument);
}

TEST(Machine, RejectsBadMessageId) {
  class BadMsg final : public Protocol {
   public:
    void on_start(MachineContext& ctx) override {
      if (ctx.self() == 0) ctx.send(1, Packet{7, 0, 0});
    }
    void on_receive(MachineContext&, const Packet&) override {}
  };
  Machine machine(PostalParams(2, Rational(1)), /*messages=*/2);
  BadMsg protocol;
  POSTAL_EXPECT_THROW(machine.run(protocol), InvalidArgument);
}

TEST(Machine, ReusableAcrossRuns) {
  Machine machine(PostalParams(5, Rational(2)), 1);
  FloodOnceProtocol protocol;
  const MachineResult a = machine.run(protocol);
  const MachineResult b = machine.run(protocol);
  EXPECT_EQ(a.schedule.events(), b.schedule.events());
}

// ---------------------------------------------------------------------------
// Event-driven BCAST == analytic BCAST.
// ---------------------------------------------------------------------------

class BcastProtocolSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Rational>> {};

TEST_P(BcastProtocolSweep, EventDrivenMatchesAnalytic) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  Machine machine(params, 1);
  BcastProtocol protocol(params);
  const MachineResult result = machine.run(protocol);

  const Schedule analytic = bcast_schedule(params);
  EXPECT_EQ(result.schedule.events(), analytic.events());

  const SimReport report = validate_schedule(result.schedule, params);
  ASSERT_TRUE(report.ok) << report.summary();
  GenFib fib(lambda);
  EXPECT_EQ(result.trace.makespan(), fib.f(n));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BcastProtocolSweep,
    ::testing::Values(std::pair<std::uint64_t, Rational>{1, Rational(2)},
                      std::pair<std::uint64_t, Rational>{2, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{14, Rational(5, 2)},
                      std::pair<std::uint64_t, Rational>{64, Rational(1)},
                      std::pair<std::uint64_t, Rational>{100, Rational(3)},
                      std::pair<std::uint64_t, Rational>{257, Rational(7, 2)},
                      std::pair<std::uint64_t, Rational>{33, Rational(9, 4)}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.first) + "_lam" +
             std::to_string(pinfo.param.second.num()) + "_" +
             std::to_string(pinfo.param.second.den());
    });

TEST(BcastProtocol, NonZeroOriginRejected) {
  const PostalParams params(4, Rational(2));
  EXPECT_THROW(BcastProtocol(params, 2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Event-driven DTREE == analytic DTREE.
// ---------------------------------------------------------------------------

struct DTreeProtoCase {
  std::uint64_t n;
  std::uint32_t m;
  std::uint64_t d;
  Rational lambda;
};

class DTreeProtocolSweep : public ::testing::TestWithParam<DTreeProtoCase> {};

TEST_P(DTreeProtocolSweep, EventDrivenMatchesAnalytic) {
  const auto& [n, m, d, lambda] = GetParam();
  const PostalParams params(n, lambda);
  Machine machine(params, m);
  DTreeProtocol protocol(params, m, d);
  const MachineResult result = machine.run(protocol);

  const Schedule analytic = dtree_schedule(params, m, d);
  EXPECT_EQ(result.schedule.events(), analytic.events());

  ValidatorOptions options;
  options.messages = m;
  const SimReport report = validate_schedule(result.schedule, params, options);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(result.trace.makespan(), predict_dtree(params, m, d));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DTreeProtocolSweep,
    ::testing::Values(DTreeProtoCase{10, 4, 3, Rational(5, 2)},
                      DTreeProtoCase{10, 4, 1, Rational(5, 2)},
                      DTreeProtoCase{10, 4, 9, Rational(5, 2)},
                      DTreeProtoCase{64, 8, 2, Rational(1)},
                      DTreeProtoCase{81, 3, 3, Rational(7, 2)},
                      DTreeProtoCase{33, 5, 4, Rational(2)}),
    [](const ::testing::TestParamInfo<DTreeProtoCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_m" + std::to_string(pinfo.param.m) +
             "_d" + std::to_string(pinfo.param.d) + "_lam" +
             std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

}  // namespace
}  // namespace postal
