// Tests for Trace: coverage, order preservation, arrival bookkeeping.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace postal {
namespace {

Delivery mk(ProcId src, ProcId dst, MsgId msg, Rational start, Rational arrive) {
  return Delivery{src, dst, msg, std::move(start), std::move(arrive)};
}

TEST(Trace, StartsEmpty) {
  const Trace t(3, 2);
  EXPECT_EQ(t.makespan(), Rational(0));
  EXPECT_FALSE(t.covers_all(0));
  EXPECT_TRUE(t.order_preserving());
  EXPECT_FALSE(t.arrival(1, 0).has_value());
}

TEST(Trace, RecordsFirstArrival) {
  Trace t(3, 1);
  t.record(mk(0, 1, 0, Rational(0), Rational(2)));
  t.record(mk(2, 1, 0, Rational(3), Rational(5)));  // duplicate, later
  ASSERT_TRUE(t.arrival(1, 0).has_value());
  EXPECT_EQ(*t.arrival(1, 0), Rational(2));
  EXPECT_EQ(t.makespan(), Rational(5));
}

TEST(Trace, EarlierDuplicateWins) {
  Trace t(3, 1);
  t.record(mk(0, 1, 0, Rational(3), Rational(5)));
  t.record(mk(2, 1, 0, Rational(0), Rational(2)));
  EXPECT_EQ(*t.arrival(1, 0), Rational(2));
}

TEST(Trace, CoverageExcludesOrigin) {
  Trace t(3, 1);
  t.record(mk(0, 1, 0, Rational(0), Rational(2)));
  EXPECT_FALSE(t.covers_all(0));
  t.record(mk(1, 2, 0, Rational(2), Rational(4)));
  EXPECT_TRUE(t.covers_all(0));
  EXPECT_FALSE(t.covers_all(1)) << "p0 never received anything";
}

TEST(Trace, UncoveredListsMissingProcessors) {
  Trace t(4, 2);
  t.record(mk(0, 1, 0, Rational(0), Rational(2)));
  t.record(mk(0, 1, 1, Rational(1), Rational(3)));
  const auto missing = t.uncovered(0);
  EXPECT_EQ(missing, (std::vector<ProcId>{2, 3}));
}

TEST(Trace, OrderPreservationHolds) {
  Trace t(2, 3);
  t.record(mk(0, 1, 0, Rational(0), Rational(2)));
  t.record(mk(0, 1, 1, Rational(1), Rational(3)));
  t.record(mk(0, 1, 2, Rational(2), Rational(4)));
  EXPECT_TRUE(t.order_preserving());
  EXPECT_TRUE(t.order_violations().empty());
}

TEST(Trace, OrderViolationDetected) {
  Trace t(2, 2);
  t.record(mk(0, 1, 1, Rational(0), Rational(2)));  // M2 first
  t.record(mk(0, 1, 0, Rational(1), Rational(3)));
  EXPECT_FALSE(t.order_preserving());
  const auto violations = t.order_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("p1"), std::string::npos);
}

TEST(Trace, SimultaneousArrivalIsOrderPreserving) {
  // Equal first-arrival times do not violate order (not strictly earlier).
  Trace t(2, 2);
  t.record(mk(0, 1, 0, Rational(0), Rational(2)));
  t.record(mk(0, 1, 1, Rational(0), Rational(2)));
  EXPECT_TRUE(t.order_preserving());
}

TEST(Trace, RejectsOutOfRangeIds) {
  Trace t(2, 1);
  EXPECT_THROW(t.record(mk(0, 5, 0, Rational(0), Rational(1))), InvalidArgument);
  EXPECT_THROW(t.record(mk(0, 1, 3, Rational(0), Rational(1))), InvalidArgument);
  POSTAL_EXPECT_THROW(t.arrival(5, 0), InvalidArgument);
  POSTAL_EXPECT_THROW(t.arrival(0, 9), InvalidArgument);
}

TEST(Trace, ZeroMessagesAlwaysCovered) {
  const Trace t(5, 0);
  EXPECT_TRUE(t.covers_all(0));
  EXPECT_TRUE(t.order_preserving());
}

TEST(Trace, ZeroDeliveriesHasMakespanZero) {
  // The documented convention (see Trace::makespan): a trace with no
  // deliveries completes at t = 0. The canonical producer is broadcasting
  // among n = 1 processors -- the origin already holds the message, nothing
  // is sent, and the run is legitimately done at time zero.
  const Trace t(1, 1);
  EXPECT_TRUE(t.deliveries().empty());
  EXPECT_EQ(t.makespan(), Rational(0));
  EXPECT_TRUE(t.covers_all(0));  // no non-origin processor to reach
  EXPECT_TRUE(t.order_preserving());
}

}  // namespace
}  // namespace postal
