// Cross-validation of the event-driven multi-message protocols against the
// analytic schedule generators -- the reproduction of the paper's claim
// that REPEAT, PACK, and PIPELINE are "practical event-driven algorithms
// that preserve the order of messages".
#include "sim/protocols/multi_protocols.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sched/pack.hpp"
#include "sched/pipeline.hpp"
#include "sched/repeat.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

struct ProtoCase {
  std::uint64_t n;
  std::uint32_t m;
  Rational lambda;
};

std::string proto_name(const ::testing::TestParamInfo<ProtoCase>& pinfo) {
  return "n" + std::to_string(pinfo.param.n) + "_m" + std::to_string(pinfo.param.m) +
         "_lam" + std::to_string(pinfo.param.lambda.num()) + "_" +
         std::to_string(pinfo.param.lambda.den());
}

SimReport run_and_validate(Protocol& protocol, const PostalParams& params,
                           std::uint32_t m, Schedule* out = nullptr) {
  Machine machine(params, m);
  const MachineResult result = machine.run(protocol);
  if (out != nullptr) *out = result.schedule;
  ValidatorOptions options;
  options.messages = m;
  return validate_schedule(result.schedule, params, options);
}

// ---------------------------------------------------------------------------
// REPEAT
// ---------------------------------------------------------------------------

class RepeatProtoSweep : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(RepeatProtoSweep, EventDrivenIsValidAndAtMostLemma10) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  RepeatProtocol protocol(params, m);
  Schedule schedule;
  const SimReport report = run_and_validate(protocol, params, m, &schedule);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  GenFib fib(lambda);
  // "Immediately after the last copy" can beat Lemma 10's stride at
  // fractional lambda (see E14); it can never be slower.
  EXPECT_LE(report.makespan, predict_repeat(fib, n, m));
  if (lambda.is_integer()) {
    // Integer lambda: the root's chain length is exactly f - lambda + 1,
    // so the event-driven run coincides with Lemma 10's schedule.
    EXPECT_EQ(schedule.events(), repeat_schedule(params, m).events());
    EXPECT_EQ(report.makespan, predict_repeat(fib, n, m));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RepeatProtoSweep,
    ::testing::Values(ProtoCase{2, 3, Rational(2)}, ProtoCase{14, 3, Rational(5, 2)},
                      ProtoCase{9, 5, Rational(1)}, ProtoCase{33, 4, Rational(3)},
                      ProtoCase{64, 2, Rational(4)}, ProtoCase{5, 4, Rational(5, 2)},
                      ProtoCase{8, 6, Rational(5, 2)}, ProtoCase{20, 3, Rational(9, 4)}),
    proto_name);

TEST(RepeatProtocol, FractionalLambdaCanBeatLemma10) {
  // The E14 finding, reproduced event-driven: at n = 8, lambda = 5/2 the
  // root's chain has 4 sends but Lemma 10's stride is 9/2, so the literal
  // event-driven REPEAT finishes strictly earlier.
  const PostalParams params(8, Rational(5, 2));
  const std::uint32_t m = 4;
  RepeatProtocol protocol(params, m);
  const SimReport report = run_and_validate(protocol, params, m);
  ASSERT_TRUE(report.ok) << report.summary();
  GenFib fib(params.lambda());
  EXPECT_LT(report.makespan, predict_repeat(fib, 8, m));
}

// ---------------------------------------------------------------------------
// PACK
// ---------------------------------------------------------------------------

class PackProtoSweep : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(PackProtoSweep, EventDrivenMatchesAnalytic) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  PackProtocol protocol(params, m);
  Schedule schedule;
  const SimReport report = run_and_validate(protocol, params, m, &schedule);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  EXPECT_EQ(schedule.events(), pack_schedule(params, m).events());
  EXPECT_EQ(report.makespan, predict_pack(lambda, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PackProtoSweep,
    ::testing::Values(ProtoCase{2, 3, Rational(2)}, ProtoCase{14, 3, Rational(5, 2)},
                      ProtoCase{9, 4, Rational(1)}, ProtoCase{33, 6, Rational(3)},
                      ProtoCase{64, 2, Rational(4)}, ProtoCase{20, 9, Rational(13, 4)}),
    proto_name);

// ---------------------------------------------------------------------------
// PIPELINE-1 / PIPELINE-2
// ---------------------------------------------------------------------------

class Pipeline1ProtoSweep : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(Pipeline1ProtoSweep, EventDrivenMatchesAnalytic) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  Pipeline1Protocol protocol(params, m);
  Schedule schedule;
  const SimReport report = run_and_validate(protocol, params, m, &schedule);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  EXPECT_EQ(schedule.events(), pipeline1_schedule(params, m).events());
  EXPECT_EQ(report.makespan, predict_pipeline1(lambda, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pipeline1ProtoSweep,
    ::testing::Values(ProtoCase{14, 2, Rational(5, 2)}, ProtoCase{9, 3, Rational(3)},
                      ProtoCase{33, 2, Rational(4)}, ProtoCase{64, 8, Rational(8)},
                      ProtoCase{7, 5, Rational(11, 2)}, ProtoCase{2, 4, Rational(17, 4)}),
    proto_name);

class Pipeline2ProtoSweep : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(Pipeline2ProtoSweep, EventDrivenMatchesAnalytic) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  Pipeline2Protocol protocol(params, m);
  Schedule schedule;
  const SimReport report = run_and_validate(protocol, params, m, &schedule);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  EXPECT_EQ(schedule.events(), pipeline2_schedule(params, m).events());
  EXPECT_EQ(report.makespan, predict_pipeline2(lambda, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pipeline2ProtoSweep,
    ::testing::Values(ProtoCase{14, 5, Rational(5, 2)}, ProtoCase{9, 9, Rational(3)},
                      ProtoCase{33, 16, Rational(4)}, ProtoCase{64, 32, Rational(2)},
                      ProtoCase{7, 12, Rational(7, 2)}, ProtoCase{2, 64, Rational(1)},
                      ProtoCase{25, 20, Rational(5)}),
    proto_name);

TEST(MultiProtocols, RejectBadParameters) {
  const PostalParams params(8, Rational(2));
  EXPECT_THROW(RepeatProtocol(params, 0), InvalidArgument);
  EXPECT_THROW(Pipeline1Protocol(params, 5), InvalidArgument);  // m > lambda
  EXPECT_THROW(Pipeline2Protocol(params, 1), InvalidArgument);  // m < lambda
}

}  // namespace
}  // namespace postal
