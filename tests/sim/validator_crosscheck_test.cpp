// Cross-validation of the validator itself: an independent, deliberately
// naive O(E^2) reference implementation of the postal-model rules is run
// against validate_schedule on (a) every algorithm's schedules and (b) a
// fuzz corpus of randomly mutated schedules. The two implementations must
// agree on accept/reject everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

/// Reference rules, written as directly from Definitions 1-2 as possible:
/// pairwise interval checks and a fixpoint for causality. No IntervalSet,
/// no event sorting tricks.
bool reference_valid(const Schedule& schedule, const PostalParams& params,
                     std::uint32_t messages, bool require_coverage) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  const auto& events = schedule.events();

  for (const SendEvent& e : events) {
    if (e.src >= n || e.dst >= n || e.msg >= messages) return false;
  }
  // Send-port: same source, |t1 - t2| >= 1. Receive-port: same dest,
  // |a1 - a2| >= 1 (arrivals are t + lambda).
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const auto& a = events[i];
      const auto& b = events[j];
      const Rational dt = a.t < b.t ? b.t - a.t : a.t - b.t;
      if (a.src == b.src && dt < Rational(1)) return false;
      if (a.dst == b.dst && dt < Rational(1)) return false;
    }
  }
  // Causality by fixpoint: start with the origin holding everything and
  // repeatedly mark deliveries whose sender already held the message early
  // enough, until nothing changes. Then every event must be marked.
  std::vector<std::optional<Rational>> holds(n * messages);
  for (MsgId msg = 0; msg < messages; ++msg) holds[0 * messages + msg] = Rational(0);
  std::vector<bool> justified(events.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (justified[i]) continue;
      const auto& e = events[i];
      const auto& held = holds[e.src * messages + e.msg];
      if (held.has_value() && *held <= e.t) {
        justified[i] = true;
        auto& dst = holds[e.dst * messages + e.msg];
        const Rational arrive = e.t + lambda;
        if (!dst.has_value() || arrive < *dst) dst = arrive;
        changed = true;
      }
    }
  }
  if (!std::all_of(justified.begin(), justified.end(), [](bool b) { return b; })) {
    return false;
  }
  if (require_coverage) {
    for (std::uint64_t p = 1; p < n; ++p) {
      for (MsgId msg = 0; msg < messages; ++msg) {
        if (!holds[p * messages + msg].has_value()) return false;
      }
    }
  }
  return true;
}

bool library_valid(const Schedule& schedule, const PostalParams& params,
                   std::uint32_t messages, bool require_coverage) {
  ValidatorOptions options;
  options.messages = messages;
  options.require_coverage = require_coverage;
  return validate_schedule(schedule, params, options).ok;
}

TEST(ValidatorCrosscheck, AgreesOnEveryAlgorithmSchedule) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    for (const std::uint64_t n : {2ULL, 9ULL, 20ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 3ULL, 6ULL}) {
        for (const MultiAlgo algo : all_multi_algos()) {
          const Schedule s = make_multi_schedule(algo, params, m);
          const auto msgs = static_cast<std::uint32_t>(m);
          EXPECT_TRUE(reference_valid(s, params, msgs, true))
              << algo_name(algo) << " n=" << n << " m=" << m;
          EXPECT_TRUE(library_valid(s, params, msgs, true))
              << algo_name(algo) << " n=" << n << " m=" << m;
        }
      }
    }
  }
}

TEST(ValidatorCrosscheck, AgreesOnFuzzedMutants) {
  // Mutate known-good schedules with random perturbations; the two
  // implementations must return identical verdicts on every mutant.
  Xoshiro256 rng(777);
  std::uint64_t rejected = 0;
  std::uint64_t accepted = 0;
  for (const Rational lambda : {Rational(2), Rational(5, 2)}) {
    const PostalParams params(12, lambda);
    const std::uint32_t m = 3;
    const Schedule base = make_multi_schedule(MultiAlgo::kPipeline, params, m);
    for (int trial = 0; trial < 200; ++trial) {
      Schedule mutant;
      const std::size_t victim = rng.uniform(0, base.size() - 1);
      const std::uint64_t mode = rng.uniform(0, 3);
      for (std::size_t i = 0; i < base.size(); ++i) {
        SendEvent e = base.events()[i];
        if (i == victim) {
          switch (mode) {
            case 0: {  // jitter the time by a random quarter multiple
              const auto k = static_cast<std::int64_t>(rng.uniform(0, 8));
              const Rational delta(k - 4, 4);
              if (e.t + delta < Rational(0)) break;
              e.t += delta;
              break;
            }
            case 1:  // retarget the send
              e.dst = static_cast<ProcId>(rng.uniform(0, params.n() - 1));
              if (e.dst == e.src) e.dst = (e.dst + 1) % static_cast<ProcId>(params.n());
              break;
            case 2:  // change the message id
              e.msg = static_cast<MsgId>(rng.uniform(0, m - 1));
              break;
            default:  // drop the event entirely
              continue;
          }
        }
        mutant.add(e);
      }
      const bool lib = library_valid(mutant, params, m, true);
      const bool ref = reference_valid(mutant, params, m, true);
      EXPECT_EQ(lib, ref) << "trial=" << trial << " mode=" << mode
                          << " victim=" << victim;
      (lib ? accepted : rejected) += 1;
    }
  }
  // The corpus must exercise both outcomes for the agreement to mean much.
  EXPECT_GT(rejected, 50u);
  EXPECT_GT(accepted, 5u);
}

TEST(ValidatorCrosscheck, AgreesOnHandCraftedEdgeCases) {
  const PostalParams params(4, Rational(5, 2));
  struct Case {
    const char* what;
    Schedule schedule;
    bool coverage;
  };
  std::vector<Case> cases;
  {
    Case c{"exactly abutting sends", {}, false};
    c.schedule.add(0, 1, 0, Rational(0));
    c.schedule.add(0, 2, 0, Rational(1));
    cases.push_back(std::move(c));
  }
  {
    Case c{"exactly abutting receives", {}, false};
    c.schedule.add(0, 3, 0, Rational(0));
    c.schedule.add(1, 3, 0, Rational(1));  // p1 does not hold the message
    cases.push_back(std::move(c));
  }
  {
    Case c{"forward at exact arrival", {}, false};
    c.schedule.add(0, 1, 0, Rational(0));
    c.schedule.add(1, 2, 0, Rational(5, 2));
    cases.push_back(std::move(c));
  }
  {
    Case c{"forward a hair early", {}, false};
    c.schedule.add(0, 1, 0, Rational(0));
    c.schedule.add(1, 2, 0, Rational(9, 4));
    cases.push_back(std::move(c));
  }
  {
    Case c{"causality needs out-of-order discovery", {}, false};
    // Listed out of time order on purpose.
    c.schedule.add(1, 2, 0, Rational(5, 2));
    c.schedule.add(0, 1, 0, Rational(0));
    cases.push_back(std::move(c));
  }
  for (const auto& c : cases) {
    EXPECT_EQ(library_valid(c.schedule, params, 1, c.coverage),
              reference_valid(c.schedule, params, 1, c.coverage))
        << c.what;
  }
}

}  // namespace
}  // namespace postal
