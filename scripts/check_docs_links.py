#!/usr/bin/env python3
"""Dead-link checker for the repository's Markdown documentation.

Scans every tracked *.md file for inline Markdown links and images
(``[text](target)`` / ``![alt](target)``) and verifies that each
*relative* target resolves to a real file or directory in the tree.
External targets (http/https/mailto), pure in-page anchors (``#...``),
and absolute paths are ignored -- the gate exists to catch documentation
rot when files move or get renamed (docs/CI.md), not to probe the network.

A target's ``#fragment`` suffix is stripped before the existence check;
fragments are not validated (heading anchors are renderer-specific).

Usage: check_docs_links.py [ROOT]

ROOT defaults to the repository root (the parent of this script's
directory). Exits 0 when every relative link resolves, 1 otherwise,
listing each dead link as ``file:line: target``. Requires git (tracked
files only: build trees and scratch files are not documentation).
"""
import os
import re
import subprocess
import sys

# Inline link/image: ](target) with no nested parens in the target (none of
# this repo's docs need them; <...>-wrapped targets are unwrapped below).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\s+\"[^\"]*\")?)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "-C", root, "ls-files", "*.md"],
        check=True, capture_output=True, text=True)
    return [line for line in out.stdout.splitlines() if line.strip()]


def target_of(raw):
    """Strip an optional title, <> wrapping, and any #fragment."""
    target = raw.split()[0].strip()
    if target.startswith("<") and target.endswith(">"):
        target = target[1:-1]
    return target.split("#", 1)[0]


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    dead = []
    checked = 0
    for rel in tracked_markdown(root):
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        in_code_fence = False
        for lineno, line in enumerate(lines, start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = target_of(match.group(1))
                if not target or target.startswith(SKIP_PREFIXES):
                    continue
                if target.startswith("/"):
                    continue  # absolute: outside the gate's remit
                checked += 1
                resolved = os.path.normpath(
                    os.path.join(root, os.path.dirname(rel), target))
                if not os.path.exists(resolved):
                    dead.append(f"{rel}:{lineno}: {target}")
    if dead:
        print("dead relative links:", file=sys.stderr)
        for entry in dead:
            print(f"  {entry}", file=sys.stderr)
        sys.exit(1)
    print(f"docs links OK ({checked} relative link(s) across "
          f"{len(tracked_markdown(root))} markdown file(s))")


if __name__ == "__main__":
    main()
