#!/usr/bin/env python3
"""Compare two sweep record files ignoring wall-time fields.

The parallel sweep engine's determinism contract (docs/PARALLELISM.md):
per-point bench records from ``postal_cli sweep`` at any two thread counts
must be identical once the measurement-only fields are dropped --
``wall_ms``, every ``extra`` key ending in ``_ms``, and ``extra.threads``
(the thread count is configuration, recorded on purpose, and naturally
differs between the runs under comparison).

Exit 0 when the record sequences match point for point; exit 1 with the
first differing point otherwise.

Usage: compare_sweep_records.py FILE_A FILE_B
"""
import json
import sys


def normalized(path):
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh.read().splitlines():
            if not line.strip():
                continue
            rec = json.loads(line)
            rec.pop("wall_ms", None)
            extra = rec.get("extra", {})
            rec["extra"] = {k: v for k, v in extra.items()
                            if k != "threads" and not k.endswith("_ms")}
            records.append(rec)
    return records


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a, b = normalized(sys.argv[1]), normalized(sys.argv[2])
    if not a or not b:
        print(f"error: empty record file ({sys.argv[1]}: {len(a)} records, "
              f"{sys.argv[2]}: {len(b)})", file=sys.stderr)
        return 1
    if len(a) != len(b):
        print(f"error: record counts differ: {len(a)} vs {len(b)}",
              file=sys.stderr)
        return 1
    for i, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb:
            print(f"error: records differ at point {i}:\n  a: {ra}\n  b: {rb}",
                  file=sys.stderr)
            return 1
    print(f"{len(a)} sweep record(s) identical ignoring wall-time fields")
    return 0


if __name__ == "__main__":
    sys.exit(main())
