#!/usr/bin/env python3
"""Compare fresh bench records against the committed perf trajectory.

Reads a freshly generated BENCH_postal.json (one record per line, schema:
docs/OBSERVABILITY.md) and every baseline file in the trajectory directory
(bench/trajectory/*.json), matching records by bench name. Two classes of
finding, with deliberately different severity (bench/trajectory/README.md):

  * verdict regression -- the baseline verdict is clean but the fresh one
    is MISMATCH or FAIL. Always a hard failure (exit 1): verdicts are
    correctness-gated by the benches themselves and machine-independent.
  * perf drift -- wall_ms (or an extra key ending in _ms) grew, or an
    extra key ending in _per_sec shrank, by more than --tolerance x.
    Printed as a warning; exits 1 only under --strict. The default
    tolerance is generous on purpose: trajectory numbers are snapshots of
    whatever box committed them, and CI machines vary wildly.
  * guarded-metric floor -- a metric in GUARDED_METRICS (currently the
    ParMachine bcast_1m speedup at 4 lanes) fell below its floor in the
    *fresh* record. Hard failure only when the fresh record's threads_hw
    shows the runner actually has the cores to demonstrate it (>= the
    lane count); on smaller machines (where lanes time-slice one core and
    a speedup is physically impossible) it demotes to a warning.
"""
import argparse
import glob
import json
import os
import sys

BAD_VERDICTS = {"MISMATCH", "FAIL"}

# (bench, extra key) -> (floor, hw threads needed to enforce it hard).
GUARDED_METRICS = {
    ("bench_par_machine", "bcast_1m_t4_speedup"): (1.0, 4),
    ("bench_par_machine", "bcast_1m_t2_speedup"): (0.9, 2),
}


def guarded_findings(fresh_by_bench):
    """Yield (message, hard) for guarded metrics below their floor."""
    for (bench, key), (floor, hw_needed) in GUARDED_METRICS.items():
        rec = fresh_by_bench.get(bench)
        if rec is None:
            continue
        value = numeric(rec.get("extra", {}).get(key))
        if value is None or value >= floor:
            continue
        threads_hw = numeric(rec.get("threads_hw")) or 0
        hard = threads_hw >= hw_needed
        yield (f"{bench}.extra.{key}: {value:g} below floor {floor:g} "
               f"(threads_hw={threads_hw:g}, "
               f"{'enforced' if hard else f'needs >= {hw_needed} cores'})",
               hard)


def load_records(path):
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh.read().splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                print(f"error: unparseable record in {path}: {line!r} ({exc})",
                      file=sys.stderr)
                sys.exit(1)
    return records


def numeric(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def drift_findings(base, fresh, tolerance):
    """Yield (field, baseline, fresh, ratio) for out-of-tolerance drift."""
    pairs = [("wall_ms", numeric(base.get("wall_ms")),
              numeric(fresh.get("wall_ms")), False)]
    base_extra = base.get("extra", {})
    fresh_extra = fresh.get("extra", {})
    for key, base_value in base_extra.items():
        if key.endswith("_ms"):
            pairs.append((f"extra.{key}", numeric(base_value),
                          numeric(fresh_extra.get(key)), False))
        elif key.endswith("_per_sec"):
            pairs.append((f"extra.{key}", numeric(base_value),
                          numeric(fresh_extra.get(key)), True))
    for field, base_value, fresh_value, higher_is_better in pairs:
        if not base_value or not fresh_value:
            continue  # missing, zero, or non-numeric: nothing to compare
        ratio = (base_value / fresh_value if higher_is_better
                 else fresh_value / base_value)
        if ratio > tolerance:
            yield field, base_value, fresh_value, ratio


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated record file")
    parser.add_argument("--baseline-dir",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)), "..", "bench",
                            "trajectory"),
                        help="directory of committed baseline record files")
    parser.add_argument("--tolerance", type=float, default=4.0,
                        help="allowed drift factor before a warning "
                             "(default: 4.0)")
    parser.add_argument("--strict", action="store_true",
                        help="treat perf drift as a failure, not a warning")
    args = parser.parse_args()

    fresh_by_bench = {}
    for rec in load_records(args.fresh):
        # Last record per bench wins; benches emit one record per run.
        fresh_by_bench[rec.get("bench")] = rec

    baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "*.json")))
    if not baselines:
        print(f"error: no baseline files in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    regressions = []
    drifts = []
    compared = 0
    baselined = set()
    for path in baselines:
        for base in load_records(path):
            name = base.get("bench")
            baselined.add(name)
            fresh = fresh_by_bench.get(name)
            if fresh is None:
                continue  # bench not run this time; the --expect gate owns that
            compared += 1
            base_verdict = str(base.get("verdict", ""))
            fresh_verdict = str(fresh.get("verdict", ""))
            if base_verdict not in BAD_VERDICTS and fresh_verdict in BAD_VERDICTS:
                regressions.append(
                    f"{name}: verdict regressed from "
                    f"{base_verdict!r} to {fresh_verdict!r}")
            for field, base_value, fresh_value, ratio in drift_findings(
                    base, fresh, args.tolerance):
                drifts.append(
                    f"{name}.{field}: {base_value:g} -> {fresh_value:g} "
                    f"({ratio:.2f}x worse, tolerance {args.tolerance:g}x)")

    # A fresh bench with no committed baseline is a coverage gap, not an
    # error: the first landing of a new bench warns here until its
    # trajectory file is committed (bench/trajectory/README.md). A silent
    # skip would read as "compared" when nothing was.
    for name in sorted(set(fresh_by_bench) - baselined):
        drifts.append(f"{name}: no committed baseline in "
                      f"{args.baseline_dir}; commit one to track drift")

    for message, hard in guarded_findings(fresh_by_bench):
        if hard:
            regressions.append(message)
        else:
            drifts.append(message)

    for line in regressions:
        print(f"REGRESSION: {line}", file=sys.stderr)
    for line in drifts:
        print(f"warning: perf drift: {line}", file=sys.stderr)

    print(f"compared {compared} bench(es) against "
          f"{len(baselines)} baseline file(s): "
          f"{len(regressions)} verdict regression(s), "
          f"{len(drifts)} perf drift warning(s)")
    if regressions:
        return 1
    if drifts and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
