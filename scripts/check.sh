#!/usr/bin/env bash
# Full verification pipeline: configure, build, run the test suite, and
# regenerate every paper artifact (each bench exits nonzero on mismatch).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  [ "$(basename "$b")" = "bench_micro" ] && continue
  echo "== $(basename "$b")"
  "$b" > /dev/null
done
echo "ALL CHECKS PASSED"
