#!/usr/bin/env bash
# Full verification pipeline: configure, build, run the test suite,
# regenerate every paper artifact (each bench exits nonzero on mismatch),
# collect the machine-readable bench records, and prove the parallel sweep
# engine's thread-count invariance.
#
#   scripts/check.sh             the full default pipeline
#   scripts/check.sh --sanitize  additionally build and run the concurrency
#                                and differential tests under TSan and
#                                ASan+UBSan (docs/PARALLELISM.md)
#   scripts/check.sh --chaos     additionally run the fault-injection chaos
#                                sweep, the coordination chaos suite
#                                (docs/COORDINATION.md), and validate the
#                                reliability bench records end to end
#                                (docs/FAULTS.md). Failing scenarios drop
#                                replayable seed+plan JSON artifacts into
#                                build/chaos-artifacts (POSTAL_CHAOS_ARTIFACTS),
#                                which the nightly CI job uploads.
#   scripts/check.sh --perf      additionally regenerate the tick-domain
#                                speedup records: E22 plus the
#                                sweep-dominated benches with record
#                                collection on, validated end to end; any
#                                tick-vs-Rational disagreement is a hard
#                                failure (docs/PERFORMANCE.md)
#   scripts/check.sh --soak      additionally run the service long-soak: the
#                                200+-scenario admission-queue invariant
#                                sweep, then a 10^6-job open-loop run driven
#                                end to end through `postal_cli serve`,
#                                byte-compared across threads=1 and
#                                threads=4, plus a shed-heavy ON/OFF run at
#                                the same scale (docs/SERVICE.md). Nightly
#                                in CI (docs/CI.md).
#   scripts/check.sh --format    check-only formatting + docs gate: every
#                                tracked C++ file must be clang-format clean
#                                per the committed .clang-format, and every
#                                relative Markdown link must resolve
#                                (scripts/check_docs_links.py, docs/CI.md).
#                                Runs alone -- no build -- so CI can gate on
#                                it in seconds. Set CLANG_FORMAT to pick a
#                                specific binary.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
CHAOS=0
PERF=0
SOAK=0
FORMAT=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --chaos) CHAOS=1 ;;
    --perf) PERF=1 ;;
    --soak) SOAK=1 ;;
    --format) FORMAT=1 ;;
    *) echo "unknown argument: $arg (supported: --sanitize, --chaos, --perf, --soak, --format)" >&2; exit 2 ;;
  esac
done

if [ "$FORMAT" -eq 1 ]; then
  # Check-only: print a unified diff per drifted file and exit nonzero on
  # any drift. Never rewrites the tree (CI must not).
  FMT="${CLANG_FORMAT:-clang-format}"
  if ! command -v "$FMT" > /dev/null 2>&1; then
    echo "error: '$FMT' not found; install clang-format or set CLANG_FORMAT" >&2
    echo "       (the CI format job installs it; see docs/CI.md)" >&2
    exit 2
  fi
  echo "== format gate ($("$FMT" --version))"
  STATUS=0
  while IFS= read -r f; do
    if ! diff -u "$f" <("$FMT" --style=file "$f") > /dev/null; then
      echo "format drift: $f" >&2
      diff -u "$f" <("$FMT" --style=file "$f") | head -40 >&2 || true
      STATUS=1
    fi
  done < <(git ls-files '*.cpp' '*.hpp')
  [ "$STATUS" -eq 0 ] && echo "all tracked C++ files are clang-format clean"

  # Docs lint rides the same fast gate: every relative Markdown link must
  # point at a file that exists (documentation rot guard, docs/CI.md).
  echo "== docs link gate"
  python3 scripts/check_docs_links.py || STATUS=1
  exit "$STATUS"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Every paper bench runs with record collection on: benches exit nonzero on
# a paper mismatch, and the collected BENCH_postal.json is validated below.
rm -f build/BENCH_postal.json
for b in build/bench/bench_*; do
  [ "$(basename "$b")" = "bench_micro" ] && continue
  echo "== $(basename "$b")"
  POSTAL_BENCH_JSON=build/BENCH_postal.json "$b" > /dev/null
done

# Machine-readable bench output (schema: docs/OBSERVABILITY.md). A missing
# file, an unparseable line, a missing stable key, a MISMATCH verdict, or --
# critically -- ZERO records is a hard error: a silently empty record file
# means the POSTAL_BENCH_JSON pipeline broke, which is exactly the failure
# this stage exists to catch. (sys.exit, not assert: the check must survive
# python3 -O.)
echo "== BENCH_postal.json records"
python3 scripts/validate_bench_records.py build/BENCH_postal.json \
  --expect bench_fig1_tree --expect bench_bcast_optimality \
  --expect bench_theorem7_bounds --expect bench_repeat \
  --expect bench_pipeline --expect bench_dtree \
  --expect bench_multimessage_shootout --expect bench_collectives \
  --expect bench_network_transfer --expect bench_par_sweep \
  --expect bench_fault_recovery --expect bench_tick_domain \
  --expect bench_oracle --expect bench_par_machine \
  --expect bench_service --expect bench_coord --expect bench_log --svc

# Perf-trajectory drift guard (bench/trajectory/README.md): verdict
# regressions against the committed baselines are hard failures; wall-time
# and throughput drift only warns (trajectory numbers are snapshots of
# whichever box committed them).
echo "== perf trajectory vs committed baselines"
python3 scripts/compare_trajectory.py build/BENCH_postal.json

# Thread-count invariance of the sweep engine, end to end through the CLI:
# the per-point records of a threads=4 sweep must be identical to a
# threads=1 sweep once wall-time fields (and the thread count itself) are
# ignored (docs/PARALLELISM.md).
echo "== sweep determinism (threads=1 vs threads=4)"
rm -f build/SWEEP_t1.json build/SWEEP_t4.json
POSTAL_BENCH_JSON=build/SWEEP_t1.json \
  build/examples/postal_cli sweep 2,8,64,256 1,3/2,5/2,4 1 > /dev/null
POSTAL_BENCH_JSON=build/SWEEP_t4.json \
  build/examples/postal_cli sweep 2,8,64,256 1,3/2,5/2,4 4 > /dev/null
python3 scripts/compare_sweep_records.py build/SWEEP_t1.json build/SWEEP_t4.json

if [ "$CHAOS" -eq 1 ]; then
  # The chaos sweep (docs/FAULTS.md): >= 100 seeded fault scenarios against
  # the reliable broadcast protocol, the fault-free byte-identical
  # regression, and the data-model tests -- run explicitly so a chaos
  # failure is loud even if ctest filtering above ever changes. Any failing
  # scenario dumps its seed + resolved FaultPlan JSON to stderr and into
  # $POSTAL_CHAOS_ARTIFACTS for replay with `postal_cli faults --plan`
  # (the nightly CI job uploads that directory on failure, docs/CI.md).
  export POSTAL_CHAOS_ARTIFACTS=build/chaos-artifacts
  rm -rf "$POSTAL_CHAOS_ARTIFACTS" && mkdir -p "$POSTAL_CHAOS_ARTIFACTS"
  echo "== chaos: fault-injection sweep"
  ./build/tests/test_fault_plan
  ./build/tests/test_machine_faults
  ./build/tests/test_reliable_bcast
  ./build/tests/test_chaos

  # The coordination chaos suite (docs/COORDINATION.md): 150+ seeded
  # scenarios against leader election and view-change consensus, holding
  # the validator's safety clauses and the guarded liveness clause on
  # every one, plus the protocol unit suites.
  echo "== chaos: coordination suite"
  ./build/tests/test_coord_election
  ./build/tests/test_coord_consensus
  ./build/tests/test_coord_chaos

  # The replicated-log chaos suite (docs/COORDINATION.md): 60+ seeded
  # scenarios against the multi-decree log -- leader crash mid-batch,
  # lease-boundary races on the grid, reconfig under crash -- holding the
  # log validator's safety clauses on every one, plus the log unit suite.
  echo "== chaos: replicated-log suite"
  ./build/tests/test_coord_log
  ./build/tests/test_coord_log_chaos

  # Reliability bench records end to end through the CLI: a crash run and a
  # crash+loss run must both emit postal_cli_faults records (schema:
  # docs/OBSERVABILITY.md) with a RECOVERED verdict.
  echo "== chaos: CLI fault records"
  rm -f build/FAULTS_records.json
  POSTAL_BENCH_JSON=build/FAULTS_records.json \
    build/examples/postal_cli faults 64 5/2 7 3 > /dev/null
  POSTAL_BENCH_JSON=build/FAULTS_records.json \
    build/examples/postal_cli faults 48 2 11 2 1/8 > /dev/null
  python3 scripts/validate_bench_records.py build/FAULTS_records.json \
    --expect postal_cli_faults
  grep -q '"verdict":"RECOVERED"' build/FAULTS_records.json
fi

if [ "$PERF" -eq 1 ]; then
  # The perf trajectory (docs/PERFORMANCE.md): E22 re-times every ported
  # hot loop on both TimePaths and exits nonzero if any section's tick run
  # disagrees with the Rational reference; the sweep-dominated benches run
  # with records on so the trajectory stays comparable release to release.
  # A MISMATCH verdict in any record also hard-fails record validation.
  echo "== perf: tick-domain speedup records"
  rm -f build/PERF_records.json
  for b in bench_tick_domain bench_par_sweep bench_bcast_optimality \
           bench_theorem7_bounds bench_multimessage_shootout; do
    echo "== $b"
    POSTAL_BENCH_JSON=build/PERF_records.json "build/bench/$b" > /dev/null
  done
  POSTAL_BENCH_JSON=build/PERF_records.json \
    build/bench/bench_micro \
    --benchmark_filter='BM_Rational|BM_Tick|BM_EventQueue|BM_MailboxFlush|BM_MergeReplay' \
    > /dev/null
  python3 scripts/validate_bench_records.py build/PERF_records.json \
    --expect bench_tick_domain --expect bench_par_sweep \
    --expect bench_bcast_optimality --expect bench_theorem7_bounds \
    --expect bench_multimessage_shootout --expect bench_micro
  grep -q '"bench":"bench_tick_domain".*"verdict":"CONSISTENT"' \
    build/PERF_records.json
  # The bench_micro record must carry the ParMachine barrier sections and
  # prove the arena steady state: a warm rerun on one engine grows nothing.
  grep -q '"bench":"bench_micro".*"mailbox_flush_ms"' build/PERF_records.json
  grep -q '"bench":"bench_micro".*"merge_replay_ms"' build/PERF_records.json
  grep -q '"bench":"bench_micro".*"arena_growths_warm":"0"' \
    build/PERF_records.json
fi

if [ "$SOAK" -eq 1 ]; then
  # The service long-soak (docs/SERVICE.md): the seeded admission-queue
  # invariant sweep (200+ scenarios), then 10^6-job open-loop runs driven
  # end to end through the CLI. stdout carries only virtual-time
  # quantities, so the threads=1 and threads=4 runs must be byte-identical
  # -- any diff is a determinism break in the service layer, never noise.
  echo "== soak: admission-queue invariant sweep"
  ./build/tests/test_svc_soak

  echo "== soak: 10^6-job Poisson replay (threads=1 vs threads=4)"
  SOAK_SPEC='poisson;grid=16;rate=1/16;jobs=1000000;mix=w3:n64:l2:m1|w1:n256:l5/2:m1'
  rm -f build/SOAK_t1.json build/SOAK_t4.json
  POSTAL_BENCH_JSON=build/SOAK_t1.json build/examples/postal_cli \
    serve "$SOAK_SPEC" 7 --queue 512 --exec-every 65536 --threads 1 \
    > build/SOAK_t1.out
  POSTAL_BENCH_JSON=build/SOAK_t4.json build/examples/postal_cli \
    serve "$SOAK_SPEC" 7 --queue 512 --exec-every 65536 --threads 4 \
    > build/SOAK_t4.out
  diff build/SOAK_t1.out build/SOAK_t4.out

  # A shed-heavy ON/OFF burst at the same scale: the back-pressure path at
  # depth, with the svc record contract validated on the collected records.
  echo "== soak: 10^6-job ON/OFF bursts (back-pressure at depth)"
  BURST_SPEC='onoff;grid=16;rate=8;on=64;off=192;jobs=1000000;mix=w1:n128:l3:m1'
  POSTAL_BENCH_JSON=build/SOAK_t1.json build/examples/postal_cli \
    serve "$BURST_SPEC" 11 --queue 64 --exec-every 65536 > /dev/null
  head -1 build/SOAK_t1.json | grep -q '"shed":"0"'    # Poisson: sheds nothing
  ! tail -1 build/SOAK_t1.json | grep -q '"shed":"0"'  # bursts: must shed
  python3 scripts/validate_bench_records.py build/SOAK_t1.json \
    --expect postal_cli_serve --svc
fi

if [ "$SANITIZE" -eq 1 ]; then
  # ThreadSanitizer over the concurrency surface: the thread pool, the
  # sharded caches, the sweep engine, and the sharded ParMachine (whose
  # shard loops write shared per-rank arrays and merge at barriers --
  # exactly the access pattern TSan exists to audit), plus the differential
  # test (which drives the caches from gtest's single thread -- a
  # TSan-clean baseline), plus the service tests that run sampled broadcasts
  # on the sharded engine (the svc differential loops threads 1/2/4; the
  # soak and chaos sweeps stress the same path under load and faults).
  echo "== sanitize: thread"
  cmake -B build-tsan -G Ninja -DPOSTAL_SANITIZE=thread
  cmake --build build-tsan --target test_par test_differential test_chaos \
    test_tick_differential test_par_machine test_par_differential \
    test_svc_service test_svc_soak test_svc_chaos
  ./build-tsan/tests/test_par
  ./build-tsan/tests/test_differential
  ./build-tsan/tests/test_chaos
  ./build-tsan/tests/test_tick_differential
  ./build-tsan/tests/test_par_machine
  ./build-tsan/tests/test_par_differential
  ./build-tsan/tests/test_svc_service
  ./build-tsan/tests/test_svc_soak
  ./build-tsan/tests/test_svc_chaos

  # ASan+UBSan over the randomized tests: the differential pass, the
  # validator mutation fuzzer, the par tests again (allocation-heavy), the
  # fault-injection paths (crash truncation exercises every simulator
  # early-exit; the chaos sweep stresses them with random plans), and the
  # whole service layer (parser edge cases, the 200+-scenario soak, the
  # histogram's bucket math at 2^64 extremes, and the faulted exec tier).
  echo "== sanitize: address,undefined"
  cmake -B build-asan -G Ninja -DPOSTAL_SANITIZE=address,undefined
  cmake --build build-asan --target test_differential test_validator_fuzz \
    test_par test_machine_faults test_reliable_bcast test_chaos \
    test_ticks test_event_queue test_tick_differential test_par_machine \
    test_par_differential test_svc_workload test_svc_service \
    test_svc_soak test_svc_percentile test_svc_chaos
  ./build-asan/tests/test_differential
  ./build-asan/tests/test_validator_fuzz
  ./build-asan/tests/test_par
  ./build-asan/tests/test_machine_faults
  ./build-asan/tests/test_reliable_bcast
  ./build-asan/tests/test_chaos
  ./build-asan/tests/test_ticks
  ./build-asan/tests/test_event_queue
  ./build-asan/tests/test_tick_differential
  ./build-asan/tests/test_par_machine
  ./build-asan/tests/test_par_differential
  ./build-asan/tests/test_svc_workload
  ./build-asan/tests/test_svc_service
  ./build-asan/tests/test_svc_soak
  ./build-asan/tests/test_svc_percentile
  ./build-asan/tests/test_svc_chaos
fi

echo "ALL CHECKS PASSED"
