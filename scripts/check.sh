#!/usr/bin/env bash
# Full verification pipeline: configure, build, run the test suite, and
# regenerate every paper artifact (each bench exits nonzero on mismatch).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  [ "$(basename "$b")" = "bench_micro" ] && continue
  echo "== $(basename "$b")"
  "$b" > /dev/null
done

# Machine-readable bench output: re-run one bench with POSTAL_BENCH_JSON set
# and validate the emitted record (schema: docs/OBSERVABILITY.md).
echo "== BENCH_postal.json record"
rm -f build/BENCH_postal.json
POSTAL_BENCH_JSON=build/BENCH_postal.json build/bench/bench_fig1_tree > /dev/null
python3 - build/BENCH_postal.json <<'EOF'
import json, sys
path = sys.argv[1]
lines = [l for l in open(path).read().splitlines() if l.strip()]
assert lines, f"{path} is empty"
for line in lines:
    rec = json.loads(line)  # must parse as JSON
    for key in ("bench", "n", "lambda", "makespan", "wall_ms", "verdict"):
        assert key in rec, f"missing key {key!r} in {line}"
    assert rec["verdict"] != "MISMATCH", f"bench reported MISMATCH: {line}"
print(f"{path}: {len(lines)} valid record(s), e.g. "
      f"{lines[0][:120]}{'...' if len(lines[0]) > 120 else ''}")
EOF

echo "ALL CHECKS PASSED"
