#!/usr/bin/env python3
"""Validate a BENCH_postal.json record file (schema: docs/OBSERVABILITY.md).

Hard errors (exit 1, robust to ``python3 -O`` -- no assert statements):
  * the file is missing or contains zero records,
  * any line fails to parse as JSON,
  * any record lacks one of the six stable keys
    {bench, n, lambda, makespan, wall_ms, verdict},
  * any record carries a MISMATCH verdict,
  * any bench named via --expect emitted no record at all.

Usage: validate_bench_records.py FILE [--expect BENCH]...
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--expect", action="append", default=[],
                        help="bench name that must have emitted >= 1 record")
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if not lines:
        print(f"error: {args.path} contains zero bench records -- the "
              "POSTAL_BENCH_JSON pipeline emitted nothing", file=sys.stderr)
        return 1

    seen = {}
    for line in lines:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"error: unparseable record line: {line!r} ({exc})",
                  file=sys.stderr)
            return 1
        for key in ("bench", "n", "lambda", "makespan", "wall_ms", "verdict"):
            if key not in rec:
                print(f"error: missing key {key!r} in {line}", file=sys.stderr)
                return 1
        if rec["verdict"] == "MISMATCH":
            print(f"error: bench reported MISMATCH: {line}", file=sys.stderr)
            return 1
        seen[rec["bench"]] = seen.get(rec["bench"], 0) + 1

    missing = [name for name in args.expect if name not in seen]
    if missing:
        print(f"error: expected record(s) from {', '.join(missing)} but "
              "none were emitted", file=sys.stderr)
        return 1

    print(f"{args.path}: {len(lines)} valid record(s) from "
          f"{len(seen)} bench(es), e.g. "
          f"{lines[0][:120]}{'...' if len(lines[0]) > 120 else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
