#!/usr/bin/env python3
"""Validate a BENCH_postal.json record file (schema: docs/OBSERVABILITY.md).

Hard errors (exit 1, robust to ``python3 -O`` -- no assert statements):
  * the file is missing or contains zero records,
  * any line fails to parse as JSON,
  * any record lacks one of the seven stable keys
    {bench, n, lambda, makespan, wall_ms, verdict, threads_hw},
  * any record carries a MISMATCH verdict,
  * any bench named via --expect emitted no record at all,
  * under --svc: no service record at all, or a service record (bench in
    {postal_cli_serve, bench_service}) whose ``extra`` object lacks one of
    the percentile-contract keys {p50, p99, p999, throughput}
    (docs/SERVICE.md).

Usage: validate_bench_records.py FILE [--expect BENCH]... [--svc]
"""
import argparse
import json
import sys

SVC_BENCHES = frozenset({"postal_cli_serve", "bench_service"})
SVC_KEYS = ("p50", "p99", "p999", "throughput")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--expect", action="append", default=[],
                        help="bench name that must have emitted >= 1 record")
    parser.add_argument("--svc", action="store_true",
                        help="require >= 1 service record carrying the "
                             "p50/p99/p999/throughput extra keys")
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if not lines:
        print(f"error: {args.path} contains zero bench records -- the "
              "POSTAL_BENCH_JSON pipeline emitted nothing", file=sys.stderr)
        return 1

    seen = {}
    svc_records = 0
    for line in lines:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"error: unparseable record line: {line!r} ({exc})",
                  file=sys.stderr)
            return 1
        for key in ("bench", "n", "lambda", "makespan", "wall_ms", "verdict",
                    "threads_hw"):
            if key not in rec:
                print(f"error: missing key {key!r} in {line}", file=sys.stderr)
                return 1
        if rec["verdict"] == "MISMATCH":
            print(f"error: bench reported MISMATCH: {line}", file=sys.stderr)
            return 1
        seen[rec["bench"]] = seen.get(rec["bench"], 0) + 1
        if args.svc and rec["bench"] in SVC_BENCHES:
            svc_records += 1
            extra = rec.get("extra")
            if not isinstance(extra, dict):
                print(f"error: service record lacks an extra object: {line}",
                      file=sys.stderr)
                return 1
            absent = [key for key in SVC_KEYS if key not in extra]
            if absent:
                print(f"error: service record missing extra key(s) "
                      f"{', '.join(absent)}: {line}", file=sys.stderr)
                return 1

    missing = [name for name in args.expect if name not in seen]
    if missing:
        print(f"error: expected record(s) from {', '.join(missing)} but "
              "none were emitted", file=sys.stderr)
        return 1
    if args.svc and svc_records == 0:
        print("error: --svc given but no service record "
              f"({' or '.join(sorted(SVC_BENCHES))}) was emitted",
              file=sys.stderr)
        return 1

    print(f"{args.path}: {len(lines)} valid record(s) from "
          f"{len(seen)} bench(es), e.g. "
          f"{lines[0][:120]}{'...' if len(lines[0]) > 120 else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
