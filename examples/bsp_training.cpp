// Scenario: a bulk-synchronous data-parallel training loop -- the modern
// workload whose communication layer is exactly the collectives this
// library plans.
//
//   ./bsp_training [workers] [steps] [compute_time]
//
// Every step, each worker computes for `compute_time` units, then the
// fleet allreduces gradients. The example sweeps the interconnect latency
// lambda from "same rack" to "cross region" and reports, per lambda:
//   * the best allreduce strategy (tree vs gossip) and the crossover;
//   * total epoch time under the postal-optimal plan vs two naive plans
//     (ring allreduce, and a binomial-tree allreduce that ignores lambda);
//   * the fraction of the epoch spent communicating.
#include <cstdint>
#include <iostream>
#include <string>

#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "model/genfib.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace postal;

  const std::uint64_t workers = argc > 1 ? std::stoull(argv[1]) : 64;
  const std::uint64_t steps = argc > 2 ? std::stoull(argv[2]) : 100;
  const Rational compute = argc > 3 ? Rational::parse(argv[3]) : Rational(20);

  std::cout << "Data-parallel loop: " << workers << " workers, " << steps
            << " steps, compute = " << compute << " per step\n\n";

  TextTable table({"lambda", "best allreduce", "T_comm/step", "ring", "binomial-tree",
                   "epoch (best)", "comm share"});
  for (const Rational lambda :
       {Rational(1), Rational(2), Rational(4), Rational(16), Rational(64),
        Rational(256)}) {
    const PostalParams params(workers, lambda);

    const AllreduceStrategy strategy = allreduce_auto(params);
    const Rational comm = predict_allreduce(params, strategy);

    // Naive baseline 1: ring allreduce (allgather around the ring).
    const Rational ring = predict_allgather_ring(params);
    // Naive baseline 2: tree allreduce with a lambda-oblivious binomial
    // tree in both phases (what a telephone-model library would build).
    const BroadcastTree binomial = BroadcastTree::binomial(workers);
    const Rational binom = Rational(2) * binomial.completion_time(lambda);

    const Rational steps_r(static_cast<std::int64_t>(steps));
    const Rational epoch = steps_r * (compute + comm);
    const double share = (comm / (comm + compute)).to_double();

    table.add_row({lambda.str(), allreduce_strategy_name(strategy), comm.str(),
                   ring.str(), binom.str(), epoch.str(), fmt(100.0 * share, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: the tree allreduce wins while lambda is "
               "small; past lambda ~ n the single-latency gossip exchange takes "
               "over -- and both beat the ring (which pays lambda per hop) and "
               "the lambda-oblivious binomial tree, the paper's core message "
               "applied to a 2020s workload.\n";
  return 0;
}
