// Scenario: broadcasting through a congestion event, and across a
// two-level machine -- the paper's Section 5 "further research" made
// runnable.
//
//   ./adaptive_failover [n]
//
// Part 1: mid-broadcast the network latency spikes (2 -> 8). A static plan
// keeps using the stale lambda; an adaptive plan replans every split with
// the latency in force; an estimator-driven plan learns it from observed
// deliveries. The example prints all three completions.
//
// Part 2: the same n processors arranged as clusters (cheap intra-cluster
// wires, expensive inter-cluster wires). A flat postal plan at the
// conservative lambda is compared with a hierarchy-aware two-level plan.
#include <cstdint>
#include <iostream>
#include <string>

#include "adaptive/hierarchical.hpp"
#include "adaptive/time_varying.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace postal;

  const std::uint64_t n = argc > 1 ? std::stoull(argv[1]) : 256;

  std::cout << "Part 1: latency spike during a broadcast to n=" << n
            << " processors\n";
  const LatencyProfile spike =
      LatencyProfile::step(Rational(2), Rational(8), Rational(3));
  std::cout << "profile: lambda = 2 for t < 3, lambda = 8 afterwards\n\n";

  TextTable t1({"planner", "completion", "vs adaptive"});
  const Rational adaptive =
      adaptive_broadcast(n, spike, AdaptPolicy::kAdaptive).completion;
  const Rational fixed = adaptive_broadcast(n, spike, AdaptPolicy::kStatic).completion;
  const Rational learned =
      adaptive_broadcast(n, spike, AdaptPolicy::kEstimated).completion;
  t1.add_row({"static (plans with stale lambda=2)", fixed.str(),
              fmt(fixed.to_double() / adaptive.to_double(), 3) + "x"});
  t1.add_row({"adaptive (true lambda at each send)", adaptive.str(), "1.000x"});
  t1.add_row({"estimated (EWMA from deliveries)", learned.str(),
              fmt(learned.to_double() / adaptive.to_double(), 3) + "x"});
  t1.print(std::cout);

  std::cout << "\nPart 2: two-level machine (clusters of 8; lambda_intra=1, "
               "lambda_inter=8)\n\n";
  const TwoLevelParams two_level{n, 8, Rational(1), Rational(8)};
  const HeteroReport flat =
      simulate_two_level(hierarchical_flat_schedule(two_level), two_level);
  const HeteroReport hier =
      simulate_two_level(hierarchical_two_level_schedule(two_level), two_level);
  if (!flat.ok || !hier.ok) {
    std::cerr << "internal error: hierarchical schedules failed validation\n";
    return 1;
  }
  TextTable t2({"plan", "completion", "speedup"});
  t2.add_row({"flat (single tree at lambda_inter)", flat.completion.str(), "1.000x"});
  t2.add_row({"two-level (leaders first, then clusters)", hier.completion.str(),
              fmt(flat.completion.to_double() / hier.completion.to_double(), 3) + "x"});
  t2.print(std::cout);

  std::cout << "\nTakeaway: adapting to the latency in force never loses, and a "
               "latency hierarchy is worth exploiting -- both open directions "
               "from the paper's Section 5.\n";
  return 0;
}
