// Scenario: broadcasting through failures and congestion, and across a
// two-level machine -- the paper's Section 5 "further research" made
// runnable.
//
//   ./adaptive_failover [n]
//
// Part 1: a relay near the root crashes mid-broadcast (expressed as a
// FaultPlan, the library's deterministic fault-injection data model). The
// paper's optimal BCAST silently orphans the relay's whole subtree; the
// reliable_bcast protocol detects the dead child by ack timeout and
// re-roots the orphaned range, reaching every survivor.
//
// Part 2: mid-broadcast the network latency spikes (2 -> 8). The spike is
// the same FaultPlan mechanism (a latency-spike window), measured on the
// event-driven Machine; the adaptive planners replan every split with the
// latency in force and are compared against that measured static run.
//
// Part 3: the same n processors arranged as clusters (cheap intra-cluster
// wires, expensive inter-cluster wires). A flat postal plan at the
// conservative lambda is compared with a hierarchy-aware two-level plan.
#include <cstdint>
#include <iostream>
#include <string>

#include "adaptive/hierarchical.hpp"
#include "adaptive/time_varying.hpp"
#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "sim/machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace postal;

  const std::uint64_t n = argc > 1 ? std::stoull(argv[1]) : 256;
  if (n < 4) {
    std::cerr << "need n >= 4 for an interesting failure\n";
    return 1;
  }

  const Rational lambda(2);
  const PostalParams params(n, lambda);
  GenFib fib(lambda);

  std::cout << "Part 1: a relay crashes mid-broadcast (n=" << n
            << ", lambda=" << lambda << ")\n";
  // The root's first delegation owns the largest subtree [j, n) -- crash
  // that relay at the instant its copy of the message would arrive. This
  // is the worst single crash for plain BCAST.
  const auto relay = static_cast<ProcId>(fib.bcast_split(n));
  FaultPlan crash_plan;
  crash_plan.crashes.push_back(CrashFault{relay, lambda});
  std::cout << "fault plan: crash p" << relay << " (owner of ["
            << relay << ", " << n << ")) at t = " << lambda << "\n\n";

  Machine machine(params, 1);
  machine.attach_faults(crash_plan);
  BcastProtocol plain(params);
  const MachineResult plain_result = machine.run(plain);
  const std::uint64_t plain_orphans =
      plain_result.trace.uncovered(0).size() - crash_plan.crashes.size();

  const ReliableBcastReport reliable = run_reliable_bcast(params, &crash_plan);
  if (!reliable.covered || !reliable.validation.ok) {
    std::cerr << "internal error: reliable broadcast failed to recover: "
              << reliable.validation.summary() << "\n";
    return 1;
  }

  TextTable t1({"protocol", "live procs missed", "completion", "overhead"});
  t1.add_row({"BCAST (paper, no acks)", std::to_string(plain_orphans),
              plain_result.trace.makespan().str(), "-"});
  t1.add_row({"reliable_bcast (ack+repair)",
              std::to_string(reliable.uncovered_alive.size()),
              reliable.completion.str(),
              "+" + reliable.recovery_overhead.str() + " vs f_lambda(n)=" +
                  reliable.baseline.str()});
  t1.print(std::cout);
  std::cout << "reliable_bcast: " << reliable.counters.retransmissions
            << " retransmissions, " << reliable.counters.dead_declared
            << " dead declared, " << reliable.counters.repairs << " repair(s)\n";

  std::cout << "\nPart 2: latency spike during a broadcast (lambda 2 -> 8 "
               "from t=3)\n";
  const LatencyProfile spike =
      LatencyProfile::step(Rational(2), Rational(8), Rational(3));
  const Rational adaptive =
      adaptive_broadcast(n, spike, AdaptPolicy::kAdaptive).completion;
  const Rational learned =
      adaptive_broadcast(n, spike, AdaptPolicy::kEstimated).completion;

  // The static planner does not replan: its sends simply experience the
  // spike. That is exactly a FaultPlan latency-spike window, measured on
  // the event-driven Machine instead of assumed.
  FaultPlan spike_plan;
  spike_plan.spikes.push_back(
      LatencySpike{Rational(3), Rational(1'000'000), Rational(6)});
  Machine spiked(params, 1);
  spiked.attach_faults(spike_plan);
  BcastProtocol stale(params);
  const MachineResult spiked_result = spiked.run(stale);
  const Rational fixed = spiked_result.trace.makespan();

  TextTable t2({"planner", "completion", "vs adaptive"});
  t2.add_row({"static (machine run under the spike plan)", fixed.str(),
              fmt(fixed.to_double() / adaptive.to_double(), 3) + "x"});
  t2.add_row({"adaptive (true lambda at each send)", adaptive.str(), "1.000x"});
  t2.add_row({"estimated (EWMA from deliveries)", learned.str(),
              fmt(learned.to_double() / adaptive.to_double(), 3) + "x"});
  t2.print(std::cout);
  std::cout << "(" << spiked_result.faults.spikes_applied
            << " sends stretched by the spike window)\n";

  std::cout << "\nPart 3: two-level machine (clusters of 8; lambda_intra=1, "
               "lambda_inter=8)\n\n";
  const TwoLevelParams two_level{n, 8, Rational(1), Rational(8)};
  const HeteroReport flat =
      simulate_two_level(hierarchical_flat_schedule(two_level), two_level);
  const HeteroReport hier =
      simulate_two_level(hierarchical_two_level_schedule(two_level), two_level);
  if (!flat.ok || !hier.ok) {
    std::cerr << "internal error: hierarchical schedules failed validation\n";
    return 1;
  }
  TextTable t3({"plan", "completion", "speedup"});
  t3.add_row({"flat (single tree at lambda_inter)", flat.completion.str(), "1.000x"});
  t3.add_row({"two-level (leaders first, then clusters)", hier.completion.str(),
              fmt(flat.completion.to_double() / hier.completion.to_double(), 3) + "x"});
  t3.print(std::cout);

  std::cout << "\nTakeaway: acks and timeouts turn the optimal-but-fragile "
               "Fibonacci tree into a protocol that reaches every survivor "
               "(the conservative default timeouts trade recovery speed for "
               "zero false suspicions), adapting to the latency in force "
               "never loses, and a latency hierarchy is worth exploiting -- "
               "all open directions from the paper's Section 5.\n";
  return 0;
}
