// Scenario: deploying the postal model on a real fabric.
//
//   ./network_calibration [rows] [cols] [topology: mesh|torus|complete]
//
// A cluster's interconnect is rarely documented as a single lambda. This
// example measures one: it probes a packet-level network simulation with
// ping packets, snaps the measured latency onto a rational grid, plans the
// optimal generalized Fibonacci broadcast for that lambda, replays the
// plan on the wire, and reports how well the postal prediction transferred
// -- alongside the lambda-oblivious binomial tree an MPI library in
// telephone-model mindset would have used.
#include <cstdint>
#include <iostream>
#include <string>

#include "model/genfib.hpp"
#include "net/calibrate.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace postal;

  const std::uint64_t rows = argc > 1 ? std::stoull(argv[1]) : 6;
  const std::uint64_t cols = argc > 2 ? std::stoull(argv[2]) : 6;
  const std::string kind = argc > 3 ? argv[3] : "mesh";

  NetConfig config;
  config.send_overhead = Rational(1);
  config.recv_overhead = Rational(1);
  config.wire_time = Rational(1);

  Topology topology = kind == "torus"    ? Topology::torus2d(rows, cols, Rational(1))
                      : kind == "complete" ? Topology::complete(rows * cols, Rational(3))
                                           : Topology::mesh2d(rows, cols, Rational(1));
  PacketNetwork net(std::move(topology), config);
  const std::uint64_t n = net.topology().n();

  std::cout << "Calibrating a " << rows << "x" << cols << " " << kind << " ("
            << n << " nodes)\n\n";

  const CalibrationReport cal = calibrate_lambda(net, /*pairs=*/128, /*seed=*/17);
  TextTable cal_table({"probes", "lambda min", "lambda mean", "lambda max",
                       "lambda snapped"});
  cal_table.add_row({std::to_string(cal.probes), cal.lambda_min.str(),
                     cal.lambda_mean.str(), cal.lambda_max.str(),
                     cal.lambda_snapped.str()});
  cal_table.print(std::cout);

  const Rational lambda = cal.lambda_snapped;
  const PostalParams params(n, lambda);
  GenFib fib(lambda);

  std::cout << "\nPlanning BCAST for MPS(" << n << ", " << lambda
            << "): predicted completion f_lambda(n) = " << fib.f(n) << "\n\n";

  const ReplayReport fib_run =
      replay_schedule(net, bcast_schedule(params, fib), fib.f(n));
  const BroadcastTree binomial = BroadcastTree::binomial(n);
  const ReplayReport bin_run = replay_schedule(
      net, binomial.greedy_schedule(lambda), binomial.completion_time(lambda));

  TextTable run_table({"plan", "postal prediction", "observed on wire", "ratio"});
  run_table.add_row({"Fibonacci tree (postal-optimal)", fib_run.predicted.str(),
                     fib_run.observed.str(), fmt(fib_run.ratio, 3)});
  run_table.add_row({"binomial tree (lambda-oblivious)", bin_run.predicted.str(),
                     bin_run.observed.str(), fmt(bin_run.ratio, 3)});
  run_table.print(std::cout);

  const double speedup = bin_run.observed.to_double() / fib_run.observed.to_double();
  std::cout << "\nlatency-aware speedup on the wire: " << fmt(speedup, 3) << "x\n";
  return 0;
}
