// postal_cli: a single command-line entry point to the library.
//
//   postal_cli tree <n> <lambda>                render the optimal broadcast tree
//   postal_cli plan <n> <m> <lambda>            pick the best multi-message algorithm
//   postal_cli collectives <n> <lambda>         exact times for every collective
//   postal_cli calibrate <rows> <cols> <kind>   measure lambda on a packet network
//   postal_cli bounds <n> <lambda>              Theorem 7 numbers for one point
//
// Latencies accept integers, fractions ("5/2"), or decimals ("2.5").
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "model/bounds.hpp"
#include "net/calibrate.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

int usage() {
  std::cerr << "usage:\n"
            << "  postal_cli tree <n> <lambda>\n"
            << "  postal_cli plan <n> <m> <lambda>\n"
            << "  postal_cli collectives <n> <lambda>\n"
            << "  postal_cli calibrate <rows> <cols> <mesh|torus|complete>\n"
            << "  postal_cli bounds <n> <lambda>\n";
  return 2;
}

int cmd_tree(std::uint64_t n, const Rational& lambda) {
  const BroadcastTree tree = BroadcastTree::fibonacci(n, lambda);
  std::cout << "optimal broadcast tree for MPS(" << n << ", " << lambda
            << "), completion t = " << tree.completion_time(lambda) << ":\n"
            << tree.render(lambda);
  return 0;
}

int cmd_plan(std::uint64_t n, std::uint64_t m, const Rational& lambda) {
  Communicator comm(n, lambda);
  const PostalParams params(n, lambda);
  TextTable table({"algorithm", "predicted T"});
  for (const MultiAlgo algo : all_multi_algos()) {
    table.add_row({algo_name(algo), predict_multi(algo, params, m).str()});
  }
  table.print(std::cout);
  const CollectivePlan plan = comm.broadcast(m);
  std::cout << "\nrecommended: " << plan.algorithm << "  (T = " << plan.completion
            << ", lower bound " << plan.lower_bound << ", verified "
            << (plan.verified ? "yes" : "no") << ")\n";
  return 0;
}

int cmd_collectives(std::uint64_t n, const Rational& lambda) {
  Communicator comm(n, lambda);
  TextTable table({"collective", "algorithm", "T", "lower bound"});
  struct Row {
    const char* name;
    CollectivePlan plan;
  };
  const Row rows[] = {
      {"broadcast", comm.broadcast()}, {"reduce", comm.reduce()},
      {"scatter", comm.scatter()},     {"gather", comm.gather()},
      {"allgather", comm.allgather()}, {"alltoall", comm.alltoall()},
      {"barrier", comm.barrier()},     {"scan", comm.scan()},
  };
  for (const Row& row : rows) {
    table.add_row({row.name, row.plan.algorithm, row.plan.completion.str(),
                   row.plan.lower_bound.str()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_calibrate(std::uint64_t rows, std::uint64_t cols, const std::string& kind) {
  Topology topology = kind == "torus"      ? Topology::torus2d(rows, cols, Rational(1))
                      : kind == "complete" ? Topology::complete(rows * cols, Rational(3))
                                           : Topology::mesh2d(rows, cols, Rational(1));
  PacketNetwork net(std::move(topology), NetConfig{});
  const CalibrationReport cal = calibrate_lambda(net, 128, 1);
  std::cout << "effective lambda on " << rows << "x" << cols << " " << kind
            << ": min " << cal.lambda_min << ", mean " << cal.lambda_mean
            << ", max " << cal.lambda_max << ", snapped " << cal.lambda_snapped
            << "\n";
  return 0;
}

int cmd_bounds(std::uint64_t n, const Rational& lambda) {
  GenFib fib(lambda);
  std::cout << "f_lambda(n)          = " << fib.f(n) << "\n";
  std::cout << "Theorem 7 lower      = " << fmt(thm7_f_lower(lambda, n)) << "\n";
  std::cout << "Theorem 7 upper      = " << fmt(thm7_f_upper(lambda, n)) << "\n";
  std::cout << "Lemma 8 (m=1) lower  = " << lemma8_lower(fib, n, 1) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "tree" && args.size() == 2) {
      return cmd_tree(std::stoull(args[0]), Rational::parse(args[1]));
    }
    if (cmd == "plan" && args.size() == 3) {
      return cmd_plan(std::stoull(args[0]), std::stoull(args[1]),
                      Rational::parse(args[2]));
    }
    if (cmd == "collectives" && args.size() == 2) {
      return cmd_collectives(std::stoull(args[0]), Rational::parse(args[1]));
    }
    if (cmd == "calibrate" && args.size() == 3) {
      return cmd_calibrate(std::stoull(args[0]), std::stoull(args[1]), args[2]);
    }
    if (cmd == "bounds" && args.size() == 2) {
      return cmd_bounds(std::stoull(args[0]), Rational::parse(args[1]));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
