// postal_cli: a single command-line entry point to the library.
//
//   postal_cli tree <n> <lambda>                render the optimal broadcast tree
//   postal_cli plan <n> <m> <lambda>            pick the best multi-message algorithm
//   postal_cli collectives <n> <lambda>         exact times for every collective
//   postal_cli calibrate <rows> <cols> <kind>   measure lambda on a packet network
//   postal_cli bounds <n> <lambda>              Theorem 7 numbers for one point
//   postal_cli trace-export <n> <lambda> [out]  BCAST run -> Chrome trace JSON
//                                               (chrome://tracing / Perfetto;
//                                               out defaults to stdout)
//   postal_cli metrics <n> <lambda>             run metrics as JSON lines
//   postal_cli simulate <n> <lambda> [--threads T]
//                                               event-driven BCAST run on the
//                                               sharded ParMachine + validate;
//                                               prints the engine/shard/window
//                                               breakdown (docs/SIMULATION.md)
//   postal_cli sweep <ns> <lambdas> [threads]   fan a (n, lambda) grid across
//                                               cores; cross-check Theorem 6
//                                               at every point (comma lists,
//                                               e.g. sweep 2,64,512 1,5/2,4 8)
//   postal_cli faults <n> <lambda> <seed> <crashes> [loss_p]
//                                               reliable broadcast under a
//                                               seeded random fault plan
//   postal_cli faults <n> <lambda> --plan <file.json>
//                                               ... under an explicit plan
//     both forms accept [--trace out.json] fault-overlay export and
//     [--threads T] simulation lanes (results identical at every T)
//   postal_cli elect <n> <lambda> [--seed S [--crashes C]] [--plan file.json]
//                    [--crash R:T] [--policy rank|depth] [--threads T]
//                    [--trace out.json]
//                                               postal-model leader election
//                                               under an optional fault plan
//                                               (docs/COORDINATION.md)
//   postal_cli consensus <n> <lambda> [--seed S [--crashes C]]
//                    [--plan file.json] [--crash R:T] [--threads T]
//                    [--trace out.json]
//                                               broadcast-based view-change
//                                               consensus; exits non-zero
//                                               unless the coordination
//                                               validator certifies the run
//   postal_cli oracle <n> <lambda> makespan     f_lambda(n) + witness rank,
//                                               O(1) memory at any n
//   postal_cli oracle <n> <lambda> rank <r>     one rank's parent / inform
//                                               time / children
//   postal_cli oracle <n> <lambda> range <lo> <hi>
//                                               dump + streaming-validate
//                                               the receive events of ranks
//                                               [lo, hi) (docs/ORACLE.md)
//   postal_cli serve <workload> <seed> [--queue CAP] [--exec-every K]
//                    [--fault-seed S] [--threads T] [--time-path auto|rational]
//                                               open-loop broadcast service
//                                               over a seeded workload spec
//                                               (docs/SERVICE.md); stdout is
//                                               a pure function of the
//                                               arguments -- byte-identical
//                                               across reruns and thread
//                                               counts (wall time on stderr)
//
// Latencies accept integers, fractions ("5/2"), or decimals ("2.5").
// With POSTAL_BENCH_JSON set, sweep appends one bench record per grid point
// (thread count and per-point wall time in extra; docs/PARALLELISM.md),
// faults appends one "postal_cli_faults" record (faults_injected,
// retransmissions, repair_time in extra; docs/FAULTS.md), and oracle range
// appends one "postal_cli_oracle" record (stream verdict in extra).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "coord/consensus.hpp"
#include "coord/election.hpp"
#include "coord/log.hpp"
#include "coord/metrics.hpp"
#include "faults/fault_plan.hpp"
#include "model/bounds.hpp"
#include "net/calibrate.hpp"
#include "obs/bench_record.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "oracle/oracle.hpp"
#include "par/sweep.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

int usage() {
  std::cerr << "usage:\n"
            << "  postal_cli tree <n> <lambda>\n"
            << "  postal_cli plan <n> <m> <lambda>\n"
            << "  postal_cli collectives <n> <lambda>\n"
            << "  postal_cli calibrate <rows> <cols> <mesh|torus|complete>\n"
            << "  postal_cli bounds <n> <lambda>\n"
            << "  postal_cli trace-export <n> <lambda> [out.json]\n"
            << "  postal_cli metrics <n> <lambda>\n"
            << "  postal_cli simulate <n> <lambda> [--threads T] "
               "[--trace-mode full|counters]\n"
            << "  postal_cli sweep <n,n,...> <lambda,lambda,...> [threads]\n"
            << "  postal_cli faults <n> <lambda> <seed> <crashes> [loss_p] "
               "[--trace out.json] [--threads T]\n"
            << "  postal_cli faults <n> <lambda> --plan <file.json> "
               "[--trace out.json] [--threads T]\n"
            << "  postal_cli elect <n> <lambda> [--seed S [--crashes C]] "
               "[--plan file.json]\n"
            << "             [--crash R:T] [--policy rank|depth] [--threads T] "
               "[--trace out.json]\n"
            << "  postal_cli consensus <n> <lambda> [--seed S [--crashes C]] "
               "[--plan file.json]\n"
            << "             [--crash R:T] [--threads T] [--trace out.json]\n"
            << "  postal_cli log <n> <lambda> [--seed S [--crashes C]] "
               "[--plan file.json]\n"
            << "             [--crash R:T] [--reconfig R:T[,R:T...]] "
               "[--commands K] [--threads T]\n"
            << "             [--trace out.json]\n"
            << "  postal_cli oracle <n> <lambda> makespan\n"
            << "  postal_cli oracle <n> <lambda> rank <r>\n"
            << "  postal_cli oracle <n> <lambda> range <lo> <hi>\n"
            << "  postal_cli serve <workload> <seed> [--queue CAP] "
               "[--exec-every K]\n"
            << "             [--fault-seed S] [--threads T] "
               "[--time-path auto|rational]\n"
            << "    e.g. serve 'poisson;grid=16;rate=1/4;jobs=1000;"
               "mix=w1:n64:l2:m1' 7\n";
  return 2;
}

/// Remove "<flag> <value>" from `rest` wherever it appears; returns the
/// value, or "" if the flag is absent.
std::string take_flag(std::vector<std::string>& rest, const std::string& flag) {
  for (std::size_t i = 0; i + 1 < rest.size(); ++i) {
    if (rest[i] == flag) {
      std::string value = rest[i + 1];
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                 rest.begin() + static_cast<std::ptrdiff_t>(i + 2));
      return value;
    }
  }
  return std::string();
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Generate + validate the optimal broadcast with wall-clock timing folded
// into `registry` ("sched.generate", "sim.validate") alongside the machine
// and validation metrics.
SimReport timed_bcast_run(const PostalParams& params, obs::MetricsRegistry& registry,
                          Schedule& schedule) {
  {
    obs::ScopedTimer timer(registry.timer("sched.generate"));
    schedule = bcast_schedule(params);
  }
  SimReport report;
  {
    obs::ScopedTimer timer(registry.timer("sim.validate"));
    report = validate_schedule(schedule, params);
  }
  obs::record_sim_report(registry, report);
  return report;
}

int cmd_trace_export(std::uint64_t n, const Rational& lambda,
                     const std::string& out_path) {
  const PostalParams params(n, lambda);
  obs::MetricsRegistry registry;
  Schedule schedule;
  const SimReport report = timed_bcast_run(params, registry, schedule);

  std::string trace_json;
  {
    obs::ScopedTimer timer(registry.timer("obs.trace_export"));
    trace_json = obs::trace_to_chrome_json(report.trace, params);
  }
  if (out_path.empty() || out_path == "-") {
    std::cout << trace_json << "\n";
  } else {
    std::ofstream out(out_path);
    if (!out.good()) {
      std::cerr << "error: cannot open '" << out_path << "' for writing\n";
      return 1;
    }
    out << trace_json << "\n";
    std::cerr << "wrote " << trace_json.size() << " bytes to " << out_path
              << "  (open in chrome://tracing or ui.perfetto.dev)\n"
              << "run: " << report.trace.deliveries().size()
              << " deliveries, makespan " << report.makespan << ", validation "
              << (report.ok ? "PASS" : "FAIL") << "\n";
  }
  return report.ok ? 0 : 1;
}

int cmd_metrics(std::uint64_t n, const Rational& lambda) {
  const PostalParams params(n, lambda);
  obs::MetricsRegistry registry;
  Schedule schedule;
  const SimReport report = timed_bcast_run(params, registry, schedule);

  // Re-run event-driven to surface the Machine's occupancy counters too.
  Machine machine(params, 1);
  BcastProtocol protocol(params);
  const MachineResult result = machine.run(protocol);
  obs::record_machine_stats(registry, result.stats);

  std::cout << registry.to_jsonl();
  return report.ok ? 0 : 1;
}

int cmd_simulate(std::uint64_t n, const Rational& lambda, unsigned threads,
                 TraceMode trace_mode) {
  const PostalParams params(n, lambda);
  const obs::WallClock clock;
  ParMachine machine(params, 1);
  machine.set_threads(threads);
  machine.set_trace_mode(trace_mode);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const MachineResult result = machine.run(factory);
  const double wall_ms = clock.elapsed_ms();
  const ParRunInfo& info = machine.last_run_info();
  const SimReport report = validate_schedule(result.schedule, params);

  std::cout << "event-driven BCAST on MPS(" << n << ", " << lambda << "), "
            << threads << " lane(s):\n";
  TextTable table({"quantity", "value"});
  table.add_row({"engine", info.parallel_engine
                               ? "sharded (" + std::to_string(info.shards) + " shard(s))"
                               : "sequential fallback: " + info.fallback_reason});
  if (info.parallel_engine) {
    table.add_row({"windows", std::to_string(info.windows)});
    table.add_row({"barrier events", std::to_string(info.barrier_events)});
    table.add_row({"cross-shard events", std::to_string(info.cross_shard_events)});
    table.add_row({"replayed pops", std::to_string(info.replayed_pops)});
    table.add_row({"window / merge / flush ms",
                   fmt(info.window_ms, 2) + " / " + fmt(info.merge_ms, 2) +
                       " / " + fmt(info.flush_ms, 2)});
  }
  table.add_row({"trace mode", trace_mode == TraceMode::kCounters
                               ? "counters (" +
                                     std::to_string(result.trace.delivery_count()) +
                                     " deliveries elided)"
                               : "full"});
  table.add_row({"events processed", std::to_string(result.stats.events_processed)});
  table.add_row({"sends enqueued", std::to_string(result.stats.sends_enqueued)});
  table.add_row({"makespan", report.makespan.str()});
  table.add_row({"validation", report.ok ? "PASS" : "FAIL"});
  table.print(std::cout);
  for (std::size_t s = 0; s < info.shard.size(); ++s) {
    const ParShardInfo& sh = info.shard[s];
    std::cout << "  shard " << s << ": " << sh.pops << " pop(s), "
              << sh.mailbox_in << " mailbox-in, " << sh.stalled_windows
              << " stalled window(s)\n";
  }

  obs::BenchRecord rec;
  rec.bench = "postal_cli_simulate";
  rec.n = n;
  rec.lambda = lambda;
  rec.makespan = report.makespan;
  rec.wall_ms = wall_ms;
  rec.verdict = report.ok ? "CONSISTENT" : "MISMATCH";
  rec.extra = {{"threads", std::to_string(threads)},
               {"shards", std::to_string(info.shards)},
               {"windows", std::to_string(info.windows)},
               {"engine", info.parallel_engine ? "sharded" : "sequential"},
               {"trace_mode",
                trace_mode == TraceMode::kCounters ? "counters" : "full"}};
  obs::emit_bench_record(rec);
  return report.ok ? 0 : 1;
}

int cmd_tree(std::uint64_t n, const Rational& lambda) {
  const BroadcastTree tree = BroadcastTree::fibonacci(n, lambda);
  std::cout << "optimal broadcast tree for MPS(" << n << ", " << lambda
            << "), completion t = " << tree.completion_time(lambda) << ":\n"
            << tree.render(lambda);
  return 0;
}

int cmd_plan(std::uint64_t n, std::uint64_t m, const Rational& lambda) {
  Communicator comm(n, lambda);
  const PostalParams params(n, lambda);
  TextTable table({"algorithm", "predicted T"});
  for (const MultiAlgo algo : all_multi_algos()) {
    table.add_row({algo_name(algo), predict_multi(algo, params, m).str()});
  }
  table.print(std::cout);
  const CollectivePlan plan = comm.broadcast(m);
  std::cout << "\nrecommended: " << plan.algorithm << "  (T = " << plan.completion
            << ", lower bound " << plan.lower_bound << ", verified "
            << (plan.verified ? "yes" : "no") << ")\n";
  return 0;
}

int cmd_collectives(std::uint64_t n, const Rational& lambda) {
  Communicator comm(n, lambda);
  TextTable table({"collective", "algorithm", "T", "lower bound"});
  struct Row {
    const char* name;
    CollectivePlan plan;
  };
  const Row rows[] = {
      {"broadcast", comm.broadcast()}, {"reduce", comm.reduce()},
      {"scatter", comm.scatter()},     {"gather", comm.gather()},
      {"allgather", comm.allgather()}, {"alltoall", comm.alltoall()},
      {"barrier", comm.barrier()},     {"scan", comm.scan()},
  };
  for (const Row& row : rows) {
    table.add_row({row.name, row.plan.algorithm, row.plan.completion.str(),
                   row.plan.lower_bound.str()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_calibrate(std::uint64_t rows, std::uint64_t cols, const std::string& kind) {
  Topology topology = kind == "torus"      ? Topology::torus2d(rows, cols, Rational(1))
                      : kind == "complete" ? Topology::complete(rows * cols, Rational(3))
                                           : Topology::mesh2d(rows, cols, Rational(1));
  PacketNetwork net(std::move(topology), NetConfig{});
  const CalibrationReport cal = calibrate_lambda(net, 128, 1);
  std::cout << "effective lambda on " << rows << "x" << cols << " " << kind
            << ": min " << cal.lambda_min << ", mean " << cal.lambda_mean
            << ", max " << cal.lambda_max << ", snapped " << cal.lambda_snapped
            << "\n";
  const NetRunStats& stats = net.last_run_stats();
  std::cout << "last probe run: " << stats.packets_delivered << " packets, "
            << stats.hops_total << " hops, " << stats.wires.size()
            << " wires used";
  if (!stats.wires.empty()) {
    const WireUse* busiest = &stats.wires.front();
    for (const WireUse& use : stats.wires) {
      if (use.busy > busiest->busy) busiest = &use;
    }
    std::cout << "; busiest wire " << busiest->from << "->" << busiest->to
              << " busy " << busiest->busy << " of " << stats.makespan;
  }
  std::cout << "\n";
  return 0;
}

int cmd_sweep(const std::string& ns_csv, const std::string& lambdas_csv,
              unsigned threads) {
  std::vector<std::uint64_t> ns;
  for (const std::string& item : split_csv(ns_csv)) ns.push_back(std::stoull(item));
  std::vector<Rational> lambdas;
  for (const std::string& item : split_csv(lambdas_csv)) {
    lambdas.push_back(Rational::parse(item));
  }

  const obs::WallClock clock;
  par::SweepOptions options;
  options.threads = threads;
  const std::vector<par::SweepPointResult> results =
      par::sweep_grid(ns, lambdas, options);
  const double total_ms = clock.elapsed_ms();

  TextTable table({"lambda", "n", "f_lambda(n)", "DP", "greedy", "sim", "sends", "ok"});
  bool all_ok = true;
  for (const par::SweepPointResult& r : results) {
    all_ok = all_ok && r.ok;
    table.add_row({r.lambda.str(), std::to_string(r.n), r.f.str(), r.dp.str(),
                   r.greedy.str(), r.makespan.str(), std::to_string(r.sends),
                   r.ok ? "yes" : "NO"});
    obs::BenchRecord rec;
    rec.bench = "postal_cli_sweep";
    rec.n = r.n;
    rec.lambda = r.lambda;
    rec.makespan = r.makespan;
    rec.wall_ms = r.wall_ms;
    rec.verdict = r.ok ? "CONSISTENT" : "MISMATCH";
    rec.extra = {{"threads", std::to_string(threads)},
                 {"f", r.f.str()},
                 {"dp", r.dp.str()},
                 {"greedy", r.greedy.str()},
                 {"sends", std::to_string(r.sends)},
                 {"dp_table_ms", fmt(r.dp_table_ms, 3)}};
    obs::emit_bench_record(rec);
  }
  table.print(std::cout);
  std::cout << "\nswept " << results.size() << " points with " << threads
            << " thread(s) in " << fmt(total_ms, 1) << " ms; "
            << (all_ok ? "all points consistent (Theorem 6 holds on the grid)"
                       : "MISMATCH: at least one point failed the cross-check")
            << "\n";
  return all_ok ? 0 : 1;
}

int cmd_faults(std::uint64_t n, const Rational& lambda, const FaultPlan& plan,
               const std::string& trace_path, unsigned threads) {
  const PostalParams params(n, lambda);
  ReliableBcastOptions options;
  options.threads = threads;
  const obs::WallClock clock;
  const ReliableBcastReport report = run_reliable_bcast(params, &plan, options);
  const double wall_ms = clock.elapsed_ms();

  std::cout << "fault plan: " << plan.crashes.size() << " crash(es), "
            << plan.losses.size() << " lossy link(s), " << plan.spikes.size()
            << " spike window(s)  [seed " << plan.seed << "]\n";
  if (threads > 1) {
    std::cout << "simulation lanes: " << threads
              << " (sharded engine; report identical at every count)\n";
  }
  for (const CrashFault& c : plan.crashes) {
    std::cout << "  crash p" << c.proc << " at t = " << c.time << "\n";
  }
  const FaultStats& faults = report.result.faults;
  std::cout << "\nreliable broadcast on MPS(" << n << ", " << lambda << "):\n";
  TextTable table({"quantity", "value"});
  table.add_row({"baseline f_lambda(n)", report.baseline.str()});
  table.add_row({"completion (live procs)", report.completion.str()});
  table.add_row({"recovery overhead", report.recovery_overhead.str()});
  table.add_row({"faults injected", std::to_string(faults.total())});
  table.add_row({"data sends", std::to_string(report.counters.data_sends)});
  table.add_row({"retransmissions", std::to_string(report.counters.retransmissions)});
  table.add_row({"dead declared", std::to_string(report.counters.dead_declared)});
  table.add_row({"repairs", std::to_string(report.counters.repairs)});
  table.print(std::cout);

  const bool pass = report.covered && report.validation.ok;
  std::cout << "\ncoverage: "
            << (report.covered ? "every live processor reached"
                               : std::to_string(report.uncovered_alive.size()) +
                                     " live processor(s) NOT reached")
            << " (" << report.crashed.size() << " crashed, exempt)\n"
            << "validation: " << report.validation.summary() << "\n"
            << "verdict: " << (pass ? "PASS" : "FAIL") << "\n";
  if (!report.validation.ok) {
    // Rejected runs spell out every violation string on stderr (one per
    // line) so scripts can capture the validator's exact complaint.
    for (const std::string& v : report.validation.violations) {
      std::cerr << "violation: " << v << "\n";
    }
  }

  if (!trace_path.empty()) {
    const std::string trace_json =
        obs::trace_to_chrome_json(report.result.trace, params, faults);
    std::ofstream out(trace_path);
    if (!out.good()) {
      std::cerr << "error: cannot open '" << trace_path << "' for writing\n";
      return 1;
    }
    out << trace_json << "\n";
    std::cerr << "wrote " << trace_json.size() << " bytes to " << trace_path
              << " (fault markers overlaid; open in ui.perfetto.dev)\n";
  }

  obs::BenchRecord rec;
  rec.bench = "postal_cli_faults";
  rec.n = n;
  rec.lambda = lambda;
  rec.makespan = report.completion;
  rec.wall_ms = wall_ms;
  rec.verdict = pass ? "RECOVERED" : "FAIL";
  rec.extra = {{"faults_injected", std::to_string(faults.total())},
               {"retransmissions", std::to_string(report.counters.retransmissions)},
               {"repair_time", report.recovery_overhead.str()},
               {"crashes", std::to_string(plan.crashes.size())},
               {"seed", std::to_string(plan.seed)},
               {"threads", std::to_string(threads == 0 ? 1 : threads)}};
  obs::emit_bench_record(rec);
  return pass ? 0 : 1;
}

void print_plan_header(const FaultPlan& plan, bool have_plan) {
  if (!have_plan) {
    std::cout << "fault plan: none (fault-free run)\n";
    return;
  }
  std::cout << "fault plan: " << plan.crashes.size() << " crash(es), "
            << plan.losses.size() << " lossy link(s), " << plan.spikes.size()
            << " spike window(s)  [seed " << plan.seed << "]\n";
  for (const CrashFault& c : plan.crashes) {
    std::cout << "  crash p" << c.proc << " at t = " << c.time << "\n";
  }
}

/// Shared tail of elect/consensus: the judged verdict lines (violations on
/// stderr), the optional marker-overlaid Chrome trace, one bench record.
int finish_coord_run(const PostalParams& params, const SimReport& validation,
                     const coord::CoordCheck& check, const Trace& trace,
                     const FaultStats& faults,
                     const std::vector<obs::TraceMarker>& markers,
                     const std::string& trace_path, obs::BenchRecord rec,
                     double wall_ms) {
  const bool pass = validation.ok && check.ok;
  std::cout << "\nvalidation: " << validation.summary() << "\n"
            << "coordination check: " << check.summary() << "\n"
            << "verdict: " << (pass ? "PASS" : "FAIL") << "\n";
  if (!validation.ok) {
    for (const std::string& v : validation.violations) {
      std::cerr << "violation: " << v << "\n";
    }
  }
  if (!check.ok) {
    for (const std::string& v : check.violations) {
      std::cerr << "violation: " << v << "\n";
    }
  }
  if (!trace_path.empty()) {
    const std::string trace_json =
        obs::trace_to_chrome_json(trace, params, faults, markers);
    std::ofstream out(trace_path);
    if (!out.good()) {
      std::cerr << "error: cannot open '" << trace_path << "' for writing\n";
      return 1;
    }
    out << trace_json << "\n";
    std::cerr << "wrote " << trace_json.size() << " bytes to " << trace_path
              << " (" << markers.size()
              << " coordination marker(s) overlaid; open in ui.perfetto.dev)\n";
  }
  rec.wall_ms = wall_ms;
  obs::emit_bench_record(rec);
  return pass ? 0 : 1;
}

int cmd_elect(std::uint64_t n, const Rational& lambda, const FaultPlan& plan,
              bool have_plan, coord::ElectionPolicy policy,
              const std::string& trace_path, unsigned threads) {
  const PostalParams params(n, lambda);
  coord::ElectionOptions options;
  options.policy = policy;
  options.threads = threads;
  const obs::WallClock clock;
  const coord::ElectionReport report =
      coord::run_election(params, have_plan ? &plan : nullptr, options);
  const double wall_ms = clock.elapsed_ms();

  print_plan_header(plan, have_plan);
  std::cout << "\nleader election on MPS(" << n << ", " << lambda << "), policy "
            << (policy == coord::ElectionPolicy::kOracleDepth ? "oracle-depth"
                                                              : "highest-rank")
            << ":\n";
  TextTable table({"quantity", "value"});
  table.add_row({"leader", "p" + std::to_string(report.leader)});
  table.add_row({"heartbeat period", report.options.heartbeat_period.str()});
  table.add_row({"watchdog patience", report.watchdog.str()});
  table.add_row({"horizon", report.options.horizon.str()});
  table.add_row({"first suspicion", report.first_suspect.str()});
  table.add_row({"elected at", report.elected_at.str()});
  table.add_row({"election latency", report.election_latency.str()});
  table.add_row({"heartbeats", std::to_string(report.counters.heartbeats_sent)});
  table.add_row({"probes", std::to_string(report.counters.probes_sent)});
  table.add_row({"victories", std::to_string(report.counters.victories_sent)});
  table.add_row({"suspicions", std::to_string(report.counters.suspicions)});
  table.add_row({"adoptions", std::to_string(report.counters.adoptions)});
  table.add_row({"settled", report.settled ? "yes" : "no"});
  table.print(std::cout);

  obs::BenchRecord rec;
  rec.bench = "postal_cli_elect";
  rec.n = n;
  rec.lambda = lambda;
  rec.makespan = report.elected_at;
  rec.verdict = report.validation.ok && report.check.ok ? "ELECTED" : "FAIL";
  rec.extra = {{"leader", std::to_string(report.leader)},
               {"latency", report.election_latency.str()},
               {"suspicions", std::to_string(report.counters.suspicions)},
               {"seed", std::to_string(plan.seed)},
               {"threads", std::to_string(threads == 0 ? 1 : threads)}};
  return finish_coord_run(params, report.validation, report.check,
                          report.result.trace, report.result.faults,
                          coord::election_markers(report), trace_path,
                          std::move(rec), wall_ms);
}

int cmd_consensus(std::uint64_t n, const Rational& lambda, const FaultPlan& plan,
                  bool have_plan, const std::string& trace_path,
                  unsigned threads) {
  const PostalParams params(n, lambda);
  coord::ConsensusOptions options;
  options.threads = threads;
  const obs::WallClock clock;
  const coord::ConsensusReport report =
      coord::run_consensus(params, have_plan ? &plan : nullptr, options);
  const double wall_ms = clock.elapsed_ms();

  print_plan_header(plan, have_plan);
  std::uint64_t decides = 0;
  std::string value = "(none)";
  for (const coord::RankDecision& d : report.decisions) {
    if (!d.decided) continue;
    ++decides;
    value = std::to_string(d.value);
  }
  std::cout << "\nview-change consensus on MPS(" << n << ", " << lambda << "):\n";
  TextTable table({"quantity", "value"});
  table.add_row({"decided value", value});
  table.add_row({"ranks decided", std::to_string(decides)});
  table.add_row({"quorum", std::to_string(report.quorum)});
  table.add_row({"view length", report.options.view_length.str()});
  table.add_row({"views used", std::to_string(report.views_used + 1)});
  table.add_row({"decision latency", report.decision_latency.str()});
  table.add_row({"fault-free baseline", report.baseline.str()});
  table.add_row({"recovery time", report.recovery_time.str()});
  table.add_row({"view-changes", std::to_string(report.counters.view_changes_sent)});
  table.add_row({"proposals", std::to_string(report.counters.proposals)});
  table.add_row({"acks", std::to_string(report.counters.acks_sent)});
  table.add_row({"repairs", std::to_string(report.counters.proposal_repairs)});
  table.add_row({"heal replies", std::to_string(report.counters.heal_replies)});
  table.add_row({"settled", report.settled ? "yes" : "no"});
  table.print(std::cout);

  obs::BenchRecord rec;
  rec.bench = "postal_cli_consensus";
  rec.n = n;
  rec.lambda = lambda;
  rec.makespan = report.decision_latency;
  rec.verdict = report.validation.ok && report.check.ok ? "DECIDED" : "FAIL";
  rec.extra = {{"value", value},
               {"views", std::to_string(report.views_used + 1)},
               {"recovery", report.recovery_time.str()},
               {"seed", std::to_string(plan.seed)},
               {"threads", std::to_string(threads == 0 ? 1 : threads)}};
  return finish_coord_run(params, report.validation, report.check,
                          report.result.trace, report.result.faults,
                          coord::consensus_markers(report), trace_path,
                          std::move(rec), wall_ms);
}

int cmd_log(std::uint64_t n, const Rational& lambda, const FaultPlan& plan,
            bool have_plan, const coord::LogOptions& log_options,
            const std::string& trace_path, unsigned threads) {
  const PostalParams params(n, lambda);
  coord::LogOptions options = log_options;
  options.threads = threads;
  const obs::WallClock clock;
  const coord::LogReport report =
      coord::run_log(params, have_plan ? &plan : nullptr, options);
  const double wall_ms = clock.elapsed_ms();

  print_plan_header(plan, have_plan);
  std::uint64_t full_prefixes = 0;
  for (const coord::RankLog& rl : report.ranks) {
    if (rl.started && rl.commit_prefix == report.slots) ++full_prefixes;
  }
  std::cout << "\nreplicated log on MPS(" << n << ", " << lambda << "):\n";
  TextTable table({"quantity", "value"});
  table.add_row({"slots", std::to_string(report.slots)});
  table.add_row({"quorum", std::to_string(report.quorum)});
  table.add_row({"final members", std::to_string(report.final_members.size())});
  table.add_row({"full prefixes", std::to_string(full_prefixes)});
  table.add_row({"view length", report.options.view_length.str()});
  table.add_row({"lease length", report.options.lease_length.str()});
  table.add_row({"heartbeat period", report.options.heartbeat_period.str()});
  table.add_row({"views used", std::to_string(report.views_used + 1)});
  table.add_row({"commit latency", report.commit_latency.str()});
  table.add_row({"fault-free baseline", report.baseline.str()});
  table.add_row({"recovery time", report.recovery_time.str()});
  table.add_row({"proposals", std::to_string(report.counters.proposals)});
  table.add_row({"commits", std::to_string(report.counters.commits)});
  table.add_row({"catch-up commits",
                 std::to_string(report.counters.catchup_commits)});
  table.add_row({"lease acquisitions",
                 std::to_string(report.counters.lease_acquisitions)});
  table.add_row({"lease renewals",
                 std::to_string(report.counters.lease_renewals)});
  table.add_row({"lease expiries",
                 std::to_string(report.counters.lease_expiries)});
  table.add_row({"stale rejects",
                 std::to_string(report.counters.stale_rejects)});
  table.add_row({"config applies",
                 std::to_string(report.counters.config_applies)});
  table.add_row({"settled", report.settled ? "yes" : "no"});
  table.print(std::cout);

  obs::BenchRecord rec;
  rec.bench = "postal_cli_log";
  rec.n = n;
  rec.lambda = lambda;
  rec.makespan = report.commit_latency;
  rec.verdict = report.validation.ok && report.check.ok ? "COMMITTED" : "FAIL";
  rec.extra = {{"slots", std::to_string(report.slots)},
               {"views", std::to_string(report.views_used + 1)},
               {"members", std::to_string(report.final_members.size())},
               {"expiries", std::to_string(report.counters.lease_expiries)},
               {"stale_rejects", std::to_string(report.counters.stale_rejects)},
               {"recovery", report.recovery_time.str()},
               {"seed", std::to_string(plan.seed)},
               {"threads", std::to_string(threads == 0 ? 1 : threads)}};
  return finish_coord_run(params, report.validation, report.check,
                          report.result.trace, report.result.faults,
                          coord::log_markers(report), trace_path,
                          std::move(rec), wall_ms);
}

int cmd_oracle_makespan(std::uint64_t n, const Rational& lambda) {
  const oracle::ScheduleOracle oracle(n, lambda);
  const oracle::Rank witness = oracle.last_informed_rank();
  std::cout << "implicit BCAST oracle for MPS(" << n << ", " << lambda << "):\n"
            << "  f_lambda(n)        = " << oracle.makespan() << "\n"
            << "  last informed rank = " << witness << "\n"
            << "  its inform time    = " << oracle.inform_time(witness)
            << "  (the Theorem 6 certificate: equals f_lambda(n))\n";
  return 0;
}

int cmd_oracle_rank(std::uint64_t n, const Rational& lambda, std::uint64_t r) {
  const oracle::ScheduleOracle oracle(n, lambda);
  const oracle::RankInfo info = oracle.info(r);
  TextTable table({"quantity", "value"});
  table.add_row({"rank", std::to_string(info.rank)});
  table.add_row({"parent", info.depth == 0 ? "(origin)" : std::to_string(info.parent)});
  table.add_row({"inform time", info.inform_time.str()});
  table.add_row({"parent send start", info.parent_send.str()});
  table.add_row({"subtree size", std::to_string(info.subtree)});
  table.add_row({"depth", std::to_string(info.depth)});
  table.add_row({"out-degree", std::to_string(info.out_degree)});
  table.print(std::cout);
  constexpr std::uint64_t kMaxChildren = 24;
  std::uint64_t shown = 0;
  for (const oracle::Child& child : oracle.children(r)) {
    if (shown == 0) std::cout << "\nchildren (send order):\n";
    if (shown == kMaxChildren) {
      std::cout << "  ... " << (info.out_degree - shown) << " more\n";
      break;
    }
    std::cout << "  -> p" << child.rank << " at t = " << child.send_time
              << "  (subtree " << child.subtree << ")\n";
    ++shown;
  }
  return 0;
}

int cmd_oracle_range(std::uint64_t n, const Rational& lambda, std::uint64_t lo,
                     std::uint64_t hi) {
  const oracle::ScheduleOracle oracle(n, lambda);
  const obs::WallClock clock;
  const std::vector<StreamEvent> events = oracle.events(lo, hi);
  StreamingValidator validator(oracle, lo, hi);
  validator.feed(events);
  const StreamReport report = validator.finish();
  const double wall_ms = clock.elapsed_ms();

  constexpr std::size_t kMaxPrinted = 64;
  for (std::size_t i = 0; i < events.size() && i < kMaxPrinted; ++i) {
    std::cout << "p" << events[i].src << " -> p" << events[i].dst
              << " at t = " << events[i].t << "\n";
  }
  if (events.size() > kMaxPrinted) {
    std::cout << "... " << (events.size() - kMaxPrinted) << " more\n";
  }
  std::cout << "\nranks [" << lo << ", " << hi << ") of MPS(" << n << ", "
            << lambda << "): " << report.events_checked
            << " receive event(s), streaming validation "
            << (report.ok ? "PASS" : "FAIL") << "\n";
  if (!report.ok) std::cout << report.summary() << "\n";

  obs::BenchRecord rec;
  rec.bench = "postal_cli_oracle";
  rec.n = n;
  rec.lambda = lambda;
  rec.makespan = oracle.makespan();
  rec.wall_ms = wall_ms;
  rec.verdict = report.ok ? "CONSISTENT" : "MISMATCH";
  rec.extra = {{"lo", std::to_string(lo)},
               {"hi", std::to_string(hi)},
               {"events_checked", std::to_string(report.events_checked)},
               {"last_arrival", report.last_arrival.str()}};
  obs::emit_bench_record(rec);
  return report.ok ? 0 : 1;
}

int cmd_serve(const svc::WorkloadSpec& spec, std::uint64_t seed,
              const svc::ServiceOptions& options) {
  const obs::WallClock clock;
  const svc::ServiceReport report = svc::run_service(spec, seed, options);
  const double wall_ms = clock.elapsed_ms();
  const svc::ServiceCounters& c = report.counters;

  // stdout carries only virtual-time quantities: byte-identical across
  // reruns and thread counts (the determinism contract, docs/SERVICE.md).
  std::cout << "broadcast service over '" << report.spec << "' [seed " << seed
            << "]\n";
  TextTable table({"quantity", "value"});
  table.add_row({"jobs generated", std::to_string(c.generated)});
  table.add_row({"admitted", std::to_string(c.admitted)});
  table.add_row({"shed (back-pressure)", std::to_string(c.shed)});
  table.add_row({"completed", std::to_string(c.completed)});
  table.add_row({"queue depth max", std::to_string(c.depth_max)});
  table.add_row({"planned via oracle", std::to_string(c.planned_oracle)});
  table.add_row({"planned materialized", std::to_string(c.planned_materialized)});
  table.add_row({"planned via registry", std::to_string(c.planned_registry)});
  table.add_row({"executed event-driven", std::to_string(c.exec_runs)});
  table.add_row({"exec verified", std::to_string(c.exec_verified)});
  table.add_row({"exec under faults", std::to_string(c.exec_faulted)});
  table.add_row({"sojourn p50", report.p50.str()});
  table.add_row({"sojourn p99", report.p99.str()});
  table.add_row({"sojourn p999", report.p999.str()});
  table.add_row({"sojourn max", report.sojourn_max.str()});
  table.add_row({"horizon (model time)", report.horizon.str()});
  table.add_row({"throughput (jobs/unit)", report.throughput.str()});
  table.print(std::cout);
  std::cout << "\n" << report.to_json() << "\n";

  std::cerr << "wall: " << wall_ms << " ms, threads: "
            << (options.threads == 0 ? 1 : options.threads) << "\n";

  std::uint64_t headline_n = 0;
  for (const svc::MixEntry& entry : spec.mix) {
    if (entry.n > headline_n) headline_n = entry.n;
  }
  obs::BenchRecord rec;
  rec.bench = "postal_cli_serve";
  rec.n = headline_n;
  rec.lambda = spec.mix.front().lambda;
  rec.makespan = report.horizon;
  rec.wall_ms = wall_ms;
  rec.verdict = "SERVED";
  rec.extra = {{"seed", std::to_string(seed)},
               {"jobs", std::to_string(c.generated)},
               {"shed", std::to_string(c.shed)},
               {"p50", report.p50.str()},
               {"p99", report.p99.str()},
               {"p999", report.p999.str()},
               {"throughput", report.throughput.str()},
               {"threads", std::to_string(options.threads == 0 ? 1 : options.threads)}};
  obs::emit_bench_record(rec);
  return 0;
}

int cmd_bounds(std::uint64_t n, const Rational& lambda) {
  GenFib fib(lambda);
  std::cout << "f_lambda(n)          = " << fib.f(n) << "\n";
  std::cout << "Theorem 7 lower      = " << fmt(thm7_f_lower(lambda, n)) << "\n";
  std::cout << "Theorem 7 upper      = " << fmt(thm7_f_upper(lambda, n)) << "\n";
  std::cout << "Lemma 8 (m=1) lower  = " << lemma8_lower(fib, n, 1) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "tree" && args.size() == 2) {
      return cmd_tree(std::stoull(args[0]), Rational::parse(args[1]));
    }
    if (cmd == "plan" && args.size() == 3) {
      return cmd_plan(std::stoull(args[0]), std::stoull(args[1]),
                      Rational::parse(args[2]));
    }
    if (cmd == "collectives" && args.size() == 2) {
      return cmd_collectives(std::stoull(args[0]), Rational::parse(args[1]));
    }
    if (cmd == "calibrate" && args.size() == 3) {
      return cmd_calibrate(std::stoull(args[0]), std::stoull(args[1]), args[2]);
    }
    if (cmd == "bounds" && args.size() == 2) {
      return cmd_bounds(std::stoull(args[0]), Rational::parse(args[1]));
    }
    if (cmd == "trace-export" && (args.size() == 2 || args.size() == 3)) {
      return cmd_trace_export(std::stoull(args[0]), Rational::parse(args[1]),
                              args.size() == 3 ? args[2] : std::string());
    }
    if (cmd == "metrics" && args.size() == 2) {
      return cmd_metrics(std::stoull(args[0]), Rational::parse(args[1]));
    }
    if (cmd == "simulate" && args.size() >= 2) {
      const std::uint64_t n = std::stoull(args[0]);
      const Rational lambda = Rational::parse(args[1]);
      std::vector<std::string> rest(args.begin() + 2, args.end());
      const std::string t = take_flag(rest, "--threads");
      const std::string mode = take_flag(rest, "--trace-mode");
      if (!rest.empty()) return usage();
      if (!mode.empty() && mode != "full" && mode != "counters") return usage();
      const unsigned threads =
          t.empty() ? par::threads_from_env(par::default_threads())
                    : static_cast<unsigned>(std::stoul(t));
      return cmd_simulate(n, lambda, threads,
                          mode == "counters" ? TraceMode::kCounters
                                             : TraceMode::kFull);
    }
    if (cmd == "sweep" && (args.size() == 2 || args.size() == 3)) {
      const unsigned threads =
          args.size() == 3 ? static_cast<unsigned>(std::stoul(args[2]))
                           : par::threads_from_env(par::default_threads());
      return cmd_sweep(args[0], args[1], threads);
    }
    if (cmd == "oracle" && args.size() >= 3) {
      const std::uint64_t n = std::stoull(args[0]);
      const Rational lambda = Rational::parse(args[1]);
      const std::string& sub = args[2];
      if (sub == "makespan" && args.size() == 3) {
        return cmd_oracle_makespan(n, lambda);
      }
      if (sub == "rank" && args.size() == 4) {
        return cmd_oracle_rank(n, lambda, std::stoull(args[3]));
      }
      if (sub == "range" && args.size() == 5) {
        return cmd_oracle_range(n, lambda, std::stoull(args[3]),
                                std::stoull(args[4]));
      }
      return usage();
    }
    if (cmd == "serve" && args.size() >= 2) {
      const svc::WorkloadSpec spec = svc::WorkloadSpec::parse(args[0]);
      const std::uint64_t seed = std::stoull(args[1]);
      std::vector<std::string> rest(args.begin() + 2, args.end());
      svc::ServiceOptions options;
      options.exec_every = 32;  // sample the event-driven tier by default
      const std::string queue_arg = take_flag(rest, "--queue");
      if (!queue_arg.empty()) options.queue_capacity = std::stoull(queue_arg);
      const std::string exec_arg = take_flag(rest, "--exec-every");
      if (!exec_arg.empty()) options.exec_every = std::stoull(exec_arg);
      const std::string fault_arg = take_flag(rest, "--fault-seed");
      if (!fault_arg.empty()) options.fault_seed = std::stoull(fault_arg);
      const std::string threads_arg = take_flag(rest, "--threads");
      if (!threads_arg.empty()) {
        options.threads = static_cast<unsigned>(std::stoul(threads_arg));
      }
      const std::string time_path = take_flag(rest, "--time-path");
      if (time_path == "rational") {
        options.time_path = TimePath::kRational;
      } else if (!time_path.empty() && time_path != "auto") {
        return usage();
      }
      if (!rest.empty()) return usage();
      return cmd_serve(spec, seed, options);
    }
    if ((cmd == "elect" || cmd == "consensus" || cmd == "log") &&
        args.size() >= 2) {
      const std::uint64_t n = std::stoull(args[0]);
      const Rational lambda = Rational::parse(args[1]);
      std::vector<std::string> rest(args.begin() + 2, args.end());
      const std::string threads_arg = take_flag(rest, "--threads");
      const unsigned threads =
          threads_arg.empty() ? 1
                              : static_cast<unsigned>(std::stoul(threads_arg));
      const std::string trace_path = take_flag(rest, "--trace");
      const std::string plan_path = take_flag(rest, "--plan");
      const std::string seed_arg = take_flag(rest, "--seed");
      const std::string crashes_arg = take_flag(rest, "--crashes");
      const std::string crash_arg = take_flag(rest, "--crash");
      std::string policy_arg;
      if (cmd == "elect") policy_arg = take_flag(rest, "--policy");
      coord::LogOptions log_options;
      if (cmd == "log") {
        const std::string commands_arg = take_flag(rest, "--commands");
        if (!commands_arg.empty()) {
          log_options.commands =
              static_cast<std::uint32_t>(std::stoul(commands_arg));
        }
        const std::string reconfig_arg = take_flag(rest, "--reconfig");
        if (!reconfig_arg.empty()) {
          // "--reconfig R:T[,R:T...]": toggle rank R's membership at model
          // time T (remove if present, re-add if previously removed).
          for (const std::string& op : split_csv(reconfig_arg)) {
            const std::size_t colon = op.find(':');
            if (colon == std::string::npos) return usage();
            log_options.reconfig.push_back(coord::ReconfigRequest{
                static_cast<ProcId>(std::stoul(op.substr(0, colon))),
                Rational::parse(op.substr(colon + 1))});
          }
        }
      }
      if (!rest.empty() || (!plan_path.empty() && !seed_arg.empty())) {
        return usage();
      }
      FaultPlan plan;
      bool have_plan = false;
      if (!plan_path.empty()) {
        std::ifstream in(plan_path);
        if (!in.good()) {
          std::cerr << "error: cannot read plan file '" << plan_path << "'\n";
          return 1;
        }
        std::ostringstream contents;
        contents << in.rdbuf();
        plan = parse_fault_plan(contents.str());
        have_plan = true;
      } else if (!seed_arg.empty()) {
        RandomFaultOptions fopts;
        fopts.crashes = crashes_arg.empty() ? 1 : std::stoull(crashes_arg);
        plan = random_fault_plan(PostalParams(n, lambda),
                                 std::stoull(seed_arg), fopts);
        have_plan = true;
      }
      if (!crash_arg.empty()) {
        // "--crash R:T" appends one explicit crash (e.g. the incumbent
        // leader, which seeded plans never crash).
        const std::size_t colon = crash_arg.find(':');
        if (colon == std::string::npos) return usage();
        plan.crashes.push_back(
            CrashFault{static_cast<ProcId>(std::stoul(crash_arg.substr(0, colon))),
                       Rational::parse(crash_arg.substr(colon + 1))});
        have_plan = true;
      }
      if (have_plan) plan.validate(n);
      coord::ElectionPolicy policy = coord::ElectionPolicy::kHighestRank;
      if (policy_arg == "depth" || policy_arg == "oracle") {
        policy = coord::ElectionPolicy::kOracleDepth;
      } else if (!policy_arg.empty() && policy_arg != "rank") {
        return usage();
      }
      if (cmd == "elect") {
        return cmd_elect(n, lambda, plan, have_plan, policy, trace_path, threads);
      }
      if (cmd == "log") {
        return cmd_log(n, lambda, plan, have_plan, log_options, trace_path,
                       threads);
      }
      return cmd_consensus(n, lambda, plan, have_plan, trace_path, threads);
    }
    if (cmd == "faults" && args.size() >= 3) {
      const std::uint64_t n = std::stoull(args[0]);
      const Rational lambda = Rational::parse(args[1]);
      std::vector<std::string> rest(args.begin() + 2, args.end());
      const std::string threads_arg = take_flag(rest, "--threads");
      const unsigned threads =
          threads_arg.empty() ? 1
                              : static_cast<unsigned>(std::stoul(threads_arg));
      const std::string trace_path = take_flag(rest, "--trace");
      FaultPlan plan;
      if (rest.size() == 2 && rest[0] == "--plan") {
        std::ifstream in(rest[1]);
        if (!in.good()) {
          std::cerr << "error: cannot read plan file '" << rest[1] << "'\n";
          return 1;
        }
        std::ostringstream contents;
        contents << in.rdbuf();
        plan = parse_fault_plan(contents.str());
        plan.validate(n);
      } else if (rest.size() == 2 || rest.size() == 3) {
        const std::uint64_t seed = std::stoull(rest[0]);
        RandomFaultOptions fopts;
        fopts.crashes = std::stoull(rest[1]);
        if (rest.size() == 3) {
          fopts.loss_p = Rational::parse(rest[2]);
          fopts.lossy_links = n;  // sprinkle loss widely; per-link cap holds
        }
        plan = random_fault_plan(PostalParams(n, lambda), seed, fopts);
      } else {
        return usage();
      }
      return cmd_faults(n, lambda, plan, trace_path, threads);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
