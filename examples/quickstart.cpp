// Quickstart: broadcast one message optimally in the postal model.
//
//   ./quickstart [n] [lambda]
//
// Builds the generalized Fibonacci broadcast tree for MPS(n, lambda),
// prints it, validates it in the exact simulator, and compares against the
// latency-oblivious binomial tree a telephone-model library would use.
#include <cstdint>
#include <iostream>
#include <string>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sim/validator.hpp"

int main(int argc, char** argv) {
  using namespace postal;

  const std::uint64_t n = argc > 1 ? std::stoull(argv[1]) : 14;
  const Rational lambda = argc > 2 ? Rational::parse(argv[2]) : Rational(5, 2);

  const PostalParams params(n, lambda);
  GenFib fib(lambda);

  std::cout << "Broadcasting one message in MPS(n=" << n << ", lambda=" << lambda
            << ")\n\n";

  // 1. The optimal schedule (Algorithm BCAST, Theorem 6).
  const Schedule schedule = bcast_schedule(params, fib);
  const SimReport report = validate_schedule(schedule, params);
  if (!report.ok) {
    std::cerr << "validation failed: " << report.summary() << "\n";
    return 1;
  }
  std::cout << "optimal (Fibonacci tree) completion: t = " << report.makespan
            << "   [f_lambda(n) = " << fib.f(n) << "]\n";

  // 2. The telephone-model baseline: a binomial tree, which ignores lambda.
  const BroadcastTree binomial = BroadcastTree::binomial(n);
  const Schedule naive = binomial.greedy_schedule(lambda);
  const SimReport naive_report = validate_schedule(naive, params);
  if (!naive_report.ok) {
    std::cerr << "baseline validation failed: " << naive_report.summary() << "\n";
    return 1;
  }
  std::cout << "binomial tree (lambda-oblivious)   : t = " << naive_report.makespan
            << "\n";

  const double speedup =
      naive_report.makespan.to_double() / report.makespan.to_double();
  std::cout << "\nlatency-aware speedup: " << speedup << "x\n\n";

  // 3. Show the tree itself for small systems.
  if (n <= 32) {
    const BroadcastTree tree = BroadcastTree::from_schedule(schedule, n);
    std::cout << "optimal broadcast tree (node: inform time):\n"
              << tree.render(lambda);
  }
  return 0;
}
