// Scenario: tuning a multi-message broadcast (the job an MPI library's
// collective-selection layer does).
//
//   ./collective_planner [n] [m] [lambda]
//
// Given a system size n, a message count m, and a measured latency lambda,
// the planner evaluates every algorithm family from the paper (REPEAT,
// PACK, PIPELINE, and the DTREE degrees), prints the predicted completion
// times against the Lemma 8 lower bound, picks the winner, verifies the
// winning schedule in the exact postal-model simulator, and shows the
// first few sends of the chosen plan.
#include <cstdint>
#include <iostream>
#include <string>

#include "model/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace postal;

  const std::uint64_t n = argc > 1 ? std::stoull(argv[1]) : 64;
  const std::uint64_t m = argc > 2 ? std::stoull(argv[2]) : 12;
  const Rational lambda = argc > 3 ? Rational::parse(argv[3]) : Rational(5, 2);

  const PostalParams params(n, lambda);
  GenFib fib(lambda);
  const Rational lower = lemma8_lower(fib, n, m);

  std::cout << "Planning a broadcast of m=" << m << " messages in MPS(n=" << n
            << ", lambda=" << lambda << ")\n";
  std::cout << "Lemma 8 lower bound: T >= " << lower << "\n\n";

  TextTable table({"algorithm", "predicted T", "T/lower"});
  MultiAlgo best = MultiAlgo::kRepeat;
  Rational best_time;
  bool first = true;
  for (const MultiAlgo algo : all_multi_algos()) {
    const Rational t = predict_multi(algo, params, m);
    table.add_row({algo_name(algo), t.str(),
                   fmt(t.to_double() / lower.to_double(), 3)});
    if (first || t < best_time) {
      best = algo;
      best_time = t;
      first = false;
    }
  }
  table.print(std::cout);
  std::cout << "\nrecommended: " << algo_name(best) << " (T = " << best_time << ")\n";

  // Verify the recommendation end to end in the simulator.
  const Schedule schedule = make_multi_schedule(best, params, m);
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  const SimReport report = validate_schedule(schedule, params, options);
  if (!report.ok) {
    std::cerr << "internal error: chosen plan failed validation: "
              << report.summary() << "\n";
    return 1;
  }
  std::cout << "simulator confirms  : completes at t = " << report.makespan
            << ", order-preserving = " << (report.order_preserving ? "yes" : "no")
            << "\n";

  std::cout << "\nfirst sends of the plan:\n";
  std::size_t shown = 0;
  for (const SendEvent& e : schedule.events()) {
    std::cout << "  " << e << "\n";
    if (++shown == 10) break;
  }
  if (schedule.size() > shown) {
    std::cout << "  ... (" << schedule.size() - shown << " more)\n";
  }
  return 0;
}
