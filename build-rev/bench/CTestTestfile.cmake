# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-rev/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_par_sweep_consistency "/root/repo/build-rev/bench/bench_par_sweep")
set_tests_properties(bench_par_sweep_consistency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig1_tree_json "bash" "-c" "rm -f BENCH_ctest.json && POSTAL_BENCH_JSON=BENCH_ctest.json /root/repo/build-rev/bench/bench_fig1_tree > /dev/null && grep -q '\"bench\":\"bench_fig1_tree\"' BENCH_ctest.json && grep -q '\"n\":14' BENCH_ctest.json && grep -q '\"lambda\":\"5/2\"' BENCH_ctest.json && grep -q '\"makespan\":\"15/2\"' BENCH_ctest.json && grep -q '\"wall_ms\":' BENCH_ctest.json && grep -q '\"verdict\":\"MATCHES PAPER\"' BENCH_ctest.json")
set_tests_properties(bench_fig1_tree_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;48;add_test;/root/repo/bench/CMakeLists.txt;0;")
