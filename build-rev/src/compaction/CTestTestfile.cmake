# CMake generated Testfile for 
# Source directory: /root/repo/src/compaction
# Build directory: /root/repo/build-rev/src/compaction
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
