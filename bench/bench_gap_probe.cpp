// E19 (extension) -- a computational probe of the paper's central open
// problem (Section 5): "This paper leaves a gap between the lower bounds
// for broadcasting multiple messages and the performance of the algorithms
// ... We believe that the lower bound of Lemma 8 cannot be substantially
// improved without changing the model."
//
// For every tiny instance (n <= 5, m <= 4, integer lambda <= 4) we compute,
// by exhaustive integer-grid search:
//   * the true unrestricted optimum,
//   * the true optimum over ORDER-PRESERVING schedules,
// and compare both against Lemma 8 and the best Section 4 algorithm.
//
// Findings (verdict-checked below):
//   * Lemma 8 is exactly tight at most points but NOT all -- unrestricted
//     broadcast needs +1 at e.g. (n=4, m=3, lambda=3): the bound can be
//     improved, but not substantially, just as the paper believed;
//   * order preservation costs strictly more at many points (the earliest:
//     n=3, m=2, lambda=2 needs 5 vs the unrestricted 4) -- concrete
//     certificates for the improved order-preserving lower bound [13]
//     later proved.
#include <iostream>

#include "brute/multi_search.hpp"
#include "model/genfib.hpp"
#include "sched/registry.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E19 (extension): the Lemma 8 gap, measured exactly ===\n\n";
  bool all_ok = true;

  std::uint64_t points = 0;
  std::uint64_t lemma8_tight = 0;
  std::uint64_t order_gap = 0;
  TextTable table({"lambda", "n", "m", "Lemma 8", "true optimum",
                   "order-preserving opt", "best Sec-4 algo"});
  for (std::int64_t lambda = 1; lambda <= 4; ++lambda) {
    GenFib fib{Rational(lambda)};
    for (std::uint64_t n = 3; n <= 5; ++n) {
      const PostalParams params(n, Rational(lambda));
      for (std::uint64_t m = 2; m <= 4; ++m) {
        if (n == 5 && m == 4) continue;  // keep the search fast
        const std::int64_t lower =
            static_cast<std::int64_t>(m) - 1 + fib.f(n).num();
        const std::int64_t free_opt = multi_broadcast_optimum(n, m, lambda, false);
        const std::int64_t order_opt = multi_broadcast_optimum(n, m, lambda, true);
        Rational best_algo;
        bool first = true;
        for (const MultiAlgo algo : all_multi_algos()) {
          const Rational t = predict_multi(algo, params, m);
          if (first || t < best_algo) best_algo = t;
          first = false;
        }
        all_ok = all_ok && free_opt >= lower && order_opt >= free_opt &&
                 Rational(order_opt) <= best_algo;
        ++points;
        if (free_opt == lower) ++lemma8_tight;
        if (order_opt > free_opt) ++order_gap;
        table.add_row({std::to_string(lambda), std::to_string(n), std::to_string(m),
                       std::to_string(lower), std::to_string(free_opt),
                       std::to_string(order_opt), best_algo.str()});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nLemma 8 exactly tight (unrestricted): " << lemma8_tight << "/"
            << points << " points; order preservation strictly costs more at "
            << order_gap << "/" << points << " points.\n";
  // The headline certificates must reproduce.
  all_ok = all_ok && multi_broadcast_optimum(3, 2, 2, false) == 4 &&
           multi_broadcast_optimum(3, 2, 2, true) == 5 &&
           multi_broadcast_optimum(4, 3, 3, false) == 8;  // Lemma 8 says 7
  all_ok = all_ok && lemma8_tight >= points / 2 && order_gap >= points / 3;

  std::cout << "\nShape checks: Lemma 8 is tight at most (not all) points -- it "
               "can be improved only marginally, as the paper believed; "
               "order-preserving broadcast provably needs longer at a third of "
               "the grid, certifying the gap [13] formalized.\n";
  std::cout << "E19 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
