// E17 (extension) -- the k-ported postal model: relaxing the single
// send-port assumption (Section 5's "relax this assumption" direction;
// CM-5-class machines had multi-ported interfaces).
//
// For each (lambda, k) the bench reports the exact optimal broadcast time
// f_{lambda,k}(n) -- achieved by the generalized BCAST schedule and
// certified by the k-ported validator -- and the speedup over the paper's
// single-port optimum.
#include <iostream>

#include "model/genfib.hpp"
#include "sched/kported.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E17 (extension): k send ports ===\n\n";
  bool all_ok = true;

  TextTable table({"lambda", "n", "k=1 (paper)", "k=2", "k=4", "k=8",
                   "k=8 speedup"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8)}) {
    for (const std::uint64_t n : {64ULL, 1024ULL, 16384ULL}) {
      const PostalParams params(n, lambda);
      std::vector<std::string> row{lambda.str(), std::to_string(n)};
      Rational base;
      Rational last;
      for (const std::uint64_t k : {1ULL, 2ULL, 4ULL, 8ULL}) {
        const Rational t = predict_kported_bcast(params, k);
        // Triple agreement: schedule == closed form == greedy frontier.
        all_ok = all_ok && t == kported_optimal_greedy(params, k);
        if (n <= 1024) {
          const KPortedReport report =
              validate_kported(kported_bcast_schedule(params, k), params, k);
          all_ok = all_ok && report.ok && report.completion == t;
        }
        if (k == 1) base = t;
        last = t;
        row.push_back(t.str());
      }
      row.push_back(fmt(base.to_double() / last.to_double(), 2) + "x");
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);

  // Sanity anchor: k = 1 equals the paper's f_lambda(n).
  {
    GenFib fib(Rational(5, 2));
    all_ok = all_ok &&
             predict_kported_bcast(PostalParams(1024, Rational(5, 2)), 1) ==
                 fib.f(1024);
  }

  std::cout << "\nShape checks: k = 1 reproduces Theorem 6 exactly; extra ports "
               "help most in the telephone regime (base log(1+k) growth) and "
               "fade as lambda dominates (the latency, not the port, is the "
               "bottleneck) -- speedup well below k everywhere.\n";
  std::cout << "E17 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
