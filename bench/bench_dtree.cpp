// E7 -- Lemma 18 / Section 4.3: the DTREE family across degrees.
//
// For each (n, m, lambda) the bench reports the exact completion of DTREE
// at d = 1 (line), 2 (binary), ceil(lambda)+1 (the paper's recommended
// degree), sqrt(n), and n-1 (star), against Lemma 18's bound and Lemma 8's
// lower bound.
//
// Expected shape (paper Section 4.3): the line wins as m grows, the star
// wins as lambda grows, and d = ceil(lambda)+1 tracks the lower bound
// within a small factor when m is small.
#include <cmath>
#include <iostream>

#include "model/bounds.hpp"
#include "obs/bench_record.hpp"
#include "sched/dtree.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E7: Lemma 18 -- DTREE degree sweep ===\n\n";
  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_dtree";

  TextTable table({"lambda", "n", "m", "d=1 line", "d=2", "d=ceil(L)+1",
                   "d=sqrt(n)", "d=n-1 star", "best d", "Lemma 8 lower"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {16ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      const std::uint64_t root_n = static_cast<std::uint64_t>(
          std::llround(std::sqrt(static_cast<double>(n))));
      const std::uint64_t degrees[] = {1, 2, dtree_recommended_degree(params),
                                       root_n, n - 1};
      for (const std::uint64_t m : {1ULL, 8ULL, 64ULL}) {
        std::vector<std::string> row{lambda.str(), std::to_string(n),
                                     std::to_string(m)};
        Rational best;
        std::uint64_t best_d = 0;
        for (const std::uint64_t d : degrees) {
          const Schedule s = dtree_schedule(params, m, d);
          ValidatorOptions options;
          options.messages = static_cast<std::uint32_t>(m);
          const SimReport report = validate_schedule(s, params, options);
          const Rational exact = predict_dtree(params, m, d);
          const bool ok = report.ok && report.order_preserving &&
                          report.makespan == exact &&
                          exact <= lemma18_dtree_upper(lambda, n, m, d);
          all_ok = all_ok && ok;
          row.push_back(exact.str() + (ok ? "" : " (!)"));
          if (best_d == 0 || exact < best) {
            best = exact;
            best_d = d;
          }
        }
        row.push_back("d=" + std::to_string(best_d));
        rec.n = n;
        rec.lambda = lambda;
        rec.m = m;
        rec.makespan = best;
        rec.extra = {{"algorithm", "DTREE(d=" + std::to_string(best_d) + ")"}};
        row.push_back(lemma8_lower(fib, n, m).str());
        table.add_row(std::move(row));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape checks: all degrees valid, order-preserving, and within "
               "Lemma 18; the winning degree shifts line -> recommended -> star as "
               "(m, lambda) shift, exactly the Section 4.3 discussion.\n";
  std::cout << "E7 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
