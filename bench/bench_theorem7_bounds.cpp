// E3 -- Theorem 7: the two-sided bounds on F_lambda(t) and f_lambda(n),
// parts (1)-(4), plus the appendix's alpha(lambda) refinement.
//
// Prints the measured functions against each bound and verifies the
// inequalities hold at every grid point. The paper notes the part (1)/(2)
// bounds are loose ("the upper bound is roughly the square of the lower
// bound"); the tables below show exactly that gap, and how part (3)/(4)
// tighten it for large lambda.
#include <iostream>

#include "model/bounds.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E3: Theorem 7 -- bounds on F_lambda(t) and f_lambda(n) ===\n\n";
  bool all_ok = true;

  // Part (1): lower <= F <= upper on a t-grid.
  std::cout << "--- Part (1): (ceil(L)+1)^floor(t/2L) <= F_L(t) <= (ceil(L)+1)^floor(t/L) ---\n";
  TextTable t1({"lambda", "t", "lower", "F_lambda(t)", "upper"});
  for (const Rational lambda : {Rational(3, 2), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (std::int64_t k = 0; k <= 36; k += 6) {
      const Rational t(k, 2);
      const std::uint64_t value = fib.F(t);
      const std::uint64_t lo = thm7_F_lower(lambda, t);
      const std::uint64_t hi = thm7_F_upper(lambda, t);
      all_ok = all_ok && lo <= value && value <= hi;
      t1.add_row({lambda.str(), t.str(), std::to_string(lo), std::to_string(value),
                  std::to_string(hi)});
    }
  }
  t1.print(std::cout);

  // Part (2): bracket on f_lambda(n).
  std::cout << "\n--- Part (2): L*log n/log(ceil(L)+1) <= f_L(n) <= 2L + 2L*log n/log(ceil(L)+1) ---\n";
  TextTable t2({"lambda", "n", "lower", "f_lambda(n)", "upper"});
  for (const Rational lambda : {Rational(3, 2), Rational(5, 2), Rational(4), Rational(8)}) {
    GenFib fib(lambda);
    for (std::uint64_t n : {4ULL, 64ULL, 1024ULL, 65536ULL}) {
      const double f = fib.f(n).to_double();
      const double lo = thm7_f_lower(lambda, n);
      const double hi = thm7_f_upper(lambda, n);
      all_ok = all_ok && lo <= f + 1e-9 && f <= hi + 1e-9;
      t2.add_row({lambda.str(), std::to_string(n), fmt(lo), fmt(f), fmt(hi)});
    }
  }
  t2.print(std::cout);

  // Parts (3)-(4): asymptotic refinement.
  std::cout << "\n--- Parts (3)-(4): alpha(lambda) refinement for large lambda ---\n";
  TextTable t3({"lambda", "alpha", "n", "f_lambda(n)", "part-4 bound",
                "part-2 bound", "p4/p2"});
  // The part-4 bound is asymptotic: it undercuts part 2 only once
  // alpha(lambda) < 2 (lambda in the several-hundreds) AND n >= 2^lambda --
  // beyond 64-bit n. What *is* checkable numerically: the bound holds, and
  // its ratio to part 2 improves monotonically as lambda grows (alpha -> 1).
  double prev_ratio = 1e9;
  for (const Rational lambda : {Rational(32), Rational(64), Rational(128)}) {
    GenFib fib(lambda);
    const double alpha = thm7_alpha(lambda);
    double ratio_at_largest_n = 0;
    for (std::uint64_t n : {1ULL << 10, 1ULL << 16, 1ULL << 22}) {
      const double f = fib.f(n).to_double();
      const double p4 = thm7_part4_f_upper(lambda, n);
      const double p2 = thm7_f_upper(lambda, n);
      all_ok = all_ok && f <= p4 + 1e-9;
      ratio_at_largest_n = p4 / p2;
      t3.add_row({lambda.str(), fmt(alpha), std::to_string(n), fmt(f), fmt(p4),
                  fmt(p2), fmt(p4 / p2)});
    }
    all_ok = all_ok && ratio_at_largest_n < prev_ratio;
    prev_ratio = ratio_at_largest_n;
  }
  t3.print(std::cout);

  // Part (3) spot check.
  const Rational big(64);
  GenFib fib(big);
  bool p3_ok = true;
  for (std::int64_t t = 0; t <= 400; t += 25) {
    const std::uint64_t value = fib.F(Rational(t));
    if (value < kSaturated &&
        static_cast<double>(value) * (1 + 1e-12) < thm7_part3_F_lower(big, Rational(t))) {
      p3_ok = false;
    }
  }
  all_ok = all_ok && p3_ok;
  std::cout << "\npart (3) F-lower bound at lambda=64: " << (p3_ok ? "holds" : "VIOLATED")
            << "\n";
  std::cout << "\nShape checks: all four bounds hold; part-1 upper/lower gap is "
               "~quadratic as the paper remarks; the part-4/part-2 ratio falls "
               "toward alpha/2 as lambda grows (the asymptotic tightening).\n";
  std::cout << "E3 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
