// E3 -- Theorem 7: the two-sided bounds on F_lambda(t) and f_lambda(n),
// parts (1)-(4), plus the appendix's alpha(lambda) refinement.
//
// Prints the measured functions against each bound and verifies the
// inequalities hold at every grid point. The paper notes the part (1)/(2)
// bounds are loose ("the upper bound is roughly the square of the lower
// bound"); the tables below show exactly that gap, and how part (3)/(4)
// tighten it for large lambda.
//
// Parts (1) and (2) sweep independent lambda rows, so each lambda block
// runs as one par::parallel_map task (POSTAL_THREADS sets the width; each
// task owns its GenFib) and the rows are stitched back in lambda order --
// output is byte-identical for every thread count. Parts (3)-(4) carry a
// cross-lambda monotonicity check, so they stay sequential.
#include <array>
#include <iostream>

#include "model/bounds.hpp"
#include "obs/bench_record.hpp"
#include "par/thread_pool.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct LambdaBlock {
  std::vector<std::array<std::string, 5>> rows;
  bool ok = true;
};

LambdaBlock part1_block(const Rational& lambda) {
  GenFib fib(lambda);
  LambdaBlock block;
  for (std::int64_t k = 0; k <= 36; k += 6) {
    const Rational t(k, 2);
    const std::uint64_t value = fib.F(t);
    const std::uint64_t lo = thm7_F_lower(lambda, t);
    const std::uint64_t hi = thm7_F_upper(lambda, t);
    block.ok = block.ok && lo <= value && value <= hi;
    block.rows.push_back({lambda.str(), t.str(), std::to_string(lo),
                          std::to_string(value), std::to_string(hi)});
  }
  return block;
}

LambdaBlock part2_block(const Rational& lambda) {
  GenFib fib(lambda);
  LambdaBlock block;
  for (std::uint64_t n : {4ULL, 64ULL, 1024ULL, 65536ULL}) {
    const double f = fib.f(n).to_double();
    const double lo = thm7_f_lower(lambda, n);
    const double hi = thm7_f_upper(lambda, n);
    block.ok = block.ok && lo <= f + 1e-9 && f <= hi + 1e-9;
    block.rows.push_back(
        {lambda.str(), std::to_string(n), fmt(lo), fmt(f), fmt(hi)});
  }
  return block;
}

bool append_blocks(TextTable& table, const std::vector<LambdaBlock>& blocks) {
  bool ok = true;
  for (const LambdaBlock& block : blocks) {
    ok = ok && block.ok;
    for (const std::array<std::string, 5>& row : block.rows) {
      table.add_row({row[0], row[1], row[2], row[3], row[4]});
    }
  }
  return ok;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E3: Theorem 7 -- bounds on F_lambda(t) and f_lambda(n) ===\n\n";
  bool all_ok = true;
  const unsigned threads = par::threads_from_env(par::default_threads());

  // Part (1): lower <= F <= upper on a t-grid.
  std::cout << "--- Part (1): (ceil(L)+1)^floor(t/2L) <= F_L(t) <= "
               "(ceil(L)+1)^floor(t/L) ---\n";
  const std::vector<Rational> p1_lambdas = {Rational(3, 2), Rational(5, 2), Rational(4)};
  TextTable t1({"lambda", "t", "lower", "F_lambda(t)", "upper"});
  all_ok = append_blocks(
               t1, par::parallel_map(threads, p1_lambdas.size(),
                                     [&p1_lambdas](std::size_t i) {
                                       return part1_block(p1_lambdas[i]);
                                     })) &&
           all_ok;
  t1.print(std::cout);

  // Part (2): bracket on f_lambda(n).
  std::cout << "\n--- Part (2): L*log n/log(ceil(L)+1) <= f_L(n) <= 2L + "
               "2L*log n/log(ceil(L)+1) ---\n";
  const std::vector<Rational> p2_lambdas = {Rational(3, 2), Rational(5, 2),
                                            Rational(4), Rational(8)};
  TextTable t2({"lambda", "n", "lower", "f_lambda(n)", "upper"});
  all_ok = append_blocks(
               t2, par::parallel_map(threads, p2_lambdas.size(),
                                     [&p2_lambdas](std::size_t i) {
                                       return part2_block(p2_lambdas[i]);
                                     })) &&
           all_ok;
  t2.print(std::cout);

  // Parts (3)-(4): asymptotic refinement.
  std::cout << "\n--- Parts (3)-(4): alpha(lambda) refinement for large lambda ---\n";
  TextTable t3({"lambda", "alpha", "n", "f_lambda(n)", "part-4 bound",
                "part-2 bound", "p4/p2"});
  // The part-4 bound is asymptotic: it undercuts part 2 only once
  // alpha(lambda) < 2 (lambda in the several-hundreds) AND n >= 2^lambda --
  // beyond 64-bit n. What *is* checkable numerically: the bound holds, and
  // its ratio to part 2 improves monotonically as lambda grows (alpha -> 1).
  double prev_ratio = 1e9;
  for (const Rational lambda : {Rational(32), Rational(64), Rational(128)}) {
    GenFib fib(lambda);
    const double alpha = thm7_alpha(lambda);
    double ratio_at_largest_n = 0;
    for (std::uint64_t n : {1ULL << 10, 1ULL << 16, 1ULL << 22}) {
      const double f = fib.f(n).to_double();
      const double p4 = thm7_part4_f_upper(lambda, n);
      const double p2 = thm7_f_upper(lambda, n);
      all_ok = all_ok && f <= p4 + 1e-9;
      ratio_at_largest_n = p4 / p2;
      t3.add_row({lambda.str(), fmt(alpha), std::to_string(n), fmt(f), fmt(p4),
                  fmt(p2), fmt(p4 / p2)});
    }
    all_ok = all_ok && ratio_at_largest_n < prev_ratio;
    prev_ratio = ratio_at_largest_n;
  }
  t3.print(std::cout);

  // Part (3) spot check.
  const Rational big(64);
  GenFib fib(big);
  bool p3_ok = true;
  for (std::int64_t t = 0; t <= 400; t += 25) {
    const std::uint64_t value = fib.F(Rational(t));
    if (value < kSaturated &&
        static_cast<double>(value) * (1 + 1e-12) < thm7_part3_F_lower(big, Rational(t))) {
      p3_ok = false;
    }
  }
  all_ok = all_ok && p3_ok;
  std::cout << "\npart (3) F-lower bound at lambda=64: " << (p3_ok ? "holds" : "VIOLATED")
            << "\n";
  std::cout << "\nShape checks: all four bounds hold; part-1 upper/lower gap is "
               "~quadratic as the paper remarks; the part-4/part-2 ratio falls "
               "toward alpha/2 as lambda grows (the asymptotic tightening).\n";
  std::cout << "E3 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";

  obs::BenchRecord rec;
  rec.bench = "bench_theorem7_bounds";
  rec.n = 65536;
  rec.lambda = Rational(8);
  rec.makespan = Rational(0);
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"sweep", "parts 1-4 bound grids"},
               {"threads", std::to_string(threads)}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
