// E15 (extension) -- the companion-paper direction: near-optimal
// multi-message broadcast when order preservation is dropped.
//
// The paper's Section 5: "we have developed several near-optimal
// algorithms for broadcasting multiple messages in the postal model [2].
// These algorithms, however, ... make more restrictive assumptions about
// the level of synchronism ... and do not preserve the order of the
// messages." This bench studies one such construction -- scatter the
// messages across processors, then allgather -- and maps where it beats
// every order-preserving algorithm of Section 4, quantifying the price of
// order preservation.
#include <iostream>

#include "model/bounds.hpp"
#include "sched/registry.hpp"
#include "sched/scatter_allgather.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E15 (extension): dropping order preservation ===\n\n";
  bool all_ok = true;

  TextTable table({"lambda", "n", "m", "best order-preserving", "its T",
                   "scatter-allgather", "SAG/lower", "SAG wins?"});
  std::uint64_t sag_wins = 0;
  std::uint64_t points = 0;
  for (const Rational lambda : {Rational(2), Rational(8), Rational(16), Rational(32)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {16ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {4ULL, 64ULL, 1024ULL}) {
        Rational best_op;
        std::string best_name;
        bool first = true;
        for (const MultiAlgo algo : all_multi_algos()) {
          const Rational t = predict_multi(algo, params, m);
          if (first || t < best_op) {
            best_op = t;
            best_name = algo_name(algo);
            first = false;
          }
        }
        const Rational sag = predict_scatter_allgather(params, m);
        const Rational lower = lemma8_lower(fib, n, m);
        all_ok = all_ok && sag >= lower;
        ++points;
        const bool wins = sag < best_op;
        if (wins) ++sag_wins;
        table.add_row({lambda.str(), std::to_string(n), std::to_string(m), best_name,
                       best_op.str(), sag.str(),
                       fmt(sag.to_double() / lower.to_double(), 2),
                       wins ? "yes" : "no"});
      }
    }
  }
  table.print(std::cout);

  // Model validity + the non-order-preserving property, spot-checked.
  const PostalParams params(64, Rational(16));
  ValidatorOptions options;
  options.messages = 64;
  const SimReport report =
      validate_schedule(scatter_allgather_schedule(params, 64), params, options);
  all_ok = all_ok && report.ok && !report.order_preserving;
  std::cout << "\nspot check (n=64, m=64, lambda=16): valid = "
            << (report.ok ? "yes" : "NO") << ", order-preserving = "
            << (report.order_preserving ? "yes (UNEXPECTED)" : "no (as the paper says)")
            << "\n";
  std::cout << "scatter-allgather wins at " << sag_wins << "/" << points
            << " grid points (the high-latency, m ~ n regime); the line/"
               "pipeline family keeps the m >> n regime.\n";
  all_ok = all_ok && sag_wins >= 6;

  std::cout << "\nE15 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
