// E8 -- Section 4: who wins where in the (n, m, lambda) space.
//
// Runs every multi-message algorithm in the library over a grid and prints
// the winner and its distance from the Lemma 8 lower bound. Expected shape
// (paper Section 4.2-4.3 discussion):
//   * m = 1            -> REPEAT/PACK/PIPELINE all collapse to optimal BCAST;
//   * small m, huge L  -> PACK / star-like strategies near-optimal;
//   * large m          -> PIPELINE and the line take over;
//   * no algorithm beats the lower bound, none is universally best.
//
// Grid points are independent, so they fan across cores through
// par::parallel_map (POSTAL_THREADS overrides the width); the table and the
// win tally are aggregated serially in grid order afterwards, keeping the
// output byte-identical for every thread count.
#include <iostream>
#include <map>

#include "model/bounds.hpp"
#include "obs/bench_record.hpp"
#include "par/thread_pool.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct GridPoint {
  Rational lambda;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
};

struct PointOutcome {
  Rational lower;
  std::string best_name;
  std::string worst_name;
  Rational best;
  Rational worst;
  bool ok = true;
};

PointOutcome run_point(const GridPoint& point) {
  // Each task owns its GenFib: the memo grows internally, so sharing one
  // across threads without the par-layer cache would race.
  GenFib fib(point.lambda);
  const PostalParams params(point.n, point.lambda);
  PointOutcome out;
  out.lower = lemma8_lower(fib, point.n, point.m);
  for (const MultiAlgo algo : all_multi_algos()) {
    const Rational t = predict_multi(algo, params, point.m);
    // Spot-validate one mid-size configuration per algorithm family.
    if (point.n == 128 && point.m == 4) {
      ValidatorOptions options;
      options.messages = static_cast<std::uint32_t>(point.m);
      const SimReport report =
          validate_schedule(make_multi_schedule(algo, params, point.m), params, options);
      out.ok = out.ok && report.ok && report.makespan == t;
    }
    out.ok = out.ok && t >= out.lower;
    if (out.best_name.empty() || t < out.best) {
      out.best = t;
      out.best_name = algo_name(algo);
    }
    if (out.worst_name.empty() || t > out.worst) {
      out.worst = t;
      out.worst_name = algo_name(algo);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E8: multi-message shootout over (n, m, lambda) ===\n\n";

  std::vector<GridPoint> grid;
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8), Rational(32)}) {
    for (const std::uint64_t n : {16ULL, 128ULL, 1024ULL}) {
      for (const std::uint64_t m : {1ULL, 4ULL, 32ULL, 256ULL}) {
        grid.push_back({lambda, n, m});
      }
    }
  }

  const unsigned threads = par::threads_from_env(par::default_threads());
  const std::vector<PointOutcome> outcomes = par::parallel_map(
      threads, grid.size(), [&grid](std::size_t i) { return run_point(grid[i]); });

  bool all_ok = true;
  std::map<std::string, int> wins;
  TextTable table({"lambda", "n", "m", "winner", "winner T", "lower bound",
                   "T/lower", "worst algo", "worst T"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const GridPoint& point = grid[i];
    const PointOutcome& out = outcomes[i];
    all_ok = all_ok && out.ok;
    ++wins[out.best_name];
    table.add_row({point.lambda.str(), std::to_string(point.n),
                   std::to_string(point.m), out.best_name, out.best.str(),
                   out.lower.str(),
                   fmt(out.best.to_double() / out.lower.to_double(), 2),
                   out.worst_name, out.worst.str()});
  }
  table.print(std::cout);

  std::cout << "\nwins per algorithm:\n";
  bool multiple_winners = false;
  int distinct = 0;
  for (const auto& [name, count] : wins) {
    std::cout << "  " << name << ": " << count << "\n";
    ++distinct;
  }
  multiple_winners = distinct >= 2;
  all_ok = all_ok && multiple_winners;

  std::cout << "\nShape checks: every algorithm >= Lemma 8 everywhere; no single "
               "algorithm dominates the whole (n, m, lambda) space (the paper's "
               "motivation for the DTREE family).\n";
  std::cout << "E8 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";

  obs::BenchRecord rec;
  rec.bench = "bench_multimessage_shootout";
  rec.n = 128;
  rec.lambda = Rational(5, 2);
  rec.m = 4;
  rec.makespan = Rational(0);
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"sweep", "4 lambdas x 3 ns x 4 ms"},
               {"threads", std::to_string(threads)}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
