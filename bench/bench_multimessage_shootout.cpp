// E8 -- Section 4: who wins where in the (n, m, lambda) space.
//
// Runs every multi-message algorithm in the library over a grid and prints
// the winner and its distance from the Lemma 8 lower bound. Expected shape
// (paper Section 4.2-4.3 discussion):
//   * m = 1            -> REPEAT/PACK/PIPELINE all collapse to optimal BCAST;
//   * small m, huge L  -> PACK / star-like strategies near-optimal;
//   * large m          -> PIPELINE and the line take over;
//   * no algorithm beats the lower bound, none is universally best.
#include <iostream>
#include <map>

#include "model/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E8: multi-message shootout over (n, m, lambda) ===\n\n";
  bool all_ok = true;
  std::map<std::string, int> wins;

  TextTable table({"lambda", "n", "m", "winner", "winner T", "lower bound",
                   "T/lower", "worst algo", "worst T"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8), Rational(32)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {16ULL, 128ULL, 1024ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 4ULL, 32ULL, 256ULL}) {
        const Rational lower = lemma8_lower(fib, n, m);
        std::string best_name;
        std::string worst_name;
        Rational best;
        Rational worst;
        for (const MultiAlgo algo : all_multi_algos()) {
          const Rational t = predict_multi(algo, params, m);
          // Spot-validate one mid-size configuration per algorithm family.
          if (n == 128 && m == 4) {
            ValidatorOptions options;
            options.messages = static_cast<std::uint32_t>(m);
            const SimReport report =
                validate_schedule(make_multi_schedule(algo, params, m), params, options);
            all_ok = all_ok && report.ok && report.makespan == t;
          }
          all_ok = all_ok && t >= lower;
          if (best_name.empty() || t < best) {
            best = t;
            best_name = algo_name(algo);
          }
          if (worst_name.empty() || t > worst) {
            worst = t;
            worst_name = algo_name(algo);
          }
        }
        ++wins[best_name];
        table.add_row({lambda.str(), std::to_string(n), std::to_string(m), best_name,
                       best.str(), lower.str(),
                       fmt(best.to_double() / lower.to_double(), 2), worst_name,
                       worst.str()});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nwins per algorithm:\n";
  bool multiple_winners = false;
  int distinct = 0;
  for (const auto& [name, count] : wins) {
    std::cout << "  " << name << ": " << count << "\n";
    ++distinct;
  }
  multiple_winners = distinct >= 2;
  all_ok = all_ok && multiple_winners;

  std::cout << "\nShape checks: every algorithm >= Lemma 8 everywhere; no single "
               "algorithm dominates the whole (n, m, lambda) space (the paper's "
               "motivation for the DTREE family).\n";
  std::cout << "E8 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
