// E6 -- Lemmas 14 & 16 / Corollaries 15 & 17: Algorithm PIPELINE.
//
//   PIPELINE-1 (m <= lambda): T = m * f_{lambda/m}(n) + (m-1)
//   PIPELINE-2 (m >= lambda): T = lambda * f_{m/lambda}(n) + (lambda-1)
//
// Sweeps across the regime boundary m = lambda, validates every schedule
// (the role-reversal of PIPELINE-2 is the subtle part -- the simulator
// checks every port window), compares with the exact formulas, and shows
// PIPELINE beating PACK thanks to stream nonatomicity.
//
// Includes the ablation from DESIGN.md: a naive PIPELINE-2 that *ignores*
// the role reversal (physical sender keeps the continuing-sender role) is
// rejected by the validator -- its send port would need to transmit two
// streams at once.
#include <iostream>

#include "model/bounds.hpp"
#include "obs/bench_record.hpp"
#include "sched/bcast.hpp"
#include "sched/pack.hpp"
#include "sched/pipeline.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

namespace postal {
namespace {

/// Deliberately wrong PIPELINE-2: applies the PIPELINE-1 expansion (no
/// role reversal) in the m > lambda regime.
Schedule naive_pipeline2(const PostalParams& params, std::uint64_t m) {
  // Use the PIPELINE-2 normalization but the straight BCAST role mapping:
  // each normalized send at tau becomes a stream at real lambda*tau.
  const Rational lambda_prime = pipeline2_lambda(params.lambda(), m);
  GenFib fib(lambda_prime);
  Schedule base;
  bcast_emit(base, fib, 0, params.n(), Rational(0), 0);
  Schedule out;
  for (const SendEvent& e : base.events()) {
    for (std::uint64_t k = 0; k < m; ++k) {
      out.add(e.src, e.dst, static_cast<MsgId>(k),
              params.lambda() * e.t + Rational(static_cast<std::int64_t>(k)));
    }
  }
  out.sort();
  return out;
}

}  // namespace
}  // namespace postal

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E6: Lemmas 14/16 -- Algorithm PIPELINE (both regimes) ===\n\n";
  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_pipeline";

  TextTable table({"lambda", "n", "m", "regime", "simulated", "lemma formula",
                   "PACK", "Lemma 8 lower"});
  for (const Rational lambda : {Rational(2), Rational(4), Rational(8)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {14ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 2ULL, 4ULL, 8ULL, 32ULL, 128ULL}) {
        const Schedule s = pipeline_schedule(params, m);
        ValidatorOptions options;
        options.messages = static_cast<std::uint32_t>(m);
        const SimReport report = validate_schedule(s, params, options);
        const Rational predicted = predict_pipeline(lambda, n, m);
        const Rational pack = predict_pack(lambda, n, m);
        const Rational lower = lemma8_lower(fib, n, m);
        const bool regime1 = Rational(static_cast<std::int64_t>(m)) <= lambda;
        const bool ok = report.ok && report.order_preserving &&
                        report.makespan == predicted && lower <= predicted &&
                        predicted <= pack;
        all_ok = all_ok && ok;
        rec.n = n;
        rec.lambda = lambda;
        rec.m = m;
        rec.makespan = report.makespan;
        table.add_row({lambda.str(), std::to_string(n), std::to_string(m),
                       regime1 ? "PL-1" : "PL-2",
                       report.makespan.str() + (ok ? "" : " (!)"), predicted.str(),
                       pack.str(), lower.str()});
      }
    }
  }
  table.print(std::cout);

  // Ablation: PIPELINE-2 without the role reversal is not even a legal
  // postal schedule.
  std::cout << "\n--- Ablation: PIPELINE-2 without role reversal ---\n";
  const PostalParams params(32, Rational(2));
  const Schedule bad = naive_pipeline2(params, /*m=*/8);
  ValidatorOptions options;
  options.messages = 8;
  const SimReport bad_report = validate_schedule(bad, params, options);
  std::cout << "validator verdict on the naive variant: "
            << (bad_report.ok ? "accepted (UNEXPECTED)" : "rejected") << " with "
            << bad_report.violations.size() << " violations (send-port overlap: the "
            << "sender would have to transmit two streams at once)\n";
  all_ok = all_ok && !bad_report.ok;

  std::cout << "\nShape checks: measured == lemma formulas exactly in both regimes; "
               "regimes agree at m = lambda; PIPELINE <= PACK everywhere "
               "(nonatomicity of the stream, paper Section 4.2); the role reversal "
               "is necessary, not cosmetic.\n";
  std::cout << "E6 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"algorithm", "PIPELINE"}, {"sweep", "last point recorded"}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
