// E25 (engineering) -- the broadcast service under open-loop load
// (docs/SERVICE.md).
//
// Two workload sections stream 20k jobs each through run_service and
// report tail sojourn latency (p50/p99/p999) plus model-time throughput
// and wall-clock jobs/sec:
//
//   poisson_20k   Poisson arrivals, two-shape mix (n=64 lambda=2 and
//                 n=256 lambda=5/2), queue capacity 256, utilization
//                 below 1 -- the steady-load shape of the percentile
//                 pipeline (waits come from stochastic bursts, not
//                 saturation);
//   burst_onoff   ON/OFF bursts at 8 jobs/unit on a capacity-64 queue --
//                 the shed-heavy shape the back-pressure policy exists for.
//
// The verdict is *correctness-gated*; wall times are recorded but never
// gate. Every section must pass:
//
//   * conservation: generated = admitted + shed and admitted = completed;
//   * replay identity: a second run of (spec, seed, options) produces the
//     byte-identical report JSON;
//   * thread invariance: a threads=4 run (sharded ParMachine under the
//     executed sample) produces the byte-identical report JSON;
//   * trace-mode invariance: a TraceMode::kCounters run (per-delivery
//     records elided in the exec tier) produces the byte-identical report;
//   * percentile certification: the streaming histogram's p50/p99/p999
//     are held against the exact nearest-rank quantile of the full
//     sojourn list with the hard bound v <= q <= v + floor(v * 2^-bits)
//     (obs/histogram.hpp) -- no tolerance;
//   * bounded depth: the queue high-water mark never exceeds capacity.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_record.hpp"
#include "obs/histogram.hpp"
#include "support/table.hpp"
#include "support/ticks.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"

namespace {

using namespace postal;

struct Section {
  std::string slug;
  std::string spec_text;
  std::uint64_t seed = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t exec_every = 0;
  // Results.
  svc::ServiceReport report;
  double wall_ms = 0.0;
  double jobs_per_sec = 0.0;
  bool gates_ok = false;
  std::string failure;  ///< first failed gate, for the table
};

/// Hard percentile bound: reported q vs exact nearest-rank v over the full
/// sojourn tick list (overflow-safe form of q <= v + floor(v * 2^-bits)).
bool certified(std::uint64_t q, std::uint64_t v, unsigned bits) {
  return v <= q && q - v <= (v >> bits);
}

void run_section(Section& s) {
  const svc::WorkloadSpec spec = svc::WorkloadSpec::parse(s.spec_text);
  svc::ServiceOptions options;
  options.queue_capacity = s.queue_capacity;
  options.exec_every = s.exec_every;

  const obs::WallClock clock;
  s.report = svc::run_service(spec, s.seed, options);
  s.wall_ms = clock.elapsed_ms();
  s.jobs_per_sec = s.wall_ms > 0.0
                       ? static_cast<double>(s.report.counters.generated) /
                             (s.wall_ms / 1e3)
                       : 0.0;
  const std::string reference = s.report.to_json();
  const auto& c = s.report.counters;

  // Gate 1: conservation.
  if (c.generated != spec.jobs || c.generated != c.admitted + c.shed ||
      c.admitted != c.completed) {
    s.failure = "conservation";
    return;
  }
  // Gate 2: bounded depth.
  if (s.queue_capacity != 0 && c.depth_max > s.queue_capacity) {
    s.failure = "depth > capacity";
    return;
  }
  // Gate 3: replay identity.
  if (svc::run_service(spec, s.seed, options).to_json() != reference) {
    s.failure = "replay drift";
    return;
  }
  // Gate 4: thread invariance (the executed sample runs sharded).
  svc::ServiceOptions threaded = options;
  threaded.threads = 4;
  if (svc::run_service(spec, s.seed, threaded).to_json() != reference) {
    s.failure = "threads=4 drift";
    return;
  }
  // Gate 4b: trace-mode invariance. The exec tier only reads the
  // first-arrival table and the schedule validator, both preserved under
  // kCounters, so eliding per-delivery records must not move the report.
  svc::ServiceOptions counters = threaded;
  counters.trace_mode = TraceMode::kCounters;
  if (svc::run_service(spec, s.seed, counters).to_json() != reference) {
    s.failure = "trace-mode drift";
    return;
  }
  // Gate 5: percentile certification against the exact sojourn list.
  svc::ServiceOptions keep = options;
  keep.keep_sojourns = true;
  const svc::ServiceReport full = svc::run_service(spec, s.seed, keep);
  if (full.to_json() != reference || full.counters.sojourn_offgrid != 0) {
    s.failure = "keep_sojourns drift";
    return;
  }
  const TickDomain domain(full.sojourn_grid);
  std::vector<std::uint64_t> ticks;
  ticks.reserve(full.sojourns.size());
  for (const Rational& sojourn : full.sojourns) {
    const auto t = domain.to_ticks(sojourn);
    if (!t) {
      s.failure = "sojourn off grid";
      return;
    }
    ticks.push_back(static_cast<std::uint64_t>(*t));
  }
  std::sort(ticks.begin(), ticks.end());
  if (!certified(full.p50_ticks, obs::exact_quantile(ticks, 1, 2),
                 full.histogram_bits) ||
      !certified(full.p99_ticks, obs::exact_quantile(ticks, 99, 100),
                 full.histogram_bits) ||
      !certified(full.p999_ticks, obs::exact_quantile(ticks, 999, 1000),
                 full.histogram_bits)) {
    s.failure = "percentile bound";
    return;
  }
  s.gates_ok = true;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E25: broadcast service under open-loop load ===\n\n";

  std::vector<Section> sections(2);
  sections[0].slug = "poisson_20k";
  sections[0].spec_text =
      "poisson;grid=16;rate=1/16;jobs=20000;mix=w3:n64:l2:m1|w1:n256:l5/2:m1";
  sections[0].seed = 7;
  sections[0].queue_capacity = 256;
  sections[0].exec_every = 512;

  sections[1].slug = "burst_onoff";
  sections[1].spec_text =
      "onoff;grid=16;rate=8;on=64;off=192;jobs=20000;mix=w1:n128:l3:m1";
  sections[1].seed = 11;
  sections[1].queue_capacity = 64;
  sections[1].exec_every = 1024;

  bool all_ok = true;
  TextTable table({"section", "jobs", "shed", "p50", "p99", "p999",
                   "throughput", "jobs/s", "gates"});
  for (Section& s : sections) {
    run_section(s);
    const auto& c = s.report.counters;
    table.add_row({s.slug, std::to_string(c.generated), std::to_string(c.shed),
                   s.report.p50.str(), s.report.p99.str(), s.report.p999.str(),
                   s.report.throughput.str(), fmt(s.jobs_per_sec, 0),
                   s.gates_ok ? "pass" : "FAIL: " + s.failure});
    all_ok = all_ok && s.gates_ok;
  }
  table.print(std::cout);
  std::cout << "\nE25 verdict: " << (all_ok ? "CERTIFIED" : "MISMATCH")
            << "  (replay + thread-invariance + percentile-bound gated; "
               "wall times recorded, machine-dependent)\n";

  // The headline record carries the poisson section's percentiles at the
  // top level (the svc.* contract scripts/validate_bench_records.py --svc
  // checks) plus per-section details.
  const Section& head = sections[0];
  obs::BenchRecord rec;
  rec.bench = "bench_service";
  rec.n = 256;
  rec.lambda = Rational(2);
  rec.makespan = head.report.horizon;
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "CERTIFIED" : "MISMATCH";
  rec.extra.emplace_back("p50", head.report.p50.str());
  rec.extra.emplace_back("p99", head.report.p99.str());
  rec.extra.emplace_back("p999", head.report.p999.str());
  rec.extra.emplace_back("throughput", head.report.throughput.str());
  for (const Section& s : sections) {
    const auto& c = s.report.counters;
    rec.extra.emplace_back(s.slug + "_jobs", std::to_string(c.generated));
    rec.extra.emplace_back(s.slug + "_shed", std::to_string(c.shed));
    rec.extra.emplace_back(s.slug + "_depth_max", std::to_string(c.depth_max));
    rec.extra.emplace_back(s.slug + "_exec_runs", std::to_string(c.exec_runs));
    rec.extra.emplace_back(s.slug + "_p50", s.report.p50.str());
    rec.extra.emplace_back(s.slug + "_p99", s.report.p99.str());
    rec.extra.emplace_back(s.slug + "_p999", s.report.p999.str());
    rec.extra.emplace_back(s.slug + "_throughput", s.report.throughput.str());
    rec.extra.emplace_back(s.slug + "_wall_ms", fmt(s.wall_ms, 2));
    rec.extra.emplace_back(s.slug + "_jobs_per_sec", fmt(s.jobs_per_sec, 0));
  }
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
