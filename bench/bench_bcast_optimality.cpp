// E2 -- Theorem 6: Algorithm BCAST is optimal, T_B(n, lambda) = f_lambda(n).
//
// Sweeps n and lambda; for every point it reports
//   * f_lambda(n)                  (the paper's closed form),
//   * the simulated BCAST makespan (must equal it exactly),
//   * the exhaustive-DP optimum    (independent of GenFib; must equal it),
//   * the lambda-oblivious binomial-tree baseline and its slowdown.
//
// Expected shape (paper): the two optima coincide everywhere; the binomial
// tree matches at lambda = 1 and falls behind as lambda grows.
#include <iostream>

#include "brute/optimal_search.hpp"
#include "obs/bench_record.hpp"
#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E2: Theorem 6 -- BCAST optimality, T_B(n, lambda) = f_lambda(n) ===\n\n";

  const Rational lambdas[] = {Rational(1),    Rational(3, 2), Rational(2),
                              Rational(5, 2), Rational(3),    Rational(4),
                              Rational(8),    Rational(16)};
  const std::uint64_t ns[] = {2, 8, 32, 128, 512, 2048, 4096};

  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_bcast_optimality";
  TextTable table({"lambda", "n", "f_lambda(n)", "BCAST (sim)", "DP optimum",
                   "binomial", "binomial/opt"});
  for (const Rational& lambda : lambdas) {
    GenFib fib(lambda);
    for (const std::uint64_t n : ns) {
      const PostalParams params(n, lambda);
      const SimReport report = validate_schedule(bcast_schedule(params, fib), params);
      const Rational predicted = fib.f(n);
      const Rational dp = optimal_broadcast_dp(n, lambda);
      const BroadcastTree binomial = BroadcastTree::binomial(n);
      const Rational naive = binomial.completion_time(lambda);
      const bool ok = report.ok && report.makespan == predicted && dp == predicted &&
                      naive >= predicted;
      all_ok = all_ok && ok;
      rec.n = n;
      rec.lambda = lambda;
      rec.makespan = report.makespan;
      table.add_row({lambda.str(), std::to_string(n), predicted.str(),
                     report.makespan.str() + (ok ? "" : " (!)"), dp.str(),
                     naive.str(), fmt(naive.to_double() / predicted.to_double(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape checks: simulated == f_lambda(n) == exhaustive optimum at "
               "every point; binomial tree optimal only at lambda = 1.\n";
  std::cout << "E2 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"sweep", "8 lambdas x 7 ns, last point recorded"}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
