// E2 -- Theorem 6: Algorithm BCAST is optimal, T_B(n, lambda) = f_lambda(n).
//
// Sweeps n and lambda; for every point it reports
//   * f_lambda(n)                  (the paper's closed form),
//   * the simulated BCAST makespan (must equal it exactly),
//   * the exhaustive-DP optimum    (independent of GenFib; must equal it),
//   * the lambda-oblivious binomial-tree baseline and its slowdown.
//
// Expected shape (paper): the two optima coincide everywhere; the binomial
// tree matches at lambda = 1 and falls behind as lambda grows.
//
// The grid itself runs through the parallel sweep engine (par/sweep.hpp):
// POSTAL_THREADS sets the fan-out (default: all cores), and because the
// engine's results are deterministic in grid order the table below is
// byte-identical for every thread count. The greedy frontier optimum is
// cross-checked per point inside the engine even though the table keeps
// its historical columns.
#include <iostream>

#include "obs/bench_record.hpp"
#include "par/sweep.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout
      << "=== E2: Theorem 6 -- BCAST optimality, T_B(n, lambda) = f_lambda(n) ===\n\n";

  const std::vector<Rational> lambdas = {Rational(1),    Rational(3, 2), Rational(2),
                                         Rational(5, 2), Rational(3),    Rational(4),
                                         Rational(8),    Rational(16)};
  const std::vector<std::uint64_t> ns = {2, 8, 32, 128, 512, 2048, 4096};

  par::SweepOptions options;
  options.threads = par::threads_from_env(par::default_threads());
  const std::vector<par::SweepPointResult> results =
      par::sweep_grid(ns, lambdas, options);

  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_bcast_optimality";
  TextTable table({"lambda", "n", "f_lambda(n)", "BCAST (sim)", "DP optimum",
                   "binomial", "binomial/opt"});
  for (const par::SweepPointResult& r : results) {
    // The binomial baseline is lambda-oblivious and cheap; it stays outside
    // the parallel engine so the engine's contract covers only Theorem 6.
    const BroadcastTree binomial = BroadcastTree::binomial(r.n);
    const Rational naive = binomial.completion_time(r.lambda);
    const bool ok = r.ok && naive >= r.f;
    all_ok = all_ok && ok;
    rec.n = r.n;
    rec.lambda = r.lambda;
    rec.makespan = r.makespan;
    table.add_row({r.lambda.str(), std::to_string(r.n), r.f.str(),
                   r.makespan.str() + (ok ? "" : " (!)"), r.dp.str(),
                   naive.str(), fmt(naive.to_double() / r.f.to_double(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape checks: simulated == f_lambda(n) == exhaustive optimum at "
               "every point; binomial tree optimal only at lambda = 1.\n";
  std::cout << "E2 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"sweep", "8 lambdas x 7 ns, last point recorded"},
               {"threads", std::to_string(options.threads)}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
