// E12 -- Section 5 "further research" directions, made concrete:
//   (a) time-varying lambda: static vs. adaptive vs. estimator-driven
//       planning under drifting latency;
//   (b) hierarchies of latency parameters: flat vs. two-level broadcast;
//   (c) the LogP relationship the introduction mentions: optimal LogP
//       broadcast equals the postal optimum at lambda = (L + 2o)/max(o, g).
#include <iostream>

#include "adaptive/hetero.hpp"
#include "adaptive/hierarchical.hpp"
#include "adaptive/time_varying.hpp"
#include "model/genfib.hpp"
#include "model/logp.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E12: Section 5 extensions ===\n\n";
  bool all_ok = true;

  std::cout << "--- (a) broadcasting under time-varying lambda ---\n";
  TextTable t1({"profile", "n", "static", "adaptive", "estimated",
                "adaptive gain"});
  struct ProfileCase {
    const char* name;
    LatencyProfile profile;
  };
  const ProfileCase profiles[] = {
      {"constant 5/2", LatencyProfile::constant(Rational(5, 2))},
      {"2 -> 8 at t=3", LatencyProfile::step(Rational(2), Rational(8), Rational(3))},
      {"8 -> 2 at t=6", LatencyProfile::step(Rational(8), Rational(2), Rational(6))},
      {"2->4->6 ramp", LatencyProfile({{Rational(0), Rational(2)},
                                       {Rational(4), Rational(4)},
                                       {Rational(8), Rational(6)}})},
  };
  for (const auto& pc : profiles) {
    for (const std::uint64_t n : {64ULL, 512ULL}) {
      const Rational st =
          adaptive_broadcast(n, pc.profile, AdaptPolicy::kStatic).completion;
      const Rational ad =
          adaptive_broadcast(n, pc.profile, AdaptPolicy::kAdaptive).completion;
      const Rational es =
          adaptive_broadcast(n, pc.profile, AdaptPolicy::kEstimated).completion;
      all_ok = all_ok && ad <= st;
      t1.add_row({pc.name, std::to_string(n), st.str(), ad.str(), es.str(),
                  fmt(st.to_double() / ad.to_double(), 3) + "x"});
    }
  }
  t1.print(std::cout);

  std::cout << "\n--- (b) two-level latency hierarchy ---\n";
  TextTable t2({"n", "cluster", "L_intra", "L_inter", "flat", "two-level",
                "speedup"});
  struct TwoLevelCase {
    std::uint64_t n;
    std::uint64_t c;
    Rational intra;
    Rational inter;
  };
  const TwoLevelCase cases[] = {
      {64, 8, Rational(1), Rational(8)},
      {64, 8, Rational(3, 2), Rational(4)},
      {128, 16, Rational(1), Rational(16)},
      {120, 10, Rational(2), Rational(6)},
      {64, 8, Rational(3), Rational(3)},
  };
  for (const auto& c : cases) {
    const TwoLevelParams p{c.n, c.c, c.intra, c.inter};
    const HeteroReport flat = simulate_two_level(hierarchical_flat_schedule(p), p);
    const HeteroReport two = simulate_two_level(hierarchical_two_level_schedule(p), p);
    all_ok = all_ok && flat.ok && two.ok;
    const bool hierarchy_matters = c.inter > c.intra;
    if (hierarchy_matters) all_ok = all_ok && two.completion <= flat.completion;
    t2.add_row({std::to_string(c.n), std::to_string(c.c), c.intra.str(),
                c.inter.str(), flat.completion.str(), two.completion.str(),
                fmt(flat.completion.to_double() / two.completion.to_double(), 3) + "x"});
  }
  t2.print(std::cout);

  std::cout << "\n--- (b') arbitrary latency matrices: greedy vs conservative ---\n";
  TextTable t2b({"matrix", "n", "conservative (max-lambda tree)", "greedy",
                 "speedup"});
  struct MatrixCase {
    const char* name;
    HeteroLatency lat;
  };
  const MatrixCase mats[] = {
      {"uniform 5/2", HeteroLatency::uniform(48, Rational(5, 2))},
      {"two-level 1/8 (c=8)", HeteroLatency::two_level(48, 8, Rational(1), Rational(8))},
      {"random [1,6]", HeteroLatency::random(48, Rational(1), Rational(6), 42)},
      {"random [2,3]", HeteroLatency::random(48, Rational(2), Rational(3), 43)},
  };
  for (const auto& mc : mats) {
    const HeteroSimReport greedy =
        simulate_hetero(hetero_greedy_broadcast(mc.lat), mc.lat);
    const HeteroSimReport conservative =
        simulate_hetero(hetero_conservative_broadcast(mc.lat), mc.lat);
    all_ok = all_ok && greedy.ok && conservative.ok &&
             greedy.completion <= conservative.completion;
    t2b.add_row({mc.name, std::to_string(mc.lat.n()), conservative.completion.str(),
                 greedy.completion.str(),
                 fmt(conservative.completion.to_double() / greedy.completion.to_double(),
                     3) +
                     "x"});
  }
  // Uniform sanity: greedy must recover the exact optimum f_lambda(n).
  {
    GenFib fib(Rational(5, 2));
    const HeteroSimReport uniform =
        simulate_hetero(hetero_greedy_broadcast(mats[0].lat), mats[0].lat);
    all_ok = all_ok && uniform.completion == fib.f(48);
  }
  t2b.print(std::cout);

  std::cout << "\n--- (c) LogP equivalence ---\n";
  TextTable t3({"L", "o", "g", "P", "postal lambda", "T via GenFib",
                "T via greedy DP", "agree"});
  struct LogPCase {
    Rational L, o, g;
    std::uint64_t P;
  };
  const LogPCase lps[] = {
      {Rational(0), Rational(1, 2), Rational(1), 1024},
      {Rational(4), Rational(1), Rational(2), 256},
      {Rational(10), Rational(2), Rational(1), 100},
      {Rational(15, 2), Rational(1, 2), Rational(5, 2), 333},
  };
  for (const auto& lp : lps) {
    const LogPParams p{lp.L, lp.o, lp.g, lp.P};
    const Rational a = logp_broadcast_time(p);
    const Rational b = logp_broadcast_time_dp(p);
    all_ok = all_ok && a == b;
    t3.add_row({lp.L.str(), lp.o.str(), lp.g.str(), std::to_string(lp.P),
                p.postal_lambda().str(), a.str(), b.str(), a == b ? "yes" : "NO"});
  }
  t3.print(std::cout);

  std::cout << "\nShape checks: adaptive never loses to static under drift; the "
               "two-level plan wins whenever the hierarchy is real; LogP optimal "
               "broadcast == postal optimum under the lambda mapping.\n";
  std::cout << "E12 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
