// E11 -- Section 5 "other problems": reduce/combine, scatter, gather,
// allgather (gossip), and barrier in the postal model.
//
// For each collective the bench reports measured completion vs. its exact
// prediction and the relevant lower bound. Headline shapes:
//   * combining mirrors broadcasting exactly (f_lambda(n), via [6]);
//   * scatter/gather pin the root's port: (n-2) + lambda, latency-oblivious;
//   * gossip: direct exchange meets (n-2) + lambda while the telephone-idiom
//     ring pays lambda per hop -- latency awareness matters for broadcast
//     but full connectivity makes gossip easy;
//   * barrier = combine + broadcast = 2 f_lambda(n).
#include <iostream>

#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/barrier.hpp"
#include "collectives/multi_source.hpp"
#include "collectives/reduce.hpp"
#include "collectives/scan.hpp"
#include "collectives/scatter.hpp"
#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E11: other collectives in the postal model (Section 5) ===\n\n";
  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_collectives";

  TextTable table({"lambda", "n", "bcast=f(n)", "reduce", "scatter", "gather",
                   "gossip direct", "gossip ring", "gossip g+b", "barrier"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 32ULL, 128ULL}) {
      const PostalParams params(n, lambda);

      const ReduceReport reduce = validate_reduce(reduce_schedule(params), params);
      all_ok = all_ok && reduce.ok && reduce.completion == fib.f(n);

      const SimReport scatter =
          validate_schedule(scatter_schedule(params), params, scatter_goal(params));
      all_ok = all_ok && scatter.ok && scatter.makespan == predict_scatter(params);

      const SimReport gather =
          validate_schedule(gather_schedule(params), params, gather_goal(params));
      all_ok = all_ok && gather.ok && gather.makespan == predict_gather(params);

      const SimReport direct = validate_schedule(allgather_direct_schedule(params),
                                                 params, allgather_goal(params));
      all_ok = all_ok && direct.ok &&
               direct.makespan == allgather_lower_bound(params);

      const SimReport ring = validate_schedule(allgather_ring_schedule(params),
                                               params, allgather_goal(params));
      all_ok = all_ok && ring.ok && ring.makespan == predict_allgather_ring(params);

      const SimReport gb = validate_schedule(allgather_gather_bcast_schedule(params),
                                             params, allgather_goal(params));
      all_ok = all_ok && gb.ok;

      const Rational barrier = predict_barrier(params);
      all_ok = all_ok && barrier == Rational(2) * fib.f(n);

      table.add_row({lambda.str(), std::to_string(n), fib.f(n).str(),
                     reduce.completion.str(), scatter.makespan.str(),
                     gather.makespan.str(), direct.makespan.str(),
                     ring.makespan.str(), gb.makespan.str(), barrier.str()});
    }
  }
  table.print(std::cout);

  std::cout << "\n--- extended collectives ---\n";
  TextTable ext({"lambda", "n", "alltoall", "scan", "allreduce tree",
                 "allreduce gossip", "auto pick", "multi-src k=3"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8), Rational(64)}) {
    for (const std::uint64_t n : {8ULL, 32ULL, 128ULL}) {
      const PostalParams params(n, lambda);
      const SimReport a2a =
          validate_schedule(alltoall_schedule(params), params, alltoall_goal(params));
      all_ok = all_ok && a2a.ok && a2a.makespan == alltoall_lower_bound(params);
      const Rational tree = predict_allreduce(params, AllreduceStrategy::kTree);
      const Rational gossip = predict_allreduce(params, AllreduceStrategy::kGossip);
      const AllreduceStrategy pick = allreduce_auto(params);
      all_ok = all_ok && predict_allreduce(params, pick) == rmin(tree, gossip);
      const std::vector<ProcId> sources{0, static_cast<ProcId>(n / 2),
                                        static_cast<ProcId>(n - 1)};
      const SimReport ms = validate_schedule(multi_source_schedule(params, sources),
                                             params, multi_source_goal(params, sources));
      all_ok = all_ok && ms.ok;
      rec.n = n;
      rec.lambda = lambda;
      rec.makespan = a2a.makespan;
      ext.add_row({lambda.str(), std::to_string(n), a2a.makespan.str(),
                   predict_scan(params).str(), tree.str(), gossip.str(),
                   pick == AllreduceStrategy::kTree ? "tree" : "gossip",
                   ms.makespan.str()});
    }
  }
  ext.print(std::cout);

  std::cout << "\nShape checks: reduce == broadcast time (time-reversal); scatter "
               "== gather == (n-2)+lambda (root-port bound, met exactly); gossip "
               "direct-exchange meets its lower bound while the ring degrades "
               "linearly in lambda; barrier == 2 f_lambda(n).\n";
  std::cout << "E11 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"collective", "alltoall"}, {"sweep", "last point recorded"}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
