// E27 (engineering) -- the replicated log under leader failure and
// reconfiguration (docs/COORDINATION.md).
//
// For a grid of machine sizes, measure in exact model time:
//
//   * commit latency -- fault-free, the time from start to the last rank's
//     final decide (the whole batch through one lease in view 0);
//   * crash recovery -- the extra commit latency paid when the view-0
//     leader (the lease holder) is dead on arrival, versus the fault-free
//     baseline of the same resolved options;
//   * reconfig overhead -- the extra commit latency of a run that removes
//     one rank mid-log, versus the same baseline.
//
// All three are reported as exact multiples of lambda (the postal latency
// is the natural unit of every timeout in the layer), which is what the
// trajectory baseline tracks: the multiples are a pure function of
// (n, lambda, plan, reconfig), so any drift is an algorithmic change,
// never noise.
//
// The verdict is *correctness-gated*; wall times are recorded but never
// gate. Every point must pass:
//
//   * the crash-aware machine validation AND the replicated-log validator
//     (per-slot agreement, validity, single proposer, lease mutual
//     exclusion, fencing monotonicity, prefix durability, reconfig
//     safety, guarded liveness) on every run;
//   * settled runs (disturbances bounded inside the derived horizon);
//   * fault-free identity: no plan means every slot decides in view 0
//     under a single never-lapsing lease with zero recovery;
//   * thread invariance: a threads=4 sharded run produces byte-identical
//     events, rank logs, and counters.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "coord/log.hpp"
#include "faults/fault_plan.hpp"
#include "obs/bench_record.hpp"
#include "obs/instrument.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct Point {
  std::uint64_t n = 0;
  Rational lambda;
  // Results.
  Rational commit_latency;  ///< fault-free batch latency
  Rational commit_over_lambda;
  Rational recovery;  ///< leader-DOA commit latency - baseline
  Rational recovery_over_lambda;
  Rational reconfig_overhead;  ///< one-removal commit latency - baseline
  Rational reconfig_over_lambda;
  double wall_ms = 0.0;
  bool gates_ok = false;
  std::string failure;  ///< first failed gate, for the table
};

bool judged_ok(const coord::LogReport& report) {
  return report.validation.ok && report.check.ok && report.settled;
}

void run_point(Point& p) {
  const PostalParams params(p.n, p.lambda);
  const obs::WallClock clock;

  // Fault-free identity gates: all slots in view 0, one lease, nothing
  // fenced, zero recovery.
  const coord::LogReport quiet = coord::run_log(params);
  if (!judged_ok(quiet) || quiet.views_used != 0 ||
      quiet.counters.lease_expiries != 0 ||
      quiet.counters.stale_rejects != 0 ||
      quiet.recovery_time != Rational(0)) {
    p.failure = "fault-free log";
    return;
  }
  p.commit_latency = quiet.commit_latency;
  p.commit_over_lambda = quiet.commit_latency / p.lambda;

  // Leader dead on arrival: every commit pays at least one full view of
  // recovery before the successor's lease covers the batch.
  FaultPlan doa;
  doa.crashes.push_back(CrashFault{0, Rational(0)});
  const coord::LogReport crash = coord::run_log(params, &doa);
  if (!judged_ok(crash)) {
    p.failure = "crash log";
    return;
  }
  p.recovery = crash.recovery_time;
  p.recovery_over_lambda = crash.recovery_time / p.lambda;

  // Reconfiguration: remove the highest rank mid-log (a config command
  // decided like any slot; tree/quorum/leader recomputed at activation).
  coord::LogOptions ropts;
  ropts.reconfig.push_back(coord::ReconfigRequest{
      static_cast<ProcId>(p.n - 1), quiet.options.heartbeat_period});
  const coord::LogReport reconfig = coord::run_log(params, nullptr, ropts);
  if (!judged_ok(reconfig) || reconfig.counters.config_applies == 0 ||
      reconfig.final_members.size() != p.n - 1) {
    p.failure = "reconfig log";
    return;
  }
  const Rational overhead = reconfig.commit_latency - quiet.commit_latency;
  p.reconfig_overhead = overhead;
  p.reconfig_over_lambda = overhead / p.lambda;

  // Thread invariance: the sharded engine must reproduce the crash run
  // byte for byte.
  coord::LogOptions topts;
  topts.threads = 4;
  const coord::LogReport crash4 = coord::run_log(params, &doa, topts);
  if (crash4.events != crash.events || crash4.ranks != crash.ranks ||
      crash4.counters != crash.counters) {
    p.failure = "log threads=4 drift";
    return;
  }

  p.wall_ms = clock.elapsed_ms();
  p.gates_ok = true;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E27: replicated log under leader failure and "
               "reconfiguration ===\n\n";

  std::vector<Point> points;
  for (const std::uint64_t n : {8ULL, 16ULL, 32ULL}) {
    Point p;
    p.n = n;
    p.lambda = Rational(5, 2);
    points.push_back(p);
  }
  Point integer_lambda;
  integer_lambda.n = 24;
  integer_lambda.lambda = Rational(2);
  points.push_back(integer_lambda);

  bool all_ok = true;
  TextTable table({"n", "lambda", "commit", "commit/lambda", "recovery",
                   "recovery/lambda", "reconfig", "reconfig/lambda", "gates"});
  for (Point& p : points) {
    run_point(p);
    table.add_row({std::to_string(p.n), p.lambda.str(), p.commit_latency.str(),
                   p.commit_over_lambda.str(), p.recovery.str(),
                   p.recovery_over_lambda.str(), p.reconfig_overhead.str(),
                   p.reconfig_over_lambda.str(),
                   p.gates_ok ? "pass" : "FAIL: " + p.failure});
    all_ok = all_ok && p.gates_ok;
  }
  table.print(std::cout);
  std::cout << "\nE27 verdict: " << (all_ok ? "CERTIFIED" : "MISMATCH")
            << "  (validator + settle + fault-free-identity + "
               "thread-invariance gated; wall times recorded, "
               "machine-dependent)\n";

  const Point& head = points.back();
  obs::BenchRecord rec;
  rec.bench = "bench_log";
  rec.n = head.n;
  rec.lambda = head.lambda;
  rec.makespan = head.commit_latency;
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "CERTIFIED" : "MISMATCH";
  for (const Point& p : points) {
    const std::string slug = "n" + std::to_string(p.n) + "_l" + p.lambda.str();
    rec.extra.emplace_back(slug + "_commit_latency", p.commit_latency.str());
    rec.extra.emplace_back(slug + "_commit_over_lambda",
                           p.commit_over_lambda.str());
    rec.extra.emplace_back(slug + "_recovery", p.recovery.str());
    rec.extra.emplace_back(slug + "_recovery_over_lambda",
                           p.recovery_over_lambda.str());
    rec.extra.emplace_back(slug + "_reconfig_overhead",
                           p.reconfig_overhead.str());
    rec.extra.emplace_back(slug + "_reconfig_over_lambda",
                           p.reconfig_over_lambda.str());
    rec.extra.emplace_back(slug + "_wall_ms", fmt(p.wall_ms, 2));
  }
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
