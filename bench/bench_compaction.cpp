// E14 (extension) -- schedule compaction beyond the paper's strides.
//
// Question raised by Lemma 10's proof: REPEAT restarts BCAST every
// f_lambda(n) - (lambda - 1) time units, justified by the root's idle
// tail. Is that stride actually minimal? This bench computes the true
// minimal valid stride (validator-certified search on the exact time
// grid) and compares; it then evaluates the BLOCKED(b) family -- blocks of
// b messages pipelined per block, blocks launched at minimal stride --
// against the paper's algorithms and the Lemma 8 lower bound.
#include <iostream>

#include "compaction/blocked.hpp"
#include "model/bounds.hpp"
#include "sched/bcast.hpp"
#include "sched/pipeline.hpp"
#include "sched/registry.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E14 (extension): schedule compaction ===\n\n";
  bool all_ok = true;

  std::cout << "--- Is Lemma 10's REPEAT stride minimal? ---\n";
  TextTable t1({"lambda", "n", "paper stride f-(L-1)", "minimal stride",
                "compacted?"});
  std::uint64_t compacted_points = 0;
  for (const Rational lambda : {Rational(2), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 14ULL, 32ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      const Schedule iteration = bcast_schedule(params, fib);
      const Rational paper = fib.f(n) - (lambda - Rational(1));
      const Rational measured = minimal_stride(iteration, params, 1, 4);
      all_ok = all_ok && measured <= paper;
      if (measured < paper) ++compacted_points;
      t1.add_row({lambda.str(), std::to_string(n), paper.str(), measured.str(),
                  measured < paper ? "yes" : "no (tight)"});
    }
  }
  t1.print(std::cout);
  std::cout << "points where the paper's stride is not minimal: "
            << compacted_points << "/12\n";

  std::cout << "\n--- BLOCKED(b): block size sweep vs the paper's algorithms ---\n";
  TextTable t2({"lambda", "n", "m", "best paper algo", "paper T", "auto-blocked b",
                "blocked T", "Lemma 8 lower"});
  for (const Rational lambda : {Rational(2), Rational(4)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {14ULL, 32ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {4ULL, 8ULL, 16ULL}) {
        Rational best_paper;
        std::string best_name;
        bool first = true;
        for (const MultiAlgo algo : all_multi_algos()) {
          const Rational t = predict_multi(algo, params, m);
          if (first || t < best_paper) {
            best_paper = t;
            best_name = algo_name(algo);
            first = false;
          }
        }
        const BlockedPlan plan = auto_blocked(params, m);
        const Rational lower = lemma8_lower(fib, n, m);
        all_ok = all_ok && plan.completion >= lower;
        t2.add_row({lambda.str(), std::to_string(n), std::to_string(m), best_name,
                    best_paper.str(), std::to_string(plan.block),
                    plan.completion.str(), lower.str()});
      }
    }
  }
  t2.print(std::cout);

  std::cout << "\nShape checks: the minimal stride never exceeds Lemma 10's; "
               "BLOCKED respects the universal lower bound and interpolates "
               "between REPEAT (b=1) and PIPELINE (b=m).\n";
  std::cout << "E14 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
