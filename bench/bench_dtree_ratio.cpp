// E9 -- Section 4.3 / MacKenzie [13]: competitive ratio of the best-degree
// DTREE against the Lemma 8 lower bound across the whole (n, m, lambda)
// range.
//
// [13] proves the DTREE family is within a multiplicative factor of 7 of
// optimal order-preserving broadcast (with per-range degree choices). This
// bench measures the *empirical* ratio best-DTREE / Lemma-8-lower-bound --
// a stricter comparison, since Lemma 8 bounds all broadcasts, not just
// order-preserving ones -- and reports the worst ratio seen.
#include <iostream>

#include "model/bounds.hpp"
#include "sched/dtree.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E9: DTREE best-degree competitive ratio vs Lemma 8 ===\n\n";

  double worst_ratio = 0.0;
  double worst_leveled_ratio = 0.0;
  std::string worst_at;
  TextTable table({"lambda", "n", "m", "best d", "best T", "leveled T", "lower",
                   "ratio", "leveled ratio"});
  for (const Rational lambda :
       {Rational(1), Rational(2), Rational(5, 2), Rational(4), Rational(16),
        Rational(64)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 64ULL, 512ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 3ULL, 16ULL, 128ULL}) {
        // Scan a representative degree set (powers of two plus the paper's
        // special degrees) for the best completion.
        Rational best;
        std::uint64_t best_d = 0;
        auto consider = [&](std::uint64_t d) {
          if (d < 1 || d > n - 1) return;
          const Rational t = predict_dtree(params, m, d);
          if (best_d == 0 || t < best) {
            best = t;
            best_d = d;
          }
        };
        consider(1);
        for (std::uint64_t d = 2; d <= n - 1; d *= 2) consider(d);
        consider(dtree_recommended_degree(params));
        consider(n - 1);
        const Rational lower = lemma8_lower(fib, n, m);
        const double ratio = best.to_double() / lower.to_double();
        // The [13]-style per-level freedom: never worse, sometimes better.
        const LeveledPlan leveled = leveled_dtree_auto(params, m);
        const double lratio = leveled.completion.to_double() / lower.to_double();
        if (ratio > worst_ratio) {
          worst_ratio = ratio;
          worst_at = "lambda=" + lambda.str() + " n=" + std::to_string(n) +
                     " m=" + std::to_string(m);
        }
        if (lratio > worst_leveled_ratio) worst_leveled_ratio = lratio;
        table.add_row({lambda.str(), std::to_string(n), std::to_string(m),
                       std::to_string(best_d), best.str(), leveled.completion.str(),
                       lower.str(), fmt(ratio, 3), fmt(lratio, 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nworst ratio: " << fmt(worst_ratio, 3) << " at " << worst_at
            << "; worst leveled ratio: " << fmt(worst_leveled_ratio, 3) << "\n";
  const bool ok = worst_ratio <= 7.0 + 1e-9 && worst_leveled_ratio <= worst_ratio + 1e-9;
  std::cout << "\nShape check: the empirical worst ratio stays within [13]'s "
               "factor-7 guarantee over the whole grid.\n";
  std::cout << "E9 verdict: " << (ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
