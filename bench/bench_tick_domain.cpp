// E22 (engineering) -- the tick-domain fast path vs. the Rational
// reference engines (docs/PERFORMANCE.md).
//
// Every measured section runs the same workload twice: once with
// TimePath::kRational (the checked-Rational reference loops) and once with
// TimePath::kAuto (the int64 tick engines, which these workloads are all
// exactly representable on). Sections:
//
//   dp_table     optimal_broadcast_dp_table, the O(n^2) split recursion
//                that dominates par::sweep_grid;
//   greedy       optimal_broadcast_greedy frontier expansion;
//   validator    validate_schedule over BCAST and PIPELINE-2 schedules;
//   machine      the event-driven Machine under BcastProtocol;
//   machine_f    the Machine under BcastProtocol with a crash+loss+spike
//                fault plan attached (the PR-3 chaos shape);
//   sweep        par::sweep_grid itself, cold caches, 1 thread -- the
//                sweep-dominated configuration the >= 2x target is read on.
//
// The verdict is *correctness-based*: each pair of runs must agree exactly
// (same Rational values, same events, same deliveries, same fault
// timelines, sweep results equal ignoring wall times). Wall-clock speedups
// are recorded per section in the bench record's extra fields; they are
// the headline numbers of the perf trajectory but deliberately do not gate
// the verdict, because absolute timings are machine-dependent.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "brute/optimal_search.hpp"
#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "par/sweep.hpp"
#include "sched/bcast.hpp"
#include "sched/pipeline.hpp"
#include "sim/machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct Section {
  std::string slug;  ///< stable bench-record key prefix, e.g. "dp_table"
  std::string name;
  double rational_ms = 0.0;
  double tick_ms = 0.0;
  bool consistent = false;
};

/// Time one workload on both paths and check the caller's equality verdict.
/// `run` receives the TimePath and returns an opaque result; `equal`
/// compares the two results.
template <typename Run, typename Equal>
Section measure(const std::string& slug, const std::string& name, Run&& run,
                Equal&& equal) {
  Section s;
  s.slug = slug;
  s.name = name;
  const obs::WallClock rational_clock;
  const auto reference = run(TimePath::kRational);
  s.rational_ms = rational_clock.elapsed_ms();
  const obs::WallClock tick_clock;
  const auto fast = run(TimePath::kAuto);
  s.tick_ms = tick_clock.elapsed_ms();
  s.consistent = equal(fast, reference);
  return s;
}

MachineResult run_machine(const PostalParams& params, TimePath path,
                          const FaultPlan* plan) {
  Machine machine(params, /*messages=*/1);
  machine.set_time_path(path);
  if (plan != nullptr) machine.attach_faults(*plan);
  BcastProtocol protocol(params);
  return machine.run(protocol);
}

bool machine_results_equal(const MachineResult& a, const MachineResult& b) {
  return a.schedule.events() == b.schedule.events() &&
         a.trace.deliveries() == b.trace.deliveries() &&
         a.stats.events_processed == b.stats.events_processed &&
         a.stats.port_busy == b.stats.port_busy &&
         a.faults.events == b.faults.events;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E22: tick-domain fast path vs. Rational reference ===\n\n";

  std::vector<Section> sections;

  // The sweep-dominated DP table: the loop par::sweep_grid spends most of
  // its time in. One large instance, repeated so the measured section is
  // well above timer noise.
  const std::uint64_t dp_n = 4096;
  const Rational lambda(5, 2);
  sections.push_back(measure(
      "dp_table", "dp_table n=4096",
      [&](TimePath path) {
        std::vector<Rational> table;
        for (int rep = 0; rep < 4; ++rep) {
          table = optimal_broadcast_dp_table(dp_n, lambda, path);
        }
        return table;
      },
      [](const auto& a, const auto& b) { return a == b; }));

  sections.push_back(measure(
      "greedy", "greedy n=2^20",
      [&](TimePath path) {
        return optimal_broadcast_greedy(std::uint64_t{1} << 20, lambda, path);
      },
      [](const Rational& a, const Rational& b) { return a == b; }));

  const PostalParams bcast_params(std::uint64_t{1} << 16, lambda);
  const Schedule bcast = bcast_schedule(bcast_params);
  const PostalParams pipe_params(std::uint64_t{1} << 12, Rational(2));
  const Schedule pipe = pipeline_schedule(pipe_params, /*m=*/16);
  sections.push_back(measure(
      "validator", "validator bcast n=2^16 + pipeline2 m=16",
      [&](TimePath path) {
        ValidatorOptions opts;
        opts.time_path = path;
        std::pair<SimReport, SimReport> reports{
            validate_schedule(bcast, bcast_params, opts), SimReport{}};
        ValidatorOptions popts;
        popts.time_path = path;
        popts.messages = 16;
        reports.second = validate_schedule(pipe, pipe_params, popts);
        return reports;
      },
      [](const auto& a, const auto& b) {
        return a.first.ok && b.first.ok && a.second.ok && b.second.ok &&
               a.first.makespan == b.first.makespan &&
               a.second.makespan == b.second.makespan &&
               a.first.trace.deliveries() == b.first.trace.deliveries() &&
               a.second.trace.deliveries() == b.second.trace.deliveries();
      }));

  const PostalParams machine_params(std::uint64_t{1} << 14, lambda);
  sections.push_back(measure(
      "machine", "machine bcast n=2^14",
      [&](TimePath path) { return run_machine(machine_params, path, nullptr); },
      machine_results_equal));

  const PostalParams faulted_params(std::uint64_t{1} << 12, lambda);
  RandomFaultOptions fopts;
  fopts.crashes = 3;
  fopts.lossy_links = 8;
  fopts.loss_p = Rational(1, 4);
  fopts.spikes = 2;
  const FaultPlan plan = random_fault_plan(faulted_params, /*seed=*/42, fopts);
  sections.push_back(measure(
      "machine_faulted", "machine bcast n=2^12 + faults",
      [&](TimePath path) { return run_machine(faulted_params, path, &plan); },
      machine_results_equal));

  // The sweep engine end to end: cold caches, one thread, DP cross-check
  // on -- the configuration whose wall time the tick domain targets.
  const std::vector<Rational> sweep_lambdas = {Rational(1), Rational(3, 2),
                                               Rational(5, 2), Rational(4)};
  const std::vector<std::uint64_t> sweep_ns = {64, 128, 256, 512, 1024, 2048};
  sections.push_back(measure(
      "sweep", "sweep 4 lambdas x 6 ns",
      [&](TimePath path) {
        par::GenFibCache fib_cache;
        par::ScheduleCache sched_cache;
        par::SweepOptions opts;
        opts.threads = 1;
        opts.genfib_cache = &fib_cache;
        opts.schedule_cache = &sched_cache;
        opts.time_path = path;
        return par::sweep_grid(sweep_ns, sweep_lambdas, opts);
      },
      [](const auto& a, const auto& b) {
        return par::sweep_results_equal_ignoring_wall(a, b);
      }));

  bool all_ok = true;
  double best_speedup = 0.0;
  std::string best_section;
  TextTable table({"section", "rational ms", "tick ms", "speedup", "identical"});
  for (const Section& s : sections) {
    const double speedup = s.tick_ms > 0.0 ? s.rational_ms / s.tick_ms : 0.0;
    table.add_row({s.name, fmt(s.rational_ms, 1), fmt(s.tick_ms, 1),
                   fmt(speedup, 2) + "x", s.consistent ? "yes" : "NO"});
    all_ok = all_ok && s.consistent;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_section = s.name;
    }
  }
  table.print(std::cout);

  std::cout << "\nbest speedup: " << fmt(best_speedup, 2) << "x (" << best_section
            << ")\nE22 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH")
            << "  (correctness-gated; speedups recorded, machine-dependent)\n";

  obs::BenchRecord rec;
  rec.bench = "bench_tick_domain";
  rec.n = dp_n;
  rec.lambda = lambda;
  rec.makespan = GenFib(lambda).f(dp_n);
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "CONSISTENT" : "MISMATCH";
  for (const Section& s : sections) {
    rec.extra.emplace_back(s.slug + "_rational_ms", fmt(s.rational_ms, 2));
    rec.extra.emplace_back(s.slug + "_tick_ms", fmt(s.tick_ms, 2));
    rec.extra.emplace_back(
        s.slug + "_speedup",
        fmt(s.tick_ms > 0.0 ? s.rational_ms / s.tick_ms : 0.0, 2));
  }
  rec.extra.emplace_back("best_speedup", fmt(best_speedup, 2));
  rec.extra.emplace_back("best_section", best_section);
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
