// E1 -- Figure 1 of the paper: the generalized Fibonacci broadcast tree for
// a message-passing system with n = 14 processors and communication latency
// lambda = 5/2. The paper's figure shows completion at t = 7.5 with p_0's
// first send going to p_9.
//
// This bench regenerates the tree, prints per-node inform times, validates
// the schedule against every postal-model constraint, and cross-checks the
// completion time against f_lambda(n).
#include <iostream>

#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sched/gantt.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;

  const PostalParams params(14, Rational(5, 2));
  GenFib fib(params.lambda());

  std::cout << "=== E1: Figure 1 -- generalized Fibonacci broadcast tree ===\n";
  std::cout << "MPS(n=14, lambda=5/2)\n\n";

  const Schedule schedule = bcast_schedule(params, fib);
  const BroadcastTree tree = BroadcastTree::from_schedule(schedule, params.n());
  std::cout << tree.render(params.lambda()) << "\n";

  const SimReport report = validate_schedule(schedule, params);
  std::cout << "model validation      : " << (report.ok ? "PASS" : report.summary())
            << "\n";
  std::cout << "simulated completion  : t = " << report.makespan
            << "  (paper: 7 1/2)\n";
  std::cout << "f_lambda(n) prediction: t = " << fib.f(params.n()) << "\n";
  std::cout << "root's first target   : p" << tree.children(0).front()
            << "  (paper: p9)\n\n";

  TextTable table({"processor", "informed at t", "depth", "children"});
  const auto informed = tree.inform_times(params.lambda());
  const auto depth = tree.depths();
  for (ProcId p = 0; p < params.n(); ++p) {
    std::string kids;
    for (const ProcId c : tree.children(p)) {
      if (!kids.empty()) kids += ",";
      kids += "p" + std::to_string(c);
    }
    table.add_row({"p" + std::to_string(p), informed[p].str(),
                   std::to_string(depth[p]), kids.empty() ? "-" : kids});
  }
  table.print(std::cout);

  std::cout << "\nport occupancy timeline (S = sending, R = receiving):\n"
            << render_gantt(schedule, params);

  const bool shape_ok = report.ok && report.makespan == Rational(15, 2) &&
                        tree.children(0).front() == 9;
  std::cout << "\nE1 verdict: " << (shape_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  obs::emit_bench_record({"bench_fig1_tree", params.n(), params.lambda(), 1,
                          report.makespan, wall.elapsed_ms(),
                          shape_ok ? "MATCHES PAPER" : "MISMATCH",
                          /*threads_hw=*/0, {{"figure", "1"}}});
  return shape_ok ? 0 : 1;
}
