// E10 -- Section 2/3 model anchors and Section 4.1 lower bounds:
//   * lambda = 1 degenerates to the telephone model: f_1(n) = ceil(log2 n)
//     and the optimal tree is the binomial tree;
//   * Lemma 8 / Corollary 9 dominance audit over every algorithm;
//   * the simultaneous-I/O and latency-window semantics (spot-checked via
//     deliberately broken schedules the validator must reject).
#include <iostream>

#include "model/bounds.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E10: model sanity -- telephone degeneration & lower bounds ===\n\n";
  bool all_ok = true;

  std::cout << "--- lambda = 1: telephone model (binomial broadcast) ---\n";
  TextTable t1({"n", "f_1(n)", "ceil(log2 n)", "binomial tree", "match"});
  GenFib fib1(Rational(1));
  for (std::uint64_t n : {2ULL, 3ULL, 7ULL, 16ULL, 100ULL, 1000ULL, 4096ULL}) {
    std::int64_t clog = 0;
    for (std::uint64_t reach = 1; reach < n; reach *= 2) ++clog;
    const BroadcastTree binomial = BroadcastTree::binomial(n);
    const Rational tree_time = binomial.completion_time(Rational(1));
    const bool ok = fib1.f(n) == Rational(clog) && tree_time == Rational(clog);
    all_ok = all_ok && ok;
    t1.add_row({std::to_string(n), fib1.f(n).str(), std::to_string(clog),
                tree_time.str(), ok ? "yes" : "NO"});
  }
  t1.print(std::cout);

  std::cout << "\n--- Lemma 8 / Corollary 9 dominance audit ---\n";
  TextTable t2({"lambda", "n", "m", "min over algos", "Lemma 8", "Cor 9(1)",
                "Cor 9(2)"});
  for (const Rational lambda : {Rational(3, 2), Rational(3), Rational(6)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 64ULL, 512ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 8ULL, 64ULL}) {
        Rational best;
        bool first = true;
        for (const MultiAlgo algo : all_multi_algos()) {
          const Rational t = predict_multi(algo, params, m);
          if (first || t < best) best = t;
          first = false;
        }
        const Rational l8 = lemma8_lower(fib, n, m);
        const double c91 = cor9_lower_log(lambda, n, m);
        const Rational c92 = cor9_lower_latency(lambda, m);
        const bool ok =
            best >= l8 && best.to_double() >= c91 - 1e-9 && best >= c92;
        all_ok = all_ok && ok;
        t2.add_row({lambda.str(), std::to_string(n), std::to_string(m),
                    best.str() + (ok ? "" : " (!)"), l8.str(), fmt(c91, 2),
                    c92.str()});
      }
    }
  }
  t2.print(std::cout);

  std::cout << "\n--- model semantics: the validator rejects broken schedules ---\n";
  const PostalParams params(3, Rational(5, 2));
  struct Broken {
    const char* what;
    Schedule schedule;
  };
  std::vector<Broken> broken(3);
  broken[0].what = "two simultaneous sends from one processor";
  broken[0].schedule.add(0, 1, 0, Rational(0));
  broken[0].schedule.add(0, 2, 0, Rational(1, 2));
  broken[1].what = "two overlapping receives at one processor";
  broken[1].schedule.add(0, 2, 0, Rational(0));
  broken[1].schedule.add(1, 2, 0, Rational(1, 4));
  broken[2].what = "forwarding before the message has arrived";
  broken[2].schedule.add(0, 1, 0, Rational(0));
  broken[2].schedule.add(1, 2, 0, Rational(2));
  for (auto& b : broken) {
    ValidatorOptions options;
    options.require_coverage = false;
    options.messages = 1;
    // Give p1 nothing up front: only p0 originates.
    const SimReport report = validate_schedule(b.schedule, params, options);
    std::cout << "  " << b.what << ": "
              << (report.ok ? "accepted (UNEXPECTED)" : "rejected") << "\n";
    all_ok = all_ok && !report.ok;
  }

  std::cout << "\nE10 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
