// E26 (engineering) -- the coordination layer under leader failure
// (docs/COORDINATION.md).
//
// For a grid of machine sizes, crash the incumbent coordinator and
// measure, in exact model time:
//
//   * election latency -- from the leader's crash to the last live rank
//     adopting the deterministic successor (bully election,
//     lambda-scaled heartbeat watchdogs);
//   * view-change recovery -- the extra decision latency consensus pays
//     when the view-0 leader crashes at t = 0, versus the fault-free
//     baseline of the same resolved options.
//
// Both are reported as exact multiples of lambda (the postal latency is
// the natural unit of every timeout in the layer), which is what the
// trajectory baseline tracks: the multiples are a pure function of
// (n, lambda, plan), so any drift is an algorithmic change, never noise.
//
// The verdict is *correctness-gated*; wall times are recorded but never
// gate. Every point must pass:
//
//   * the crash-aware machine validation AND the coordination validator
//     (agreement / validity / integrity / legitimacy) on every run;
//   * settled runs (disturbances bounded inside the derived horizon);
//   * fault-free identity: with no plan, the election keeps the initial
//     leader with zero latency and consensus decides the leader's value
//     in view 0 with zero recovery;
//   * thread invariance: a threads=4 sharded run produces byte-identical
//     events, beliefs/decisions, and counters.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "coord/consensus.hpp"
#include "coord/election.hpp"
#include "faults/fault_plan.hpp"
#include "obs/bench_record.hpp"
#include "obs/instrument.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct Point {
  std::uint64_t n = 0;
  Rational lambda;
  // Results.
  Rational elect_latency;      ///< crash -> last live adoption
  Rational elect_over_lambda;  ///< elect_latency / lambda
  Rational recovery;           ///< consensus decision latency - baseline
  Rational recovery_over_lambda;
  double wall_ms = 0.0;
  bool gates_ok = false;
  std::string failure;  ///< first failed gate, for the table
};

/// Every judged clause of one coordination run, as a single gate.
template <typename Report>
bool judged_ok(const Report& report) {
  return report.validation.ok && report.check.ok && report.settled;
}

void run_point(Point& p) {
  const PostalParams params(p.n, p.lambda);
  const obs::WallClock clock;

  // Fault-free identity gates.
  const coord::ElectionReport quiet = coord::run_election(params);
  if (!judged_ok(quiet) || quiet.leader != 0 ||
      quiet.election_latency != Rational(0)) {
    p.failure = "fault-free election";
    return;
  }
  const coord::ConsensusReport agree = coord::run_consensus(params);
  if (!judged_ok(agree) || agree.recovery_time != Rational(0)) {
    p.failure = "fault-free consensus";
    return;
  }

  // Leader-crash election: kill p0 mid-run (after two heartbeat periods,
  // so the cluster is in steady state when the watchdogs take over).
  FaultPlan crash;
  crash.crashes.push_back(
      CrashFault{0, quiet.options.heartbeat_period * Rational(2)});
  const coord::ElectionReport elect = coord::run_election(params, &crash);
  if (!judged_ok(elect) || elect.leader != p.n - 1) {
    p.failure = "crash election";
    return;
  }
  p.elect_latency = elect.election_latency;
  p.elect_over_lambda = elect.election_latency / p.lambda;

  // View-change consensus: the view-0 leader is dead on arrival, so every
  // decision pays at least one full view of recovery.
  FaultPlan doa;
  doa.crashes.push_back(CrashFault{0, Rational(0)});
  const coord::ConsensusReport cons = coord::run_consensus(params, &doa);
  if (!judged_ok(cons)) {
    p.failure = "crash consensus";
    return;
  }
  p.recovery = cons.recovery_time;
  p.recovery_over_lambda = cons.recovery_time / p.lambda;

  // Thread invariance: the sharded engine must reproduce both runs byte
  // for byte.
  coord::ElectionOptions eopts;
  eopts.threads = 4;
  const coord::ElectionReport elect4 = coord::run_election(params, &crash, eopts);
  if (elect4.events != elect.events || elect4.beliefs != elect.beliefs ||
      elect4.counters != elect.counters || elect4.leader != elect.leader) {
    p.failure = "election threads=4 drift";
    return;
  }
  coord::ConsensusOptions copts;
  copts.threads = 4;
  const coord::ConsensusReport cons4 = coord::run_consensus(params, &doa, copts);
  if (cons4.events != cons.events || cons4.decisions != cons.decisions ||
      cons4.counters != cons.counters) {
    p.failure = "consensus threads=4 drift";
    return;
  }

  p.wall_ms = clock.elapsed_ms();
  p.gates_ok = true;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E26: coordination under leader failure ===\n\n";

  std::vector<Point> points;
  for (const std::uint64_t n : {8ULL, 16ULL, 32ULL, 64ULL}) {
    Point p;
    p.n = n;
    p.lambda = Rational(5, 2);
    points.push_back(p);
  }
  Point integer_lambda;
  integer_lambda.n = 48;
  integer_lambda.lambda = Rational(2);
  points.push_back(integer_lambda);

  bool all_ok = true;
  TextTable table({"n", "lambda", "elect latency", "elect/lambda", "recovery",
                   "recovery/lambda", "gates"});
  for (Point& p : points) {
    run_point(p);
    table.add_row({std::to_string(p.n), p.lambda.str(), p.elect_latency.str(),
                   p.elect_over_lambda.str(), p.recovery.str(),
                   p.recovery_over_lambda.str(),
                   p.gates_ok ? "pass" : "FAIL: " + p.failure});
    all_ok = all_ok && p.gates_ok;
  }
  table.print(std::cout);
  std::cout << "\nE26 verdict: " << (all_ok ? "CERTIFIED" : "MISMATCH")
            << "  (validator + settle + fault-free-identity + "
               "thread-invariance gated; wall times recorded, "
               "machine-dependent)\n";

  const Point& head = points.back();
  obs::BenchRecord rec;
  rec.bench = "bench_coord";
  rec.n = head.n;
  rec.lambda = head.lambda;
  rec.makespan = head.elect_latency;
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "CERTIFIED" : "MISMATCH";
  for (const Point& p : points) {
    const std::string slug =
        "n" + std::to_string(p.n) + "_l" + p.lambda.str();
    rec.extra.emplace_back(slug + "_elect_latency", p.elect_latency.str());
    rec.extra.emplace_back(slug + "_elect_over_lambda",
                           p.elect_over_lambda.str());
    rec.extra.emplace_back(slug + "_recovery", p.recovery.str());
    rec.extra.emplace_back(slug + "_recovery_over_lambda",
                           p.recovery_over_lambda.str());
    rec.extra.emplace_back(slug + "_wall_ms", fmt(p.wall_ms, 2));
  }
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
