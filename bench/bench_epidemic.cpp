// E16 (extension) -- the price of obliviousness: randomized epidemic
// broadcast vs the optimal generalized Fibonacci tree.
//
// The epidemic needs no coordination at all (every informed processor
// fires at a random target each unit). This bench measures the actual gap
// to the coordinated optimum and the duplicate-delivery overhead across
// (n, lambda).
#include <iostream>

#include "adaptive/epidemic.hpp"
#include "model/genfib.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E16 (extension): epidemic broadcast vs Theorem 6 ===\n\n";
  bool all_ok = true;

  TextTable table({"lambda", "n", "optimal f(n)", "epidemic mean", "epidemic worst",
                   "mean/optimal", "dup/proc"});
  const std::uint64_t trials = 20;
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {16ULL, 128ULL, 1024ULL}) {
      const PostalParams params(n, lambda);
      const EpidemicStats stats = epidemic_stats(params, trials, /*seed=*/1000);
      const Rational optimal = fib.f(n);
      const double ratio = stats.mean_completion.to_double() / optimal.to_double();
      all_ok = all_ok && stats.mean_completion >= optimal;
      table.add_row({lambda.str(), std::to_string(n), optimal.str(),
                     fmt(stats.mean_completion.to_double(), 2),
                     stats.worst_completion.str(), fmt(ratio, 2),
                     fmt(stats.mean_duplicates_per_proc, 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks: the epidemic never beats Theorem 6. The gap is "
               "largest in the telephone regime (~1.85x at lambda = 1, the "
               "classical rumor-spreading constant) and narrows toward ~1.3x as "
               "lambda grows -- once latency dominates, random targeting wastes "
               "proportionally less -- while duplicate deliveries grow like "
               "ln n per processor, the real price of zero coordination.\n";
  std::cout << "E16 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
