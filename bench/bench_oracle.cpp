// E23 (engineering) -- the implicit schedule oracle at sizes the
// materialized path cannot touch (docs/ORACLE.md).
//
// Three measured sections:
//   differential   oracle events vs. the materialized sched::bcast schedule,
//                  event-for-event, on a grid the old path can hold -- the
//                  gate that licenses trusting the closed forms beyond it;
//   certificates   n in {10^6, 10^9, 10^12} x lambda in {1, 5/2, 4}: the
//                  witness rank's inform time must equal f_lambda(n)
//                  (Theorem 6, checked without materializing anything), and
//                  the streaming validator must accept oracle-emitted
//                  chunks from the head, the tail, and a seeded random
//                  middle of the rank range -- O(chunk) memory at n = 10^12;
//   throughput     per-rank info() queries/sec and streamed events/sec at
//                  n = 10^12, recorded in the bench record's extra fields.
//
// The verdict is correctness-gated on the first two sections; throughput is
// recorded but machine-dependent and deliberately does not gate. With
// POSTAL_BENCH_JSON set, one "bench_oracle" record is appended
// (bench/trajectory/E23_oracle.json keeps the committed baseline).
#include <cstdint>
#include <iostream>
#include <vector>

#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "oracle/oracle.hpp"
#include "sched/bcast.hpp"
#include "sim/stream_validator.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

bool differential_section() {
  std::cout << "--- differential: oracle == materialized BCAST ---\n";
  bool ok = true;
  std::uint64_t events = 0;
  const obs::WallClock clock;
  for (const Rational& lambda :
       {Rational(1), Rational(3, 2), Rational(5, 2), Rational(4)}) {
    for (const std::uint64_t n : {2ull, 14ull, 100ull, 1000ull, 4096ull}) {
      const oracle::ScheduleOracle oracle(n, lambda);
      const Schedule schedule = bcast_schedule(PostalParams(n, lambda));
      std::vector<StreamEvent> expect;
      expect.reserve(schedule.size());
      for (const SendEvent& e : schedule.events()) {
        expect.push_back({e.src, e.dst, e.t});
      }
      std::sort(expect.begin(), expect.end(),
                [](const StreamEvent& a, const StreamEvent& b) {
                  return a.dst < b.dst;
                });
      const std::vector<StreamEvent> got = oracle.events(0, n);
      ok = ok && got == expect;
      events += got.size();
    }
  }
  std::cout << "compared " << events << " events across 20 grid points in "
            << fmt(clock.elapsed_ms(), 1) << " ms: "
            << (ok ? "identical" : "MISMATCH") << "\n\n";
  return ok;
}

bool certificate_section(std::uint64_t chunk, double* wall_ms_out) {
  std::cout << "--- certificates: witness + streamed chunks at huge n ---\n";
  TextTable table({"n", "lambda", "f_lambda(n)", "witness rank", "chunks", "ok"});
  bool all_ok = true;
  const obs::WallClock clock;
  Xoshiro256 rng(20260805);
  for (const std::uint64_t n : {1000000ull, 1000000000ull, 1000000000000ull}) {
    for (const Rational& lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
      const oracle::ScheduleOracle oracle(n, lambda);
      GenFib fib(lambda);
      bool ok = oracle.makespan() == fib.f(n);

      // Theorem 6 without a schedule: the last-informed witness.
      const oracle::Rank witness = oracle.last_informed_rank();
      ok = ok && oracle.inform_time(witness) == oracle.makespan();

      // Streamed chunks: head, tail, seeded random middle.
      std::uint64_t chunks_ok = 0;
      const std::uint64_t mid_lo =
          n > 2 * chunk ? rng.uniform(chunk, n - chunk) : 0;
      const std::uint64_t ranges[3][2] = {
          {0, chunk < n ? chunk : n},
          {n > chunk ? n - chunk : 0, n},
          {mid_lo, mid_lo + chunk < n ? mid_lo + chunk : n}};
      for (const auto& range : ranges) {
        StreamingValidator validator(oracle, range[0], range[1]);
        validator.feed(oracle.events(range[0], range[1]));
        if (validator.finish().ok) ++chunks_ok;
      }
      ok = ok && chunks_ok == 3;
      all_ok = all_ok && ok;
      table.add_row({std::to_string(n), lambda.str(), oracle.makespan().str(),
                     std::to_string(witness), std::to_string(chunks_ok) + "/3",
                     ok ? "yes" : "NO"});
    }
  }
  *wall_ms_out = clock.elapsed_ms();
  table.print(std::cout);
  std::cout << "certified 9 (n, lambda) points in " << fmt(*wall_ms_out, 1)
            << " ms\n\n";
  return all_ok;
}

void throughput_section(std::uint64_t queries, std::uint64_t stream_chunk,
                        double* qps_out, double* eps_out) {
  std::cout << "--- throughput at n = 10^12, lambda = 5/2 ---\n";
  const std::uint64_t n = 1000000000000ull;
  const oracle::ScheduleOracle oracle(n, Rational(5, 2));
  Xoshiro256 rng(42);

  // Warm the shared split cache once so the measurement reflects the
  // steady state a query server would run in.
  (void)oracle.info(n - 1);

  const obs::WallClock query_clock;
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const oracle::RankInfo info = oracle.info(rng.uniform(0, n - 1));
    checksum ^= info.parent + info.depth;
  }
  const double query_ms = query_clock.elapsed_ms();
  *qps_out = static_cast<double>(queries) / (query_ms / 1000.0);

  const std::uint64_t lo = rng.uniform(1, n - stream_chunk);
  const obs::WallClock stream_clock;
  const std::vector<StreamEvent> events = oracle.events(lo, lo + stream_chunk);
  const double stream_ms = stream_clock.elapsed_ms();
  *eps_out = static_cast<double>(events.size()) / (stream_ms / 1000.0);

  std::cout << queries << " random info() queries in " << fmt(query_ms, 1)
            << " ms  (" << fmt(*qps_out, 0) << " queries/sec, checksum "
            << (checksum & 0xff) << ")\n"
            << stream_chunk << " streamed events in " << fmt(stream_ms, 1)
            << " ms  (" << fmt(*eps_out, 0) << " events/sec)\n\n";
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E23: implicit schedule oracle -- O(1)-memory BCAST "
               "queries at n up to 10^12 ===\n\n";

  const bool differential_ok = differential_section();
  double certificate_ms = 0.0;
  const bool certificates_ok = certificate_section(4096, &certificate_ms);
  double qps = 0.0;
  double eps = 0.0;
  throughput_section(20000, 65536, &qps, &eps);

  const bool all_ok = differential_ok && certificates_ok;
  std::cout << "E23 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH")
            << "  (correctness-gated; throughput recorded, "
               "machine-dependent)\n";

  const std::uint64_t n = 1000000000000ull;
  const oracle::ScheduleOracle oracle(n, Rational(5, 2));
  obs::BenchRecord rec;
  rec.bench = "bench_oracle";
  rec.n = n;
  rec.lambda = Rational(5, 2);
  rec.makespan = oracle.makespan();
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "CONSISTENT" : "MISMATCH";
  rec.extra = {{"differential", differential_ok ? "identical" : "MISMATCH"},
               {"certificate_ms", fmt(certificate_ms, 2)},
               {"queries_per_sec", fmt(qps, 0)},
               {"events_per_sec", fmt(eps, 0)},
               {"chunk", "4096"}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
