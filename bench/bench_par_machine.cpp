// E24 (engineering) -- the sharded ParMachine vs. the sequential Machine
// (docs/SIMULATION.md).
//
// Every measured section runs one workload on the sequential reference and
// on the sharded engine at several lane counts, and the verdict is
// *correctness-based*: each sharded run must be byte-identical to the
// reference -- same Schedule, same Trace deliveries in the same order,
// same stats, same fault timeline. That is the determinism contract the
// lambda-barrier merge-replay exists to provide, checked here at bench
// scale (a 10^6-rank BCAST) on top of the randomized corpus in
// tests/paper/par_differential_test.cpp. Sections:
//
//   bcast_1m            BcastProtocol at n = 10^6, lanes 1 / 2 / 4;
//   bcast_1m_t4_ctr     the same at lanes 4 with TraceMode::kCounters
//                       (delivery list elided; schedule/stats/makespan/
//                       first arrivals still checked against the
//                       reference exactly);
//   faulted_64k         BcastProtocol at n = 2^16 under a crash+loss+
//                       spike plan, lanes 4 (the chaos shape, sharded).
//
// Wall times and speedups land in the bench record's extra fields but do
// not gate the verdict *here*: they are machine-dependent, and on a
// single-core box the lanes time-slice one CPU, so the sharded engine
// pays its barrier overhead with no parallel speedup to show for it. The
// speedup guard lives in scripts/compare_trajectory.py, keyed off the
// record's threads_hw so it only hard-fails on runners with >= 4
// hardware threads. The window/merge/flush wall split is recorded per
// section: merge_ms is the sequential barrier residue (slot assignment),
// flush_ms the parallel mailbox merge -- together they bound the speedup
// a multi-core box can reach (docs/PERFORMANCE.md).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct Section {
  std::string slug;   ///< stable bench-record key prefix, e.g. "bcast_1m_t2"
  std::string name;
  unsigned threads = 1;
  TraceMode mode = TraceMode::kFull;
  double seq_ms = 0.0;
  double par_ms = 0.0;
  double window_ms = 0.0;
  double merge_ms = 0.0;
  double flush_ms = 0.0;
  std::uint64_t windows = 0;
  std::uint32_t shards = 0;
  std::uint64_t arena_growths = 0;
  std::uint64_t flush_fallback_sorts = 0;
  bool identical = false;
};

bool results_identical(const MachineResult& a, const MachineResult& b) {
  return a.schedule.events() == b.schedule.events() &&
         a.trace.deliveries() == b.trace.deliveries() &&
         a.stats.events_processed == b.stats.events_processed &&
         a.stats.sends_enqueued == b.stats.sends_enqueued &&
         a.stats.max_fifo_depth == b.stats.max_fifo_depth &&
         a.stats.port_busy == b.stats.port_busy &&
         a.faults.events == b.faults.events;
}

/// kCounters equivalence: everything except the (elided) delivery list,
/// which is replaced by its exact summary -- count, makespan, and every
/// per-(rank, message) first arrival.
bool results_identical_counters(const MachineResult& counters,
                                const MachineResult& reference) {
  if (!(counters.schedule.events() == reference.schedule.events() &&
        counters.stats.events_processed == reference.stats.events_processed &&
        counters.stats.sends_enqueued == reference.stats.sends_enqueued &&
        counters.stats.max_fifo_depth == reference.stats.max_fifo_depth &&
        counters.stats.port_busy == reference.stats.port_busy &&
        counters.faults.events == reference.faults.events)) {
    return false;
  }
  if (!counters.trace.deliveries().empty()) return false;
  if (counters.trace.delivery_count() != reference.trace.deliveries().size()) {
    return false;
  }
  if (!(counters.trace.makespan() == reference.trace.makespan())) return false;
  for (ProcId p = 0; p < reference.trace.n(); ++p) {
    if (counters.trace.arrival(p, 0) != reference.trace.arrival(p, 0)) {
      return false;
    }
  }
  return true;
}

MachineResult run_sequential(const PostalParams& params, const FaultPlan* plan,
                             double& ms) {
  Machine machine(params, /*messages=*/1);
  if (plan != nullptr) machine.attach_faults(*plan);
  BcastProtocol protocol(params);
  const obs::WallClock clock;
  MachineResult result = machine.run(protocol);
  ms = clock.elapsed_ms();
  return result;
}

Section run_sharded(const std::string& slug, const std::string& name,
                    const PostalParams& params, const FaultPlan* plan,
                    unsigned threads, TraceMode mode,
                    const MachineResult& reference, double seq_ms) {
  Section s;
  s.slug = slug;
  s.name = name;
  s.threads = threads;
  s.mode = mode;
  s.seq_ms = seq_ms;
  ParMachine machine(params, /*messages=*/1);
  machine.set_threads(threads);
  machine.set_trace_mode(mode);
  if (plan != nullptr) machine.attach_faults(*plan);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const obs::WallClock clock;
  const MachineResult result = machine.run(factory);
  s.par_ms = clock.elapsed_ms();
  const ParRunInfo& info = machine.last_run_info();
  s.window_ms = info.window_ms;
  s.merge_ms = info.merge_ms;
  s.flush_ms = info.flush_ms;
  s.windows = info.windows;
  s.shards = info.shards;
  s.arena_growths = info.arena_growths;
  s.flush_fallback_sorts = info.flush_fallback_sorts;
  s.identical = info.parallel_engine &&
                (mode == TraceMode::kFull
                     ? results_identical(result, reference)
                     : results_identical_counters(result, reference));
  return s;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E24: sharded ParMachine vs. sequential Machine ===\n\n";

  std::vector<Section> sections;

  const std::uint64_t big_n = 1'000'000;
  const Rational lambda(5, 2);
  const PostalParams big(big_n, lambda);
  double big_seq_ms = 0.0;
  const MachineResult big_ref = run_sequential(big, nullptr, big_seq_ms);
  for (const unsigned threads : {1u, 2u, 4u}) {
    sections.push_back(run_sharded(
        "bcast_1m_t" + std::to_string(threads),
        "bcast n=10^6 lanes=" + std::to_string(threads), big, nullptr, threads,
        TraceMode::kFull, big_ref, big_seq_ms));
  }
  sections.push_back(run_sharded("bcast_1m_t4_ctr",
                                 "bcast n=10^6 lanes=4 counters", big, nullptr,
                                 4, TraceMode::kCounters, big_ref, big_seq_ms));

  const PostalParams faulted(std::uint64_t{1} << 16, Rational(2));
  RandomFaultOptions fopts;
  fopts.crashes = 5;
  fopts.lossy_links = 16;
  fopts.loss_p = Rational(1, 4);
  fopts.spikes = 2;
  const FaultPlan plan = random_fault_plan(faulted, /*seed=*/24, fopts);
  double faulted_seq_ms = 0.0;
  const MachineResult faulted_ref = run_sequential(faulted, &plan, faulted_seq_ms);
  sections.push_back(run_sharded("faulted_64k_t4",
                                 "bcast n=2^16 + faults lanes=4", faulted,
                                 &plan, 4, TraceMode::kFull, faulted_ref,
                                 faulted_seq_ms));

  bool all_identical = true;
  TextTable table({"section", "seq ms", "par ms", "speedup",
                   "window/merge/flush ms", "windows", "identical"});
  for (const Section& s : sections) {
    const double speedup = s.par_ms > 0.0 ? s.seq_ms / s.par_ms : 0.0;
    table.add_row({s.name, fmt(s.seq_ms, 1), fmt(s.par_ms, 1),
                   fmt(speedup, 2) + "x",
                   fmt(s.window_ms, 1) + " / " + fmt(s.merge_ms, 1) + " / " +
                       fmt(s.flush_ms, 1),
                   std::to_string(s.windows), s.identical ? "yes" : "NO"});
    all_identical = all_identical && s.identical;
  }
  table.print(std::cout);

  std::cout << "\nE24 verdict: " << (all_identical ? "CONSISTENT" : "MISMATCH")
            << "  (byte-identity-gated; wall times recorded, machine- and "
               "core-count-dependent)\n";

  obs::BenchRecord rec;
  rec.bench = "bench_par_machine";
  rec.n = big_n;
  rec.lambda = lambda;
  rec.makespan = GenFib(lambda).f(big_n);
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_identical ? "CONSISTENT" : "MISMATCH";
  for (const Section& s : sections) {
    rec.extra.emplace_back(s.slug + "_seq_ms", fmt(s.seq_ms, 2));
    rec.extra.emplace_back(s.slug + "_par_ms", fmt(s.par_ms, 2));
    rec.extra.emplace_back(
        s.slug + "_speedup",
        fmt(s.par_ms > 0.0 ? s.seq_ms / s.par_ms : 0.0, 2));
    rec.extra.emplace_back(s.slug + "_window_ms", fmt(s.window_ms, 2));
    rec.extra.emplace_back(s.slug + "_merge_ms", fmt(s.merge_ms, 2));
    rec.extra.emplace_back(s.slug + "_flush_ms", fmt(s.flush_ms, 2));
    rec.extra.emplace_back(s.slug + "_windows", std::to_string(s.windows));
    rec.extra.emplace_back(s.slug + "_shards", std::to_string(s.shards));
    rec.extra.emplace_back(s.slug + "_threads", std::to_string(s.threads));
    rec.extra.emplace_back(s.slug + "_arena_growths",
                           std::to_string(s.arena_growths));
    rec.extra.emplace_back(s.slug + "_flush_fallback_sorts",
                           std::to_string(s.flush_fallback_sorts));
    rec.extra.emplace_back(
        s.slug + "_trace_mode",
        s.mode == TraceMode::kCounters ? "counters" : "full");
  }
  obs::emit_bench_record(rec);
  return all_identical ? 0 : 1;
}
