// E24 (engineering) -- the sharded ParMachine vs. the sequential Machine
// (docs/SIMULATION.md).
//
// Every measured section runs one workload on the sequential reference and
// on the sharded engine at several lane counts, and the verdict is
// *correctness-based*: each sharded run must be byte-identical to the
// reference -- same Schedule, same Trace deliveries in the same order,
// same stats, same fault timeline. That is the determinism contract the
// lambda-barrier merge-replay exists to provide, checked here at bench
// scale (a 10^6-rank BCAST) on top of the randomized corpus in
// tests/paper/par_differential_test.cpp. Sections:
//
//   bcast_1m     BcastProtocol at n = 10^6, lanes 1 / 2 / 4;
//   faulted_64k  BcastProtocol at n = 2^16 under a crash+loss+spike plan,
//                lanes 4 (the chaos shape, sharded).
//
// Wall times and speedups land in the bench record's extra fields but
// deliberately do not gate the verdict: they are machine-dependent, and on
// a single-core box (like the one that committed the trajectory baseline)
// the lanes time-slice one CPU, so the sharded engine pays its barrier
// overhead with no parallel speedup to show for it. The numbers are still
// recorded honestly -- the point of the trajectory entry is the barrier
// overhead itself (merge_ms vs window_ms), which bounds the speedup a
// multi-core box can reach.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct Section {
  std::string slug;   ///< stable bench-record key prefix, e.g. "bcast_1m_t2"
  std::string name;
  unsigned threads = 1;
  double seq_ms = 0.0;
  double par_ms = 0.0;
  double window_ms = 0.0;
  double merge_ms = 0.0;
  std::uint64_t windows = 0;
  std::uint32_t shards = 0;
  bool identical = false;
};

bool results_identical(const MachineResult& a, const MachineResult& b) {
  return a.schedule.events() == b.schedule.events() &&
         a.trace.deliveries() == b.trace.deliveries() &&
         a.stats.events_processed == b.stats.events_processed &&
         a.stats.sends_enqueued == b.stats.sends_enqueued &&
         a.stats.max_fifo_depth == b.stats.max_fifo_depth &&
         a.stats.port_busy == b.stats.port_busy &&
         a.faults.events == b.faults.events;
}

MachineResult run_sequential(const PostalParams& params, const FaultPlan* plan,
                             double& ms) {
  Machine machine(params, /*messages=*/1);
  if (plan != nullptr) machine.attach_faults(*plan);
  BcastProtocol protocol(params);
  const obs::WallClock clock;
  MachineResult result = machine.run(protocol);
  ms = clock.elapsed_ms();
  return result;
}

Section run_sharded(const std::string& slug, const std::string& name,
                    const PostalParams& params, const FaultPlan* plan,
                    unsigned threads, const MachineResult& reference,
                    double seq_ms) {
  Section s;
  s.slug = slug;
  s.name = name;
  s.threads = threads;
  s.seq_ms = seq_ms;
  ParMachine machine(params, /*messages=*/1);
  machine.set_threads(threads);
  if (plan != nullptr) machine.attach_faults(*plan);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  const obs::WallClock clock;
  const MachineResult result = machine.run(factory);
  s.par_ms = clock.elapsed_ms();
  const ParRunInfo& info = machine.last_run_info();
  s.window_ms = info.window_ms;
  s.merge_ms = info.merge_ms;
  s.windows = info.windows;
  s.shards = info.shards;
  s.identical = info.parallel_engine && results_identical(result, reference);
  return s;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E24: sharded ParMachine vs. sequential Machine ===\n\n";

  std::vector<Section> sections;

  const std::uint64_t big_n = 1'000'000;
  const Rational lambda(5, 2);
  const PostalParams big(big_n, lambda);
  double big_seq_ms = 0.0;
  const MachineResult big_ref = run_sequential(big, nullptr, big_seq_ms);
  for (const unsigned threads : {1u, 2u, 4u}) {
    sections.push_back(run_sharded(
        "bcast_1m_t" + std::to_string(threads),
        "bcast n=10^6 lanes=" + std::to_string(threads), big, nullptr, threads,
        big_ref, big_seq_ms));
  }

  const PostalParams faulted(std::uint64_t{1} << 16, Rational(2));
  RandomFaultOptions fopts;
  fopts.crashes = 5;
  fopts.lossy_links = 16;
  fopts.loss_p = Rational(1, 4);
  fopts.spikes = 2;
  const FaultPlan plan = random_fault_plan(faulted, /*seed=*/24, fopts);
  double faulted_seq_ms = 0.0;
  const MachineResult faulted_ref = run_sequential(faulted, &plan, faulted_seq_ms);
  sections.push_back(run_sharded("faulted_64k_t4",
                                 "bcast n=2^16 + faults lanes=4", faulted,
                                 &plan, 4, faulted_ref, faulted_seq_ms));

  bool all_identical = true;
  TextTable table({"section", "seq ms", "par ms", "speedup", "window/merge ms",
                   "windows", "identical"});
  for (const Section& s : sections) {
    const double speedup = s.par_ms > 0.0 ? s.seq_ms / s.par_ms : 0.0;
    table.add_row({s.name, fmt(s.seq_ms, 1), fmt(s.par_ms, 1),
                   fmt(speedup, 2) + "x",
                   fmt(s.window_ms, 1) + " / " + fmt(s.merge_ms, 1),
                   std::to_string(s.windows), s.identical ? "yes" : "NO"});
    all_identical = all_identical && s.identical;
  }
  table.print(std::cout);

  std::cout << "\nE24 verdict: " << (all_identical ? "CONSISTENT" : "MISMATCH")
            << "  (byte-identity-gated; wall times recorded, machine- and "
               "core-count-dependent)\n";

  obs::BenchRecord rec;
  rec.bench = "bench_par_machine";
  rec.n = big_n;
  rec.lambda = lambda;
  rec.makespan = GenFib(lambda).f(big_n);
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_identical ? "CONSISTENT" : "MISMATCH";
  for (const Section& s : sections) {
    rec.extra.emplace_back(s.slug + "_seq_ms", fmt(s.seq_ms, 2));
    rec.extra.emplace_back(s.slug + "_par_ms", fmt(s.par_ms, 2));
    rec.extra.emplace_back(
        s.slug + "_speedup",
        fmt(s.par_ms > 0.0 ? s.seq_ms / s.par_ms : 0.0, 2));
    rec.extra.emplace_back(s.slug + "_window_ms", fmt(s.window_ms, 2));
    rec.extra.emplace_back(s.slug + "_merge_ms", fmt(s.merge_ms, 2));
    rec.extra.emplace_back(s.slug + "_windows", std::to_string(s.windows));
    rec.extra.emplace_back(s.slug + "_shards", std::to_string(s.shards));
  }
  obs::emit_bench_record(rec);
  return all_identical ? 0 : 1;
}
