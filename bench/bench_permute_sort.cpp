// E18 (extension) -- the last two Section 5 "other problems": permuting
// and sorting in the postal model.
//
//  * Permuting / h-relations: Konig edge coloring routes any h-relation in
//    exactly (h-1) + lambda, matching the port lower bound; a permutation
//    (h = 1) costs a single lambda -- permuting is *free* in a fully
//    connected postal system.
//  * Sorting: gossip-sort (allgather + local rank selection) costs
//    (n-2) + lambda; the classic odd-even transposition baseline pays
//    n * lambda -- the postal lens makes the textbook algorithm's latency
//    bill explicit.
#include <iostream>
#include <numeric>

#include "collectives/hrelation.hpp"
#include "collectives/sort.hpp"
#include "sim/validator.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E18 (extension): permuting and sorting (Section 5) ===\n\n";
  bool all_ok = true;

  std::cout << "--- h-relation routing (Konig coloring) ---\n";
  TextTable t1({"lambda", "n", "h", "demands", "measured T", "lower bound",
                "optimal?"});
  Xoshiro256 rng(31415);
  for (const Rational lambda : {Rational(2), Rational(5, 2), Rational(8)}) {
    for (const std::uint64_t n : {8ULL, 32ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t target_h : {1ULL, 4ULL, 16ULL}) {
        // Random demands roughly filling degree target_h.
        std::vector<Demand> demands;
        for (std::uint64_t round = 0; round < target_h; ++round) {
          for (std::uint64_t p = 0; p < n; ++p) {
            auto dst = static_cast<ProcId>(rng.uniform(0, n - 2));
            if (dst >= p) ++dst;
            demands.push_back(Demand{static_cast<ProcId>(p), dst});
          }
        }
        const std::uint64_t h = relation_degree(params, demands);
        const SimReport report = validate_schedule(
            hrelation_schedule(params, demands), params,
            hrelation_goal(params, demands));
        const bool ok =
            report.ok && report.makespan == predict_hrelation(params, demands);
        all_ok = all_ok && ok;
        t1.add_row({lambda.str(), std::to_string(n), std::to_string(h),
                    std::to_string(demands.size()), report.makespan.str(),
                    hrelation_lower_bound(params, demands).str(),
                    ok ? "yes" : "NO"});
      }
    }
  }
  t1.print(std::cout);

  std::cout << "\n--- permutations cost exactly one lambda ---\n";
  for (const Rational lambda : {Rational(2), Rational(8), Rational(64)}) {
    const PostalParams params(64, lambda);
    std::vector<ProcId> pi(64);
    std::iota(pi.begin(), pi.end(), 0u);
    // Deterministic shuffle.
    for (std::size_t i = 63; i > 0; --i) {
      std::swap(pi[i], pi[rng.uniform(0, i)]);
    }
    const auto demands = permutation_demands(params, pi);
    const SimReport report = validate_schedule(hrelation_schedule(params, demands),
                                               params, hrelation_goal(params, demands));
    all_ok = all_ok && report.ok && report.makespan == lambda;
    std::cout << "  lambda = " << lambda << ": permutation routed in t = "
              << report.makespan << "\n";
  }

  std::cout << "\n--- sorting: gossip vs odd-even transposition ---\n";
  TextTable t2({"lambda", "n", "gossip sort", "odd-even", "speedup"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(8)}) {
    for (const std::uint64_t n : {16ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      std::vector<std::int64_t> keys(n);
      for (auto& k : keys) k = static_cast<std::int64_t>(rng.uniform(0, 1000));
      const std::vector<std::int64_t> sorted = sort_values(params, keys);
      const OddEvenResult baseline = odd_even_sort(params, keys);
      all_ok = all_ok && sorted == baseline.values;  // same answer
      const Rational gossip = predict_sort(params);
      all_ok = all_ok && gossip <= baseline.completion;
      t2.add_row({lambda.str(), std::to_string(n), gossip.str(),
                  baseline.completion.str(),
                  fmt(baseline.completion.to_double() / gossip.to_double(), 2) + "x"});
    }
  }
  t2.print(std::cout);

  std::cout << "\nShape checks: every h-relation routes at its port lower bound; "
               "permutations cost one lambda regardless of lambda; gossip sort "
               "beats the fixed-topology baseline by ~lambda x.\n";
  std::cout << "E18 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
