// E21 (extension) -- recovery cost of reliable broadcast under crashes.
//
// The paper's Algorithm BCAST is exactly optimal and exactly fragile: one
// dead relay orphans its whole generalized-Fibonacci subtree. This bench
// measures what reliability costs on top of the optimal tree: for several
// lambda and crash counts, run the ack/timeout/repair protocol
// (sim/protocols/reliable_bcast) under seeded random fault plans and
// report completion against the fault-free baseline f_lambda(n).
//
// Correctness gates (exit nonzero on violation):
//   * zero crashes: completion == f_lambda(n) EXACTLY, with zero
//     retransmissions and zero repairs -- the reliability layer is free
//     when nothing fails;
//   * any crashes: every surviving processor is reached, and the
//     crash-aware validator accepts the truncated schedule;
//   * recovery overhead is monotone-bounded: crashes only ever delay.
//
// With POSTAL_BENCH_JSON set, each (lambda, crashes) cell appends one
// record (bench "bench_fault_recovery") carrying faults_injected,
// retransmissions, and repair_time in extra -- docs/FAULTS.md, E21 in
// docs/EXPERIMENTS.md.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "obs/bench_record.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E21 (extension): reliable broadcast -- the price of "
               "surviving crashes ===\n\n";

  constexpr std::uint64_t kN = 96;
  constexpr std::uint64_t kSeedsPerCell = 5;
  const Rational lambdas[] = {Rational(1), Rational(5, 2), Rational(4)};
  const std::uint64_t crash_counts[] = {0, 1, 2, 4, 8};

  bool all_ok = true;
  TextTable table({"lambda", "crashes", "f_lambda(n)", "worst completion",
                   "worst overhead", "retransmits (max)", "repairs (max)",
                   "ok"});

  for (const Rational& lambda : lambdas) {
    const PostalParams params(kN, lambda);
    for (const std::uint64_t crashes : crash_counts) {
      const obs::WallClock clock;
      Rational baseline;
      Rational worst_completion(0);
      Rational worst_overhead(0);
      std::uint64_t worst_retransmissions = 0;
      std::uint64_t worst_repairs = 0;
      std::uint64_t faults_total = 0;
      bool cell_ok = true;

      for (std::uint64_t s = 0; s < kSeedsPerCell; ++s) {
        const std::uint64_t seed =
            0xe21000 + s * 1000 + crashes * 10 +
            static_cast<std::uint64_t>(lambda.num());
        RandomFaultOptions fopts;
        fopts.crashes = crashes;
        const FaultPlan plan = random_fault_plan(params, seed, fopts);
        const ReliableBcastReport report = run_reliable_bcast(params, &plan);

        baseline = report.baseline;
        cell_ok = cell_ok && report.covered && report.validation.ok;
        if (crashes == 0) {
          // The reliability layer must be free when nothing fails.
          cell_ok = cell_ok && report.completion == report.baseline &&
                    report.counters.retransmissions == 0 &&
                    report.counters.repairs == 0 &&
                    report.result.faults.total() == 0;
        }
        worst_completion = rmax(worst_completion, report.completion);
        worst_overhead = rmax(worst_overhead, report.recovery_overhead);
        worst_retransmissions =
            std::max(worst_retransmissions, report.counters.retransmissions);
        worst_repairs = std::max(worst_repairs, report.counters.repairs);
        faults_total += report.result.faults.total();
      }
      all_ok = all_ok && cell_ok;

      table.add_row({lambda.str(), std::to_string(crashes), baseline.str(),
                     worst_completion.str(), worst_overhead.str(),
                     std::to_string(worst_retransmissions),
                     std::to_string(worst_repairs), cell_ok ? "yes" : "NO"});

      obs::BenchRecord rec;
      rec.bench = "bench_fault_recovery";
      rec.n = kN;
      rec.lambda = lambda;
      rec.makespan = worst_completion;
      rec.wall_ms = clock.elapsed_ms();
      rec.verdict = cell_ok ? (crashes == 0 ? "MATCHES PAPER" : "RECOVERED")
                            : "MISMATCH";
      rec.extra = {{"crashes", std::to_string(crashes)},
                   {"seeds", std::to_string(kSeedsPerCell)},
                   {"faults_injected", std::to_string(faults_total)},
                   {"retransmissions", std::to_string(worst_retransmissions)},
                   {"repair_time", worst_overhead.str()}};
      obs::emit_bench_record(rec);
    }
  }
  table.print(std::cout);

  std::cout << "\n"
            << (all_ok
                    ? "RECOVERY HOLDS: zero-crash runs complete in exactly "
                      "f_lambda(n) with a silent reliability layer, and every "
                      "crashed run still reached all survivors under "
                      "crash-aware validation."
                    : "MISMATCH: a run failed coverage, validation, or the "
                      "fault-free baseline.")
            << "\n";
  return all_ok ? 0 : 1;
}
