// E4 -- Lemma 10 / Corollary 11: Algorithm REPEAT.
//
//   T_R(n, m, lambda) = m * f_lambda(n) - (m-1)(lambda-1)
//
// Sweeps (n, m, lambda); each schedule is validated in the postal-model
// simulator and its measured makespan compared exactly with Lemma 10, the
// naive bound m * f_lambda(n) (to show the overlap the lemma proves), and
// the Lemma 8 lower bound.
#include <iostream>

#include "model/bounds.hpp"
#include "obs/bench_record.hpp"
#include "sched/repeat.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E4: Lemma 10 -- Algorithm REPEAT ===\n\n";
  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_repeat";

  TextTable table({"lambda", "n", "m", "simulated", "Lemma 10", "naive m*f(n)",
                   "Lemma 8 lower", "Cor 11 upper"});
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {14ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 4ULL, 16ULL, 64ULL}) {
        const Schedule s = repeat_schedule(params, m);
        ValidatorOptions options;
        options.messages = static_cast<std::uint32_t>(m);
        const SimReport report = validate_schedule(s, params, options);
        const Rational predicted = predict_repeat(fib, n, m);
        const Rational naive = Rational(static_cast<std::int64_t>(m)) * fib.f(n);
        const Rational lower = lemma8_lower(fib, n, m);
        const double upper = cor11_repeat_upper(lambda, n, m);
        const bool ok = report.ok && report.order_preserving &&
                        report.makespan == predicted && predicted <= naive &&
                        lower <= predicted &&
                        predicted.to_double() <= upper + 1e-9;
        all_ok = all_ok && ok;
        rec.n = n;
        rec.lambda = lambda;
        rec.m = m;
        rec.makespan = report.makespan;
        table.add_row({lambda.str(), std::to_string(n), std::to_string(m),
                       report.makespan.str() + (ok ? "" : " (!)"), predicted.str(),
                       naive.str(), lower.str(), fmt(upper, 1)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape checks: measured == Lemma 10 exactly; the (m-1)(lambda-1) "
               "overlap saves time vs the naive m iterations; linear growth in m "
               "(the paper: \"not optimal\" for large m).\n";
  std::cout << "E4 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  rec.extra = {{"algorithm", "REPEAT"}, {"sweep", "last point recorded"}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
