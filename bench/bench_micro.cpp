// Micro-benchmarks (google-benchmark) of the library's hot paths: the
// generalized Fibonacci evaluator, schedule generation for each algorithm,
// and full postal-model validation. These are engineering benchmarks (how
// fast is the implementation), not paper-reproduction benchmarks.
#include <benchmark/benchmark.h>

#include "adaptive/hetero.hpp"
#include "brute/multi_search.hpp"
#include "model/genfib.hpp"
#include "net/packet_sim.hpp"
#include "sched/bcast.hpp"
#include "sched/kported.hpp"
#include "sched/dtree.hpp"
#include "sched/pipeline.hpp"
#include "sched/repeat.hpp"
#include "sim/validator.hpp"

namespace postal {
namespace {

void BM_GenFibIndex(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    GenFib fib(Rational(5, 2));  // cold evaluator each iteration
    benchmark::DoNotOptimize(fib.f(n));
  }
}
BENCHMARK(BM_GenFibIndex)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

void BM_GenFibIndexWarm(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  GenFib fib(Rational(5, 2));
  benchmark::DoNotOptimize(fib.f(n));  // warm the memo once
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.f(n));
  }
}
BENCHMARK(BM_GenFibIndexWarm)->Arg(1 << 14)->Arg(1 << 20);

void BM_BcastSchedule(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const PostalParams params(n, Rational(5, 2));
  GenFib fib(params.lambda());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast_schedule(params, fib));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_BcastSchedule)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_RepeatSchedule(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)), Rational(5, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(repeat_schedule(params, 16));
  }
}
BENCHMARK(BM_RepeatSchedule)->Arg(1 << 8)->Arg(1 << 12);

void BM_PipelineSchedule(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)), Rational(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline_schedule(params, 16));
  }
}
BENCHMARK(BM_PipelineSchedule)->Arg(1 << 8)->Arg(1 << 12);

void BM_DTreeSchedule(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)), Rational(5, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtree_schedule(params, 16, 4));
  }
}
BENCHMARK(BM_DTreeSchedule)->Arg(1 << 8)->Arg(1 << 12);

void BM_ValidateBcast(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const PostalParams params(n, Rational(5, 2));
  const Schedule schedule = bcast_schedule(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_schedule(schedule, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.size()));
}
BENCHMARK(BM_ValidateBcast)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_GenFibKIndex(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    GenFibK fib(Rational(5, 2), k);
    benchmark::DoNotOptimize(fib.f(1 << 20));
  }
}
BENCHMARK(BM_GenFibKIndex)->Arg(1)->Arg(4)->Arg(16);

void BM_HeteroGreedy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const HeteroLatency lat = HeteroLatency::random(n, Rational(1), Rational(6), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hetero_greedy_broadcast(lat));
  }
}
BENCHMARK(BM_HeteroGreedy)->Arg(32)->Arg(128);

void BM_ExhaustiveGapSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi_broadcast_optimum(4, 3, 2, true));
  }
}
BENCHMARK(BM_ExhaustiveGapSearch);

void BM_PacketNetworkBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const PostalParams params(n, Rational(4));
  GenFib fib(params.lambda());
  const Schedule schedule = bcast_schedule(params, fib);
  for (auto _ : state) {
    PacketNetwork net(Topology::complete(n, Rational(1)), NetConfig{});
    net.submit_schedule(schedule);
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(BM_PacketNetworkBroadcast)->Arg(32)->Arg(128);

}  // namespace
}  // namespace postal

BENCHMARK_MAIN();
