// Micro-benchmarks (google-benchmark) of the library's hot paths: the
// generalized Fibonacci evaluator, schedule generation for each algorithm,
// full postal-model validation, and the Rational-vs-tick primitive
// operations that motivate the tick-domain fast path
// (docs/PERFORMANCE.md). These are engineering benchmarks (how fast is the
// implementation), not paper-reproduction benchmarks.
//
// main() runs the google-benchmark suite, then re-times the tick-domain
// primitive pairs with a plain stopwatch and emits one bench JSON record
// (obs/bench_record.hpp) carrying the ns/op numbers, so the micro results
// land in the same POSTAL_BENCH_JSON trajectory as the macro benches.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adaptive/hetero.hpp"
#include "brute/multi_search.hpp"
#include "model/genfib.hpp"
#include "net/packet_sim.hpp"
#include "obs/bench_record.hpp"
#include "sched/bcast.hpp"
#include "sched/kported.hpp"
#include "sched/dtree.hpp"
#include "sched/pipeline.hpp"
#include "sched/repeat.hpp"
#include "sim/event_queue.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "sim/tick_queue.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"
#include "support/ticks.hpp"

namespace postal {
namespace {

void BM_GenFibIndex(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    GenFib fib(Rational(5, 2));  // cold evaluator each iteration
    benchmark::DoNotOptimize(fib.f(n));
  }
}
BENCHMARK(BM_GenFibIndex)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

void BM_GenFibIndexWarm(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  GenFib fib(Rational(5, 2));
  benchmark::DoNotOptimize(fib.f(n));  // warm the memo once
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.f(n));
  }
}
BENCHMARK(BM_GenFibIndexWarm)->Arg(1 << 14)->Arg(1 << 20);

void BM_BcastSchedule(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const PostalParams params(n, Rational(5, 2));
  GenFib fib(params.lambda());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast_schedule(params, fib));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_BcastSchedule)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_RepeatSchedule(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)), Rational(5, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(repeat_schedule(params, 16));
  }
}
BENCHMARK(BM_RepeatSchedule)->Arg(1 << 8)->Arg(1 << 12);

void BM_PipelineSchedule(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)), Rational(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline_schedule(params, 16));
  }
}
BENCHMARK(BM_PipelineSchedule)->Arg(1 << 8)->Arg(1 << 12);

void BM_DTreeSchedule(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)), Rational(5, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtree_schedule(params, 16, 4));
  }
}
BENCHMARK(BM_DTreeSchedule)->Arg(1 << 8)->Arg(1 << 12);

void BM_ValidateBcast(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const PostalParams params(n, Rational(5, 2));
  const Schedule schedule = bcast_schedule(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_schedule(schedule, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.size()));
}
BENCHMARK(BM_ValidateBcast)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_GenFibKIndex(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    GenFibK fib(Rational(5, 2), k);
    benchmark::DoNotOptimize(fib.f(1 << 20));
  }
}
BENCHMARK(BM_GenFibKIndex)->Arg(1)->Arg(4)->Arg(16);

void BM_HeteroGreedy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const HeteroLatency lat = HeteroLatency::random(n, Rational(1), Rational(6), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hetero_greedy_broadcast(lat));
  }
}
BENCHMARK(BM_HeteroGreedy)->Arg(32)->Arg(128);

void BM_ExhaustiveGapSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi_broadcast_optimum(4, 3, 2, true));
  }
}
BENCHMARK(BM_ExhaustiveGapSearch);

void BM_PacketNetworkBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const PostalParams params(n, Rational(4));
  GenFib fib(params.lambda());
  const Schedule schedule = bcast_schedule(params, fib);
  for (auto _ : state) {
    PacketNetwork net(Topology::complete(n, Rational(1)), NetConfig{});
    net.submit_schedule(schedule);
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(BM_PacketNetworkBroadcast)->Arg(32)->Arg(128);

// --- Tick-domain primitives (docs/PERFORMANCE.md) ------------------------
// Each Rational benchmark has a tick twin doing the same arithmetic on the
// int64 representation. The operand sequences are chosen so the Rational
// side exercises its real hot-path costs (gcd normalization on add,
// cross-multiplication on compare) rather than trivial integer cases.

void BM_RationalAdd(benchmark::State& state) {
  const Rational step(5, 2);
  Rational acc(0);
  for (auto _ : state) {
    acc = acc + step;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RationalAdd);

void BM_TickAdd(benchmark::State& state) {
  const Tick step = 5;  // 5/2 at resolution 1/2
  Tick acc = 0;
  for (auto _ : state) {
    acc += step;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TickAdd);

// Mixed-denominator time values (so Rational comparisons take the
// cross-multiply path) and their tick twins at the common resolution 1/24.
// Indexed cyclically to keep the compiler from constant-folding the
// comparison out of the loop.
const Rational kCmpRationals[8] = {
    Rational(7919, 6),  Rational(10529, 8), Rational(7907, 6), Rational(331, 2),
    Rational(10531, 8), Rational(7919, 3),  Rational(997, 4),  Rational(7919, 8)};
const Tick kCmpTicks[8] = {7919 * 4,  10529 * 3, 7907 * 4,  331 * 12,
                           10531 * 3, 7919 * 8,  997 * 6,   7919 * 3};

void BM_RationalCompare(benchmark::State& state) {
  std::uint64_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= kCmpRationals[i & 7] < kCmpRationals[(i + 3) & 7];
    benchmark::DoNotOptimize(sink);
    ++i;
  }
}
BENCHMARK(BM_RationalCompare);

void BM_TickCompare(benchmark::State& state) {
  std::uint64_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= kCmpTicks[i & 7] < kCmpTicks[(i + 3) & 7];
    benchmark::DoNotOptimize(sink);
    ++i;
  }
}
BENCHMARK(BM_TickCompare);

void BM_EventQueuePushPop(benchmark::State& state) {
  // Steady-state heap churn at a realistic queue depth: 256 resident
  // events, each iteration pushes one and pops the earliest.
  EventQueue<std::uint64_t> q;
  Tick now = 0;
  for (Tick i = 0; i < 256; ++i) q.push(Rational(i, 2), static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    q.push(Rational(now + 512, 2), 0);
    const auto popped = q.pop();
    benchmark::DoNotOptimize(popped);
    now = popped.first.num() * 2 / popped.first.den();
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_TickBucketQueuePushPop(benchmark::State& state) {
  TickEventQueue<std::uint64_t> q;
  std::uint64_t seq = 0;
  Tick now = 0;
  for (Tick i = 0; i < 256; ++i) q.push(i, seq++, static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    q.push(now + 512, seq++, 0);
    const auto popped = q.pop();
    benchmark::DoNotOptimize(popped);
    now = popped.first;
  }
}
BENCHMARK(BM_TickBucketQueuePushPop);

// --- ParMachine barrier paths (docs/SIMULATION.md, merge-replay v2) ------
// End-to-end sharded BCAST runs on a *reused* ParMachine, so after the
// first iteration every window buffer is at its high-water mark and the
// measured steady state allocates nothing. The barrier wall split
// (merge_ms = sequential slot assignment + parallel materialization,
// flush_ms = parallel per-destination mailbox merge) is reported as
// counters; the flush counter isolates the path that replaced the old
// per-barrier global std::sort.

void BM_MailboxFlush(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)),
                            Rational(5, 2));
  ParMachine machine(params, /*messages=*/1);
  machine.set_threads(2);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  double flush_ms = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run(factory));
    flush_ms += machine.last_run_info().flush_ms;
  }
  state.counters["flush_ms_per_run"] =
      flush_ms / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MailboxFlush)->Arg(1 << 12)->Arg(1 << 14);

void BM_MergeReplay(benchmark::State& state) {
  const PostalParams params(static_cast<std::uint64_t>(state.range(0)),
                            Rational(5, 2));
  ParMachine machine(params, /*messages=*/1);
  machine.set_threads(2);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  double merge_ms = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run(factory));
    merge_ms += machine.last_run_info().merge_ms;
  }
  state.counters["merge_ms_per_run"] =
      merge_ms / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MergeReplay)->Arg(1 << 12)->Arg(1 << 14);

// --- Bench-record emission ----------------------------------------------
// The google-benchmark harness owns the console output; for the JSON
// trajectory we re-time the tick-domain pairs with a plain stopwatch.
// Coarse (one run, fixed iteration count) but self-consistent: both sides
// of each pair run the identical loop shape.

template <typename Body>
double time_ns_per_op(std::uint64_t iterations, Body&& body) {
  const obs::WallClock clock;
  for (std::uint64_t i = 0; i < iterations; ++i) body(i);
  return clock.elapsed_ms() * 1e6 / static_cast<double>(iterations);
}

void emit_micro_record() {
  constexpr std::uint64_t kOps = 2'000'000;
  Rational racc(0);
  const Rational rstep(5, 2);
  const double rational_add_ns =
      time_ns_per_op(kOps, [&](std::uint64_t) { racc = racc + rstep; });
  Tick tacc = 0;
  const double tick_add_ns = time_ns_per_op(kOps, [&](std::uint64_t) {
    tacc += 5;
    benchmark::DoNotOptimize(tacc);
  });
  bool sink = false;
  const double rational_cmp_ns = time_ns_per_op(kOps, [&](std::uint64_t i) {
    sink ^= kCmpRationals[i & 7] < kCmpRationals[(i + 3) & 7];
    benchmark::DoNotOptimize(sink);
  });
  const double tick_cmp_ns = time_ns_per_op(kOps, [&](std::uint64_t i) {
    sink ^= kCmpTicks[i & 7] < kCmpTicks[(i + 3) & 7];
    benchmark::DoNotOptimize(sink);
  });

  EventQueue<std::uint64_t> heap;
  for (Tick i = 0; i < 256; ++i) heap.push(Rational(i, 2), 0);
  Tick heap_now = 0;
  const double heap_ns = time_ns_per_op(kOps / 4, [&](std::uint64_t) {
    heap.push(Rational(heap_now + 512, 2), 0);
    const auto popped = heap.pop();
    heap_now = popped.first.num() * 2 / popped.first.den();
  });
  TickEventQueue<std::uint64_t> bucket;
  std::uint64_t seq = 0;
  for (Tick i = 0; i < 256; ++i) bucket.push(i, seq++, 0);
  Tick bucket_now = 0;
  const double bucket_ns = time_ns_per_op(kOps / 4, [&](std::uint64_t) {
    bucket.push(bucket_now + 512, seq++, 0);
    bucket_now = bucket.pop().first;
  });

  // ParMachine barrier split + arena proof: two back-to-back runs on one
  // engine. The cold run grows every window buffer to its high-water mark;
  // the warm run must report zero arena growths (the steady state
  // allocates nothing per window) and stay byte-identical to the cold one.
  const PostalParams par_params(std::uint64_t{1} << 14, Rational(5, 2));
  ParMachine par(par_params, /*messages=*/1);
  par.set_threads(2);
  auto par_factory = make_protocol_factory<BcastProtocol>(par_params);
  const MachineResult cold = par.run(par_factory);
  const std::uint64_t arena_growths_cold = par.last_run_info().arena_growths;
  const MachineResult warm = par.run(par_factory);
  const ParRunInfo& warm_info = par.last_run_info();
  const std::uint64_t arena_growths_warm = warm_info.arena_growths;
  const bool par_ok = warm_info.parallel_engine &&
                      arena_growths_warm == 0 &&
                      warm.schedule.events() == cold.schedule.events() &&
                      warm.trace.deliveries() == cold.trace.deliveries();

  // Sanity gate: the stopwatch loops must have computed the same values
  // the benchmark loops do (racc = kOps * 5/2; both queues back at depth
  // 256), and the warm ParMachine rerun must have proven the arena
  // steady state. A desync here means the record is mis-measuring.
  const bool ok = racc == rstep * Rational(static_cast<std::int64_t>(kOps)) &&
                  heap.size() == 256 && bucket.size() == 256 && par_ok;

  obs::BenchRecord rec;
  rec.bench = "bench_micro";
  rec.n = 0;  // primitive ops, no instance size
  rec.lambda = Rational(5, 2);
  rec.makespan = Rational(0);
  rec.wall_ms = 0.0;
  rec.verdict = ok ? "CONSISTENT" : "MISMATCH";
  rec.extra = {
      {"rational_add_ns", fmt(rational_add_ns, 2)},
      {"tick_add_ns", fmt(tick_add_ns, 2)},
      {"rational_compare_ns", fmt(rational_cmp_ns, 2)},
      {"tick_compare_ns", fmt(tick_cmp_ns, 2)},
      {"heap_pushpop_ns", fmt(heap_ns, 2)},
      {"bucket_pushpop_ns", fmt(bucket_ns, 2)},
      {"add_speedup", fmt(tick_add_ns > 0 ? rational_add_ns / tick_add_ns : 0, 2)},
      {"compare_speedup",
       fmt(tick_cmp_ns > 0 ? rational_cmp_ns / tick_cmp_ns : 0, 2)},
      {"queue_speedup", fmt(bucket_ns > 0 ? heap_ns / bucket_ns : 0, 2)},
      {"mailbox_flush_ms", fmt(warm_info.flush_ms, 3)},
      {"merge_replay_ms", fmt(warm_info.merge_ms, 3)},
      {"flush_fallback_sorts", std::to_string(warm_info.flush_fallback_sorts)},
      {"arena_growths_cold", std::to_string(arena_growths_cold)},
      {"arena_growths_warm", std::to_string(arena_growths_warm)},
  };
  obs::emit_bench_record(rec);
}

}  // namespace
}  // namespace postal

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  postal::emit_micro_record();
  return 0;
}
