// E20 (engineering) -- the parallel sweep engine vs. the historical
// sequential sweep, on the Theorem-6 cross-check grid.
//
// Four measured configurations over the same (n, lambda) grid:
//   baseline   the pre-engine code path: one GenFib per lambda, a full
//              O(n^2) exhaustive-DP recomputation per point, a fresh BCAST
//              schedule built and validated per point;
//   engine x1  par::sweep_grid at threads = 1, cold caches (the exact
//              sequential path through the engine);
//   engine x8  par::sweep_grid at threads = 8, cold caches;
//   warm       par::sweep_grid at threads = 8 again on the same caches
//              (every f-lookup and schedule is a hit; DP cross-check off).
//
// The verdict is *correctness-based*: all four configurations must agree on
// every grid value (engine x1 vs x8 compared field-by-field ignoring wall
// times -- the thread-count invariance contract; baseline vs engine on the
// four Theorem-6 quantities). Wall-clock speedups are recorded in the bench
// record's extra fields but deliberately do not gate the verdict: thread
// scaling is machine-dependent (this box may expose a single core, where
// x8 == x1), while the algorithmic wins -- DP-table sharing and cache
// reuse -- show up at any core count. See docs/PARALLELISM.md.
#include <iostream>

#include "brute/optimal_search.hpp"
#include "model/genfib.hpp"
#include "obs/bench_record.hpp"
#include "par/sweep.hpp"
#include "sched/bcast.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

namespace {

using namespace postal;

struct BaselinePoint {
  Rational f, dp, greedy, makespan;
};

// The pre-engine sweep body, verbatim shape: per-point DP, per-point
// schedule build + validation, shared per-lambda GenFib.
std::vector<BaselinePoint> baseline_sweep(const std::vector<std::uint64_t>& ns,
                                          const std::vector<Rational>& lambdas) {
  std::vector<BaselinePoint> out;
  out.reserve(ns.size() * lambdas.size());
  for (const Rational& lambda : lambdas) {
    GenFib fib(lambda);
    for (const std::uint64_t n : ns) {
      const PostalParams params(n, lambda);
      BaselinePoint p;
      p.f = fib.f(n);
      p.dp = optimal_broadcast_dp(n, lambda);
      p.greedy = optimal_broadcast_greedy(n, lambda);
      p.makespan = validate_schedule(bcast_schedule(params, fib), params).makespan;
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E20: parallel sweep engine vs. sequential baseline ===\n\n";

  const std::vector<Rational> lambdas = {Rational(1), Rational(3, 2),
                                         Rational(5, 2), Rational(4)};
  const std::vector<std::uint64_t> ns = {64, 128, 256, 512, 1024, 2048};

  const obs::WallClock base_clock;
  const std::vector<BaselinePoint> baseline = baseline_sweep(ns, lambdas);
  const double base_ms = base_clock.elapsed_ms();

  par::GenFibCache cache1;
  par::ScheduleCache sched1;
  par::SweepOptions opt1;
  opt1.threads = 1;
  opt1.genfib_cache = &cache1;
  opt1.schedule_cache = &sched1;
  const obs::WallClock x1_clock;
  const std::vector<par::SweepPointResult> x1 = par::sweep_grid(ns, lambdas, opt1);
  const double x1_ms = x1_clock.elapsed_ms();

  par::GenFibCache cache8;
  par::ScheduleCache sched8;
  par::SweepOptions opt8;
  opt8.threads = 8;
  opt8.genfib_cache = &cache8;
  opt8.schedule_cache = &sched8;
  const obs::WallClock x8_clock;
  const std::vector<par::SweepPointResult> x8 = par::sweep_grid(ns, lambdas, opt8);
  const double x8_ms = x8_clock.elapsed_ms();

  // Same caches again: every schedule and f-value is a hit; skip the DP
  // cross-check the way an interactive client re-querying the grid would.
  par::SweepOptions warm_opt = opt8;
  warm_opt.with_dp = false;
  const obs::WallClock warm_clock;
  const std::vector<par::SweepPointResult> warm =
      par::sweep_grid(ns, lambdas, warm_opt);
  const double warm_ms = warm_clock.elapsed_ms();

  bool all_ok = true;
  // Thread-count invariance: x1 and x8 identical ignoring wall times.
  const bool invariant = par::sweep_results_equal_ignoring_wall(x1, x8);
  all_ok = all_ok && invariant;
  // Engine vs baseline: the four Theorem-6 quantities agree pointwise
  // (baseline is n-major within lambda, the engine lambda-major with the
  // same nesting, so indices line up).
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    all_ok = all_ok && x1[i].ok && x1[i].f == baseline[i].f &&
             x1[i].dp == baseline[i].dp && x1[i].greedy == baseline[i].greedy &&
             x1[i].makespan == baseline[i].makespan;
    all_ok = all_ok && warm[i].ok && warm[i].f == x1[i].f &&
             warm[i].makespan == x1[i].makespan;
  }
  const par::GenFibCache::Stats warm_stats = cache8.stats();
  all_ok = all_ok && warm_stats.f_hits > 0;

  TextTable table({"configuration", "wall ms", "speedup vs baseline"});
  const auto row = [&](const char* name, double ms) {
    table.add_row({name, fmt(ms, 1), fmt(base_ms / ms, 2) + "x"});
  };
  row("baseline (per-point DP)", base_ms);
  row("engine, 1 thread", x1_ms);
  row("engine, 8 threads", x8_ms);
  row("engine, 8 threads, warm caches", warm_ms);
  table.print(std::cout);

  std::cout << "\ngrid: " << lambdas.size() << " lambdas x " << ns.size()
            << " ns; hardware_concurrency = " << par::default_threads()
            << "\nthread-count invariance (x1 == x8 ignoring wall): "
            << (invariant ? "holds" : "VIOLATED")
            << "\nwarm-cache f-lookup hits: " << warm_stats.f_hits << "\n";
  std::cout << "\nE20 verdict: " << (all_ok ? "CONSISTENT" : "MISMATCH")
            << "  (correctness-gated; speedups recorded, machine-dependent)\n";

  obs::BenchRecord rec;
  rec.bench = "bench_par_sweep";
  rec.n = ns.back();
  rec.lambda = lambdas.back();
  rec.makespan = x1.back().makespan;
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "CONSISTENT" : "MISMATCH";
  rec.extra = {{"baseline_ms", fmt(base_ms, 2)},
               {"engine_1t_ms", fmt(x1_ms, 2)},
               {"engine_8t_ms", fmt(x8_ms, 2)},
               {"engine_warm_ms", fmt(warm_ms, 2)},
               {"speedup_1t", fmt(base_ms / x1_ms, 2)},
               {"speedup_8t", fmt(base_ms / x8_ms, 2)},
               {"speedup_warm", fmt(base_ms / warm_ms, 2)},
               {"hardware_concurrency", std::to_string(par::default_threads())}};
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
