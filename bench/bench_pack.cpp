// E5 -- Lemma 12 / Corollary 13: Algorithm PACK.
//
//   T_PK(n, m, lambda) = m * f_{1 + (lambda-1)/m}(n)
//
// Sweeps (n, m, lambda); validates each schedule, compares exactly with
// Lemma 12, and contrasts with REPEAT to show the paper's observation that
// PACK is near-optimal for small m and large lambda.
#include <iostream>

#include "model/bounds.hpp"
#include "sched/pack.hpp"
#include "sched/repeat.hpp"
#include "sim/validator.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  std::cout << "=== E5: Lemma 12 -- Algorithm PACK ===\n\n";
  bool all_ok = true;

  TextTable table({"lambda", "n", "m", "lambda'", "simulated", "Lemma 12",
                   "REPEAT", "Lemma 8 lower", "PACK/lower"});
  for (const Rational lambda : {Rational(2), Rational(4), Rational(16)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {14ULL, 64ULL, 256ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t m : {1ULL, 2ULL, 4ULL, 16ULL}) {
        const Schedule s = pack_schedule(params, m);
        ValidatorOptions options;
        options.messages = static_cast<std::uint32_t>(m);
        const SimReport report = validate_schedule(s, params, options);
        const Rational predicted = predict_pack(lambda, n, m);
        const Rational repeat = predict_repeat(fib, n, m);
        const Rational lower = lemma8_lower(fib, n, m);
        const double upper = cor13_pack_upper(lambda, n, m);
        const bool ok = report.ok && report.order_preserving &&
                        report.makespan == predicted && lower <= predicted &&
                        predicted.to_double() <= upper + 1e-9;
        all_ok = all_ok && ok;
        table.add_row({lambda.str(), std::to_string(n), std::to_string(m),
                       pack_lambda(lambda, m).str(),
                       report.makespan.str() + (ok ? "" : " (!)"), predicted.str(),
                       repeat.str(), lower.str(),
                       fmt(predicted.to_double() / lower.to_double(), 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape checks: measured == Lemma 12 exactly; normalizing to "
               "lambda' = 1 + (lambda-1)/m brings PACK close to the lower bound "
               "for small m / large lambda (paper Section 4.2).\n";
  std::cout << "E5 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
