// E13 -- substitution audit: do postal-model predictions transfer to a
// concrete packet-switched network (the role the 1992 hardware played)?
//
// Pipeline per network: calibrate an effective lambda with probe packets,
// build the generalized Fibonacci broadcast schedule for that lambda,
// replay it on the wire, and compare the observed completion to the postal
// prediction. The binomial (lambda-oblivious) tree is replayed too.
//
// Expected shapes:
//   * complete graph, no jitter: observed == predicted exactly (the
//     network *is* the postal model there);
//   * mesh/torus/jitter: ratios stay close to 1 (the complete-graph
//     abstraction of Section 1 is a good approximation);
//   * the Fibonacci tree beats the binomial tree on high-latency networks.
#include <iostream>

#include "model/genfib.hpp"
#include "net/calibrate.hpp"
#include "obs/bench_record.hpp"
#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "support/table.hpp"

int main() {
  using namespace postal;
  const obs::WallClock wall;
  std::cout << "=== E13: postal predictions on packet networks ===\n\n";
  bool all_ok = true;
  obs::BenchRecord rec;
  rec.bench = "bench_network_transfer";

  struct NetCase {
    const char* name;
    Topology topology;
    NetConfig config;
    bool exact;  ///< expect observed == predicted
  };

  NetConfig plain;
  NetConfig heavy;
  heavy.send_overhead = Rational(2);
  heavy.recv_overhead = Rational(2);
  NetConfig jittery;
  jittery.jitter_max = Rational(1, 4);

  std::vector<NetCase> cases;
  cases.push_back({"complete/prop=4", Topology::complete(32, Rational(4)), plain, true});
  cases.push_back(
      {"complete/heavy-sw", Topology::complete(32, Rational(6)), heavy, true});
  cases.push_back(
      {"complete/jitter", Topology::complete(32, Rational(4)), jittery, false});
  cases.push_back({"mesh 6x6", Topology::mesh2d(6, 6, Rational(1)), plain, false});
  cases.push_back({"torus 6x6", Topology::torus2d(6, 6, Rational(1)), plain, false});

  TextTable table({"network", "lambda_est", "fib predicted", "fib observed",
                   "ratio", "binomial observed", "fib speedup"});
  for (auto& c : cases) {
    PacketNetwork net(c.topology, c.config);
    const std::uint64_t n = c.topology.n();
    const CalibrationReport cal = calibrate_lambda(net, 64, /*seed=*/11);
    const Rational lambda = cal.lambda_snapped;
    GenFib fib(lambda);
    const PostalParams params(n, lambda);

    const ReplayReport fib_run =
        replay_schedule(net, bcast_schedule(params, fib), fib.f(n));
    const BroadcastTree binom = BroadcastTree::binomial(n);
    const ReplayReport bin_run = replay_schedule(net, binom.greedy_schedule(lambda),
                                                 binom.completion_time(lambda));

    const double speedup =
        bin_run.observed.to_double() / fib_run.observed.to_double();
    if (c.exact) {
      all_ok = all_ok && fib_run.observed == fib_run.predicted;
    } else {
      all_ok = all_ok && fib_run.ratio > 0.5 && fib_run.ratio < 2.5;
    }
    all_ok = all_ok && speedup >= 0.95;

    table.add_row({c.name, lambda.str(), fib_run.predicted.str(),
                   fib_run.observed.str(), fmt(fib_run.ratio, 3),
                   bin_run.observed.str(), fmt(speedup, 3) + "x"});
  }
  table.print(std::cout);

  // --- Load study: the paper assumes lambda "does not fluctuate too much
  // under normal conditions of operation". Quantify what happens when the
  // load is NOT normal: replay an all-to-all (n*(n-1) packets) on a mesh
  // whose lambda was calibrated idle.
  std::cout
      << "\n--- congestion probe: idle-calibrated lambda under all-to-all load ---\n";
  {
    PacketNetwork net(Topology::mesh2d(6, 6, Rational(1)), plain);
    const std::uint64_t n = net.topology().n();
    const CalibrationReport cal = calibrate_lambda(net, 64, 11);
    const PostalParams params(n, cal.lambda_snapped);
    // An optimal postal all-to-all: rotated exchange (see collectives).
    Schedule alltoall;
    for (std::uint64_t p = 0; p < n; ++p) {
      for (std::uint64_t k = 0; k + 1 < n; ++k) {
        alltoall.add(static_cast<ProcId>(p), static_cast<ProcId>((p + 1 + k) % n),
                     /*msg=*/0, Rational(static_cast<std::int64_t>(k)));
      }
    }
    const Rational postal_prediction =
        Rational(static_cast<std::int64_t>(n) - 2) + cal.lambda_snapped;
    const ReplayReport loaded = replay_schedule(net, alltoall, postal_prediction);
    rec.n = n;
    rec.lambda = cal.lambda_snapped;
    rec.makespan = loaded.observed;
    rec.extra = {{"scenario", "congestion probe: all-to-all on idle-calibrated mesh 6x6"},
                 {"predicted", loaded.predicted.str()}};
    std::cout << "postal prediction " << loaded.predicted << ", observed "
              << loaded.observed << ", ratio " << fmt(loaded.ratio, 2)
              << " -- congestion inflates the effective latency well past the "
                 "idle calibration, exactly the regime the paper excludes.\n";
    all_ok = all_ok && loaded.ratio > 1.05;
  }

  std::cout << "\nShape checks: exact transfer on the jitter-free complete graph; "
               "near-1 ratios elsewhere; the latency-aware Fibonacci tree never "
               "loses to the binomial tree on the wire; heavy load breaks the "
               "uniform-lambda assumption as Section 2 anticipates.\n";
  std::cout << "E13 verdict: " << (all_ok ? "MATCHES PAPER" : "MISMATCH") << "\n";
  rec.wall_ms = wall.elapsed_ms();
  rec.verdict = all_ok ? "MATCHES PAPER" : "MISMATCH";
  obs::emit_bench_record(rec);
  return all_ok ? 0 : 1;
}
